file(REMOVE_RECURSE
  "CMakeFiles/test_dedup_probe.dir/test_dedup_probe.cpp.o"
  "CMakeFiles/test_dedup_probe.dir/test_dedup_probe.cpp.o.d"
  "test_dedup_probe"
  "test_dedup_probe.pdb"
  "test_dedup_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dedup_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
