file(REMOVE_RECURSE
  "CMakeFiles/test_service_profile.dir/test_service_profile.cpp.o"
  "CMakeFiles/test_service_profile.dir/test_service_profile.cpp.o.d"
  "test_service_profile"
  "test_service_profile.pdb"
  "test_service_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
