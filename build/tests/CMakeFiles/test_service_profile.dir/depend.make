# Empty dependencies file for test_service_profile.
# This may be replaced when dependencies are built.
