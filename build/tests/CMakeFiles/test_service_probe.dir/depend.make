# Empty dependencies file for test_service_probe.
# This may be replaced when dependencies are built.
