file(REMOVE_RECURSE
  "CMakeFiles/test_service_probe.dir/test_service_probe.cpp.o"
  "CMakeFiles/test_service_probe.dir/test_service_probe.cpp.o.d"
  "test_service_probe"
  "test_service_probe.pdb"
  "test_service_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
