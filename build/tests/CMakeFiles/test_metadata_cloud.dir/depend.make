# Empty dependencies file for test_metadata_cloud.
# This may be replaced when dependencies are built.
