file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_cloud.dir/test_metadata_cloud.cpp.o"
  "CMakeFiles/test_metadata_cloud.dir/test_metadata_cloud.cpp.o.d"
  "test_metadata_cloud"
  "test_metadata_cloud.pdb"
  "test_metadata_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
