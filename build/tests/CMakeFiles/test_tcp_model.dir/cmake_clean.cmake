file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_model.dir/test_tcp_model.cpp.o"
  "CMakeFiles/test_tcp_model.dir/test_tcp_model.cpp.o.d"
  "test_tcp_model"
  "test_tcp_model.pdb"
  "test_tcp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
