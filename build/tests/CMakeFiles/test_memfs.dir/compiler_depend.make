# Empty compiler generated dependencies file for test_memfs.
# This may be replaced when dependencies are built.
