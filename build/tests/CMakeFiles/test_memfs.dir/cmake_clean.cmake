file(REMOVE_RECURSE
  "CMakeFiles/test_memfs.dir/test_memfs.cpp.o"
  "CMakeFiles/test_memfs.dir/test_memfs.cpp.o.d"
  "test_memfs"
  "test_memfs.pdb"
  "test_memfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
