file(REMOVE_RECURSE
  "CMakeFiles/test_object_store.dir/test_object_store.cpp.o"
  "CMakeFiles/test_object_store.dir/test_object_store.cpp.o.d"
  "test_object_store"
  "test_object_store.pdb"
  "test_object_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_object_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
