file(REMOVE_RECURSE
  "CMakeFiles/test_watcher.dir/test_watcher.cpp.o"
  "CMakeFiles/test_watcher.dir/test_watcher.cpp.o.d"
  "test_watcher"
  "test_watcher.pdb"
  "test_watcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_watcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
