# Empty dependencies file for test_watcher.
# This may be replaced when dependencies are built.
