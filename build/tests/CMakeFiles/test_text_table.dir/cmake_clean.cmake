file(REMOVE_RECURSE
  "CMakeFiles/test_text_table.dir/test_text_table.cpp.o"
  "CMakeFiles/test_text_table.dir/test_text_table.cpp.o.d"
  "test_text_table"
  "test_text_table.pdb"
  "test_text_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
