# Empty compiler generated dependencies file for test_sync_engine.
# This may be replaced when dependencies are built.
