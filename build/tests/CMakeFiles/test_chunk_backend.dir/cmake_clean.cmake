file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_backend.dir/test_chunk_backend.cpp.o"
  "CMakeFiles/test_chunk_backend.dir/test_chunk_backend.cpp.o.d"
  "test_chunk_backend"
  "test_chunk_backend.pdb"
  "test_chunk_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
