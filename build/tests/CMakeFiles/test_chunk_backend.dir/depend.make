# Empty dependencies file for test_chunk_backend.
# This may be replaced when dependencies are built.
