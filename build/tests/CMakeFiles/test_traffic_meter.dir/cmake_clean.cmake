file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_meter.dir/test_traffic_meter.cpp.o"
  "CMakeFiles/test_traffic_meter.dir/test_traffic_meter.cpp.o.d"
  "test_traffic_meter"
  "test_traffic_meter.pdb"
  "test_traffic_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
