# Empty dependencies file for test_traffic_meter.
# This may be replaced when dependencies are built.
