file(REMOVE_RECURSE
  "CMakeFiles/test_defer_policy.dir/test_defer_policy.cpp.o"
  "CMakeFiles/test_defer_policy.dir/test_defer_policy.cpp.o.d"
  "test_defer_policy"
  "test_defer_policy.pdb"
  "test_defer_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
