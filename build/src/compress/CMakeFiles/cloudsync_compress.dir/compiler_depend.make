# Empty compiler generated dependencies file for cloudsync_compress.
# This may be replaced when dependencies are built.
