
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cpp" "src/compress/CMakeFiles/cloudsync_compress.dir/compressor.cpp.o" "gcc" "src/compress/CMakeFiles/cloudsync_compress.dir/compressor.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/cloudsync_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/cloudsync_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/compress/CMakeFiles/cloudsync_compress.dir/lzss.cpp.o" "gcc" "src/compress/CMakeFiles/cloudsync_compress.dir/lzss.cpp.o.d"
  "/root/repo/src/compress/varint.cpp" "src/compress/CMakeFiles/cloudsync_compress.dir/varint.cpp.o" "gcc" "src/compress/CMakeFiles/cloudsync_compress.dir/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
