file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_compress.dir/compressor.cpp.o"
  "CMakeFiles/cloudsync_compress.dir/compressor.cpp.o.d"
  "CMakeFiles/cloudsync_compress.dir/huffman.cpp.o"
  "CMakeFiles/cloudsync_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/cloudsync_compress.dir/lzss.cpp.o"
  "CMakeFiles/cloudsync_compress.dir/lzss.cpp.o.d"
  "CMakeFiles/cloudsync_compress.dir/varint.cpp.o"
  "CMakeFiles/cloudsync_compress.dir/varint.cpp.o.d"
  "libcloudsync_compress.a"
  "libcloudsync_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
