file(REMOVE_RECURSE
  "libcloudsync_compress.a"
)
