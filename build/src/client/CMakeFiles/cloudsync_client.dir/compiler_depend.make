# Empty compiler generated dependencies file for cloudsync_client.
# This may be replaced when dependencies are built.
