file(REMOVE_RECURSE
  "libcloudsync_client.a"
)
