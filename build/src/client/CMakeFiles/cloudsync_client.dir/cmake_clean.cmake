file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_client.dir/defer_policy.cpp.o"
  "CMakeFiles/cloudsync_client.dir/defer_policy.cpp.o.d"
  "CMakeFiles/cloudsync_client.dir/hardware.cpp.o"
  "CMakeFiles/cloudsync_client.dir/hardware.cpp.o.d"
  "CMakeFiles/cloudsync_client.dir/service_profile.cpp.o"
  "CMakeFiles/cloudsync_client.dir/service_profile.cpp.o.d"
  "CMakeFiles/cloudsync_client.dir/sync_engine.cpp.o"
  "CMakeFiles/cloudsync_client.dir/sync_engine.cpp.o.d"
  "libcloudsync_client.a"
  "libcloudsync_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
