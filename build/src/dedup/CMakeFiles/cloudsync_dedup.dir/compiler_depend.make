# Empty compiler generated dependencies file for cloudsync_dedup.
# This may be replaced when dependencies are built.
