file(REMOVE_RECURSE
  "libcloudsync_dedup.a"
)
