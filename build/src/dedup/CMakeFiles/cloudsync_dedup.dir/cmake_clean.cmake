file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_dedup.dir/dedup_engine.cpp.o"
  "CMakeFiles/cloudsync_dedup.dir/dedup_engine.cpp.o.d"
  "CMakeFiles/cloudsync_dedup.dir/dedup_index.cpp.o"
  "CMakeFiles/cloudsync_dedup.dir/dedup_index.cpp.o.d"
  "CMakeFiles/cloudsync_dedup.dir/fingerprint.cpp.o"
  "CMakeFiles/cloudsync_dedup.dir/fingerprint.cpp.o.d"
  "libcloudsync_dedup.a"
  "libcloudsync_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
