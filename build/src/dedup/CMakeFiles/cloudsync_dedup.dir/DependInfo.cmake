
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dedup/dedup_engine.cpp" "src/dedup/CMakeFiles/cloudsync_dedup.dir/dedup_engine.cpp.o" "gcc" "src/dedup/CMakeFiles/cloudsync_dedup.dir/dedup_engine.cpp.o.d"
  "/root/repo/src/dedup/dedup_index.cpp" "src/dedup/CMakeFiles/cloudsync_dedup.dir/dedup_index.cpp.o" "gcc" "src/dedup/CMakeFiles/cloudsync_dedup.dir/dedup_index.cpp.o.d"
  "/root/repo/src/dedup/fingerprint.cpp" "src/dedup/CMakeFiles/cloudsync_dedup.dir/fingerprint.cpp.o" "gcc" "src/dedup/CMakeFiles/cloudsync_dedup.dir/fingerprint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/cloudsync_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cloudsync_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
