file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_fs.dir/file_ops.cpp.o"
  "CMakeFiles/cloudsync_fs.dir/file_ops.cpp.o.d"
  "CMakeFiles/cloudsync_fs.dir/memfs.cpp.o"
  "CMakeFiles/cloudsync_fs.dir/memfs.cpp.o.d"
  "CMakeFiles/cloudsync_fs.dir/watcher.cpp.o"
  "CMakeFiles/cloudsync_fs.dir/watcher.cpp.o.d"
  "libcloudsync_fs.a"
  "libcloudsync_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
