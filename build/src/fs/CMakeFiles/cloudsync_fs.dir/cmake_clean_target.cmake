file(REMOVE_RECURSE
  "libcloudsync_fs.a"
)
