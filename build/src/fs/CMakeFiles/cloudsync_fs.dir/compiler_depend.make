# Empty compiler generated dependencies file for cloudsync_fs.
# This may be replaced when dependencies are built.
