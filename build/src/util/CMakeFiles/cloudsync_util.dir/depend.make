# Empty dependencies file for cloudsync_util.
# This may be replaced when dependencies are built.
