
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/adler32.cpp" "src/util/CMakeFiles/cloudsync_util.dir/adler32.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/adler32.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/util/CMakeFiles/cloudsync_util.dir/bytes.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/bytes.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/util/CMakeFiles/cloudsync_util.dir/crc32.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/crc32.cpp.o.d"
  "/root/repo/src/util/md5.cpp" "src/util/CMakeFiles/cloudsync_util.dir/md5.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/md5.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/cloudsync_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/sha1.cpp" "src/util/CMakeFiles/cloudsync_util.dir/sha1.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/sha1.cpp.o.d"
  "/root/repo/src/util/sha256.cpp" "src/util/CMakeFiles/cloudsync_util.dir/sha256.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/sha256.cpp.o.d"
  "/root/repo/src/util/sim_time.cpp" "src/util/CMakeFiles/cloudsync_util.dir/sim_time.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/sim_time.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/cloudsync_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/text_table.cpp" "src/util/CMakeFiles/cloudsync_util.dir/text_table.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/text_table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/cloudsync_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/cloudsync_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
