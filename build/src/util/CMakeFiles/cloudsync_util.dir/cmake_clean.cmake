file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_util.dir/adler32.cpp.o"
  "CMakeFiles/cloudsync_util.dir/adler32.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/bytes.cpp.o"
  "CMakeFiles/cloudsync_util.dir/bytes.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/crc32.cpp.o"
  "CMakeFiles/cloudsync_util.dir/crc32.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/md5.cpp.o"
  "CMakeFiles/cloudsync_util.dir/md5.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/rng.cpp.o"
  "CMakeFiles/cloudsync_util.dir/rng.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/sha1.cpp.o"
  "CMakeFiles/cloudsync_util.dir/sha1.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/sha256.cpp.o"
  "CMakeFiles/cloudsync_util.dir/sha256.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/sim_time.cpp.o"
  "CMakeFiles/cloudsync_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/stats.cpp.o"
  "CMakeFiles/cloudsync_util.dir/stats.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/text_table.cpp.o"
  "CMakeFiles/cloudsync_util.dir/text_table.cpp.o.d"
  "CMakeFiles/cloudsync_util.dir/units.cpp.o"
  "CMakeFiles/cloudsync_util.dir/units.cpp.o.d"
  "libcloudsync_util.a"
  "libcloudsync_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
