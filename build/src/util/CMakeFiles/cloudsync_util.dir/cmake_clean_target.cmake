file(REMOVE_RECURSE
  "libcloudsync_util.a"
)
