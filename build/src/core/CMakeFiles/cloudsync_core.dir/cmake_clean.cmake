file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_core.dir/cost_model.cpp.o"
  "CMakeFiles/cloudsync_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/cloudsync_core.dir/dedup_probe.cpp.o"
  "CMakeFiles/cloudsync_core.dir/dedup_probe.cpp.o.d"
  "CMakeFiles/cloudsync_core.dir/experiment.cpp.o"
  "CMakeFiles/cloudsync_core.dir/experiment.cpp.o.d"
  "CMakeFiles/cloudsync_core.dir/fleet.cpp.o"
  "CMakeFiles/cloudsync_core.dir/fleet.cpp.o.d"
  "CMakeFiles/cloudsync_core.dir/service_probe.cpp.o"
  "CMakeFiles/cloudsync_core.dir/service_probe.cpp.o.d"
  "libcloudsync_core.a"
  "libcloudsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
