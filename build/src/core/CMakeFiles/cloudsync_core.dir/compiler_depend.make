# Empty compiler generated dependencies file for cloudsync_core.
# This may be replaced when dependencies are built.
