file(REMOVE_RECURSE
  "libcloudsync_core.a"
)
