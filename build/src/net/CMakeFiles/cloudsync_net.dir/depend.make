# Empty dependencies file for cloudsync_net.
# This may be replaced when dependencies are built.
