
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/http_model.cpp" "src/net/CMakeFiles/cloudsync_net.dir/http_model.cpp.o" "gcc" "src/net/CMakeFiles/cloudsync_net.dir/http_model.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/cloudsync_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/cloudsync_net.dir/link.cpp.o.d"
  "/root/repo/src/net/sim_clock.cpp" "src/net/CMakeFiles/cloudsync_net.dir/sim_clock.cpp.o" "gcc" "src/net/CMakeFiles/cloudsync_net.dir/sim_clock.cpp.o.d"
  "/root/repo/src/net/tcp_model.cpp" "src/net/CMakeFiles/cloudsync_net.dir/tcp_model.cpp.o" "gcc" "src/net/CMakeFiles/cloudsync_net.dir/tcp_model.cpp.o.d"
  "/root/repo/src/net/traffic_meter.cpp" "src/net/CMakeFiles/cloudsync_net.dir/traffic_meter.cpp.o" "gcc" "src/net/CMakeFiles/cloudsync_net.dir/traffic_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
