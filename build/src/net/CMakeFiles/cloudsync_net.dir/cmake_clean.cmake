file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_net.dir/http_model.cpp.o"
  "CMakeFiles/cloudsync_net.dir/http_model.cpp.o.d"
  "CMakeFiles/cloudsync_net.dir/link.cpp.o"
  "CMakeFiles/cloudsync_net.dir/link.cpp.o.d"
  "CMakeFiles/cloudsync_net.dir/sim_clock.cpp.o"
  "CMakeFiles/cloudsync_net.dir/sim_clock.cpp.o.d"
  "CMakeFiles/cloudsync_net.dir/tcp_model.cpp.o"
  "CMakeFiles/cloudsync_net.dir/tcp_model.cpp.o.d"
  "CMakeFiles/cloudsync_net.dir/traffic_meter.cpp.o"
  "CMakeFiles/cloudsync_net.dir/traffic_meter.cpp.o.d"
  "libcloudsync_net.a"
  "libcloudsync_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
