file(REMOVE_RECURSE
  "libcloudsync_net.a"
)
