# Empty dependencies file for cloudsync_chunking.
# This may be replaced when dependencies are built.
