
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunking/cdc.cpp" "src/chunking/CMakeFiles/cloudsync_chunking.dir/cdc.cpp.o" "gcc" "src/chunking/CMakeFiles/cloudsync_chunking.dir/cdc.cpp.o.d"
  "/root/repo/src/chunking/fixed_chunker.cpp" "src/chunking/CMakeFiles/cloudsync_chunking.dir/fixed_chunker.cpp.o" "gcc" "src/chunking/CMakeFiles/cloudsync_chunking.dir/fixed_chunker.cpp.o.d"
  "/root/repo/src/chunking/rsync.cpp" "src/chunking/CMakeFiles/cloudsync_chunking.dir/rsync.cpp.o" "gcc" "src/chunking/CMakeFiles/cloudsync_chunking.dir/rsync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cloudsync_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
