file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_chunking.dir/cdc.cpp.o"
  "CMakeFiles/cloudsync_chunking.dir/cdc.cpp.o.d"
  "CMakeFiles/cloudsync_chunking.dir/fixed_chunker.cpp.o"
  "CMakeFiles/cloudsync_chunking.dir/fixed_chunker.cpp.o.d"
  "CMakeFiles/cloudsync_chunking.dir/rsync.cpp.o"
  "CMakeFiles/cloudsync_chunking.dir/rsync.cpp.o.d"
  "libcloudsync_chunking.a"
  "libcloudsync_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
