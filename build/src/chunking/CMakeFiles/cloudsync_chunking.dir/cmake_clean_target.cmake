file(REMOVE_RECURSE
  "libcloudsync_chunking.a"
)
