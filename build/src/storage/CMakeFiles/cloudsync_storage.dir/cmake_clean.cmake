file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_storage.dir/chunk_backend.cpp.o"
  "CMakeFiles/cloudsync_storage.dir/chunk_backend.cpp.o.d"
  "CMakeFiles/cloudsync_storage.dir/cloud.cpp.o"
  "CMakeFiles/cloudsync_storage.dir/cloud.cpp.o.d"
  "CMakeFiles/cloudsync_storage.dir/metadata_service.cpp.o"
  "CMakeFiles/cloudsync_storage.dir/metadata_service.cpp.o.d"
  "CMakeFiles/cloudsync_storage.dir/object_store.cpp.o"
  "CMakeFiles/cloudsync_storage.dir/object_store.cpp.o.d"
  "libcloudsync_storage.a"
  "libcloudsync_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
