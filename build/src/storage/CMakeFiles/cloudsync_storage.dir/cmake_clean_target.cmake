file(REMOVE_RECURSE
  "libcloudsync_storage.a"
)
