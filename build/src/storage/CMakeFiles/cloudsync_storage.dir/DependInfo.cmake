
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/chunk_backend.cpp" "src/storage/CMakeFiles/cloudsync_storage.dir/chunk_backend.cpp.o" "gcc" "src/storage/CMakeFiles/cloudsync_storage.dir/chunk_backend.cpp.o.d"
  "/root/repo/src/storage/cloud.cpp" "src/storage/CMakeFiles/cloudsync_storage.dir/cloud.cpp.o" "gcc" "src/storage/CMakeFiles/cloudsync_storage.dir/cloud.cpp.o.d"
  "/root/repo/src/storage/metadata_service.cpp" "src/storage/CMakeFiles/cloudsync_storage.dir/metadata_service.cpp.o" "gcc" "src/storage/CMakeFiles/cloudsync_storage.dir/metadata_service.cpp.o.d"
  "/root/repo/src/storage/object_store.cpp" "src/storage/CMakeFiles/cloudsync_storage.dir/object_store.cpp.o" "gcc" "src/storage/CMakeFiles/cloudsync_storage.dir/object_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/cloudsync_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/dedup/CMakeFiles/cloudsync_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cloudsync_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
