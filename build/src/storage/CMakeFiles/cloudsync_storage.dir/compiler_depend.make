# Empty compiler generated dependencies file for cloudsync_storage.
# This may be replaced when dependencies are built.
