file(REMOVE_RECURSE
  "libcloudsync_trace.a"
)
