# Empty compiler generated dependencies file for cloudsync_trace.
# This may be replaced when dependencies are built.
