file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_trace.dir/analysis.cpp.o"
  "CMakeFiles/cloudsync_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/cloudsync_trace.dir/generator.cpp.o"
  "CMakeFiles/cloudsync_trace.dir/generator.cpp.o.d"
  "CMakeFiles/cloudsync_trace.dir/serialize.cpp.o"
  "CMakeFiles/cloudsync_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/cloudsync_trace.dir/trace_record.cpp.o"
  "CMakeFiles/cloudsync_trace.dir/trace_record.cpp.o.d"
  "libcloudsync_trace.a"
  "libcloudsync_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
