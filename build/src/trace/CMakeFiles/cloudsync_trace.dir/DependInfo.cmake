
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/cloudsync_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/cloudsync_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/cloudsync_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/cloudsync_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/cloudsync_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/cloudsync_trace.dir/serialize.cpp.o.d"
  "/root/repo/src/trace/trace_record.cpp" "src/trace/CMakeFiles/cloudsync_trace.dir/trace_record.cpp.o" "gcc" "src/trace/CMakeFiles/cloudsync_trace.dir/trace_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cloudsync_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
