# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("compress")
subdirs("chunking")
subdirs("dedup")
subdirs("net")
subdirs("storage")
subdirs("fs")
subdirs("client")
subdirs("trace")
subdirs("core")
