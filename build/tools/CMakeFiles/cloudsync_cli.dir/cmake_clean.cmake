file(REMOVE_RECURSE
  "CMakeFiles/cloudsync_cli.dir/cloudsync_cli.cpp.o"
  "CMakeFiles/cloudsync_cli.dir/cloudsync_cli.cpp.o.d"
  "cloudsync"
  "cloudsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudsync_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
