# Empty compiler generated dependencies file for cloudsync_cli.
# This may be replaced when dependencies are built.
