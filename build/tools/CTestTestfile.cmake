# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_services "/root/repo/build/tools/cloudsync" "services")
set_tests_properties(cli_services PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_creation "/root/repo/build/tools/cloudsync" "creation" "--service" "Dropbox" "--size" "1M")
set_tests_properties(cli_creation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_modify "/root/repo/build/tools/cloudsync" "modify" "--service" "Dropbox" "--size" "1M")
set_tests_properties(cli_modify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_append "/root/repo/build/tools/cloudsync" "append" "--service" "Box" "--kb" "4" "--period" "8" "--total" "64K")
set_tests_properties(cli_append PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/cloudsync" "trace" "--scale" "0.002")
set_tests_properties(cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/cloudsync" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
