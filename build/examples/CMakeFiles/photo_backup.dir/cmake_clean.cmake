file(REMOVE_RECURSE
  "CMakeFiles/photo_backup.dir/photo_backup.cpp.o"
  "CMakeFiles/photo_backup.dir/photo_backup.cpp.o.d"
  "photo_backup"
  "photo_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
