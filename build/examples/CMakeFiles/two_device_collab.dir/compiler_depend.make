# Empty compiler generated dependencies file for two_device_collab.
# This may be replaced when dependencies are built.
