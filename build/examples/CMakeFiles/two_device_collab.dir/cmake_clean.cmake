file(REMOVE_RECURSE
  "CMakeFiles/two_device_collab.dir/two_device_collab.cpp.o"
  "CMakeFiles/two_device_collab.dir/two_device_collab.cpp.o.d"
  "two_device_collab"
  "two_device_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_device_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
