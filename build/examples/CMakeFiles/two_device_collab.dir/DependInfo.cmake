
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/two_device_collab.cpp" "examples/CMakeFiles/two_device_collab.dir/two_device_collab.cpp.o" "gcc" "examples/CMakeFiles/two_device_collab.dir/two_device_collab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cloudsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/cloudsync_client.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cloudsync_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cloudsync_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cloudsync_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cloudsync_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dedup/CMakeFiles/cloudsync_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/chunking/CMakeFiles/cloudsync_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cloudsync_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
