# Empty dependencies file for dedup_probe_demo.
# This may be replaced when dependencies are built.
