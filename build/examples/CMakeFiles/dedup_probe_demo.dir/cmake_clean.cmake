file(REMOVE_RECURSE
  "CMakeFiles/dedup_probe_demo.dir/dedup_probe_demo.cpp.o"
  "CMakeFiles/dedup_probe_demo.dir/dedup_probe_demo.cpp.o.d"
  "dedup_probe_demo"
  "dedup_probe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_probe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
