file(REMOVE_RECURSE
  "CMakeFiles/service_fingerprint.dir/service_fingerprint.cpp.o"
  "CMakeFiles/service_fingerprint.dir/service_fingerprint.cpp.o.d"
  "service_fingerprint"
  "service_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
