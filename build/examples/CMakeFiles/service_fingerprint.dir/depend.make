# Empty dependencies file for service_fingerprint.
# This may be replaced when dependencies are built.
