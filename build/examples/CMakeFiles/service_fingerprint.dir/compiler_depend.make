# Empty compiler generated dependencies file for service_fingerprint.
# This may be replaced when dependencies are built.
