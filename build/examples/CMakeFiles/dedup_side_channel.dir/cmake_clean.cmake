file(REMOVE_RECURSE
  "CMakeFiles/dedup_side_channel.dir/dedup_side_channel.cpp.o"
  "CMakeFiles/dedup_side_channel.dir/dedup_side_channel.cpp.o.d"
  "dedup_side_channel"
  "dedup_side_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_side_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
