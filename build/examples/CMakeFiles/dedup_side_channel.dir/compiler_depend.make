# Empty compiler generated dependencies file for dedup_side_channel.
# This may be replaced when dependencies are built.
