file(REMOVE_RECURSE
  "CMakeFiles/service_compare.dir/service_compare.cpp.o"
  "CMakeFiles/service_compare.dir/service_compare.cpp.o.d"
  "service_compare"
  "service_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
