# Empty compiler generated dependencies file for service_compare.
# This may be replaced when dependencies are built.
