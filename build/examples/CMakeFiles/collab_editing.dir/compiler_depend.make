# Empty compiler generated dependencies file for collab_editing.
# This may be replaced when dependencies are built.
