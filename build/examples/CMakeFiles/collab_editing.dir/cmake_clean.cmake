file(REMOVE_RECURSE
  "CMakeFiles/collab_editing.dir/collab_editing.cpp.o"
  "CMakeFiles/collab_editing.dir/collab_editing.cpp.o.d"
  "collab_editing"
  "collab_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
