file(REMOVE_RECURSE
  "CMakeFiles/table9_dedup_granularity.dir/table9_dedup_granularity.cpp.o"
  "CMakeFiles/table9_dedup_granularity.dir/table9_dedup_granularity.cpp.o.d"
  "table9_dedup_granularity"
  "table9_dedup_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_dedup_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
