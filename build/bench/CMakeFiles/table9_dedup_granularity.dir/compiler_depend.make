# Empty compiler generated dependencies file for table9_dedup_granularity.
# This may be replaced when dependencies are built.
