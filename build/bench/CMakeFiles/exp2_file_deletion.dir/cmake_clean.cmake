file(REMOVE_RECURSE
  "CMakeFiles/exp2_file_deletion.dir/exp2_file_deletion.cpp.o"
  "CMakeFiles/exp2_file_deletion.dir/exp2_file_deletion.cpp.o.d"
  "exp2_file_deletion"
  "exp2_file_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_file_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
