# Empty dependencies file for exp2_file_deletion.
# This may be replaced when dependencies are built.
