file(REMOVE_RECURSE
  "CMakeFiles/fig8_bandwidth_latency.dir/fig8_bandwidth_latency.cpp.o"
  "CMakeFiles/fig8_bandwidth_latency.dir/fig8_bandwidth_latency.cpp.o.d"
  "fig8_bandwidth_latency"
  "fig8_bandwidth_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bandwidth_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
