file(REMOVE_RECURSE
  "CMakeFiles/fig5_dedup_ratio.dir/fig5_dedup_ratio.cpp.o"
  "CMakeFiles/fig5_dedup_ratio.dir/fig5_dedup_ratio.cpp.o.d"
  "fig5_dedup_ratio"
  "fig5_dedup_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dedup_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
