file(REMOVE_RECURSE
  "CMakeFiles/asd_evaluation.dir/asd_evaluation.cpp.o"
  "CMakeFiles/asd_evaluation.dir/asd_evaluation.cpp.o.d"
  "asd_evaluation"
  "asd_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asd_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
