# Empty compiler generated dependencies file for asd_evaluation.
# This may be replaced when dependencies are built.
