# Empty dependencies file for table7_batched_creation.
# This may be replaced when dependencies are built.
