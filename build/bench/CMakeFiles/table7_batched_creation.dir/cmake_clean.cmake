file(REMOVE_RECURSE
  "CMakeFiles/table7_batched_creation.dir/table7_batched_creation.cpp.o"
  "CMakeFiles/table7_batched_creation.dir/table7_batched_creation.cpp.o.d"
  "table7_batched_creation"
  "table7_batched_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_batched_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
