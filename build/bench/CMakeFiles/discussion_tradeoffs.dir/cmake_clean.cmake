file(REMOVE_RECURSE
  "CMakeFiles/discussion_tradeoffs.dir/discussion_tradeoffs.cpp.o"
  "CMakeFiles/discussion_tradeoffs.dir/discussion_tradeoffs.cpp.o.d"
  "discussion_tradeoffs"
  "discussion_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
