# Empty dependencies file for discussion_tradeoffs.
# This may be replaced when dependencies are built.
