# Empty dependencies file for macro_trace_replay.
# This may be replaced when dependencies are built.
