file(REMOVE_RECURSE
  "CMakeFiles/macro_trace_replay.dir/macro_trace_replay.cpp.o"
  "CMakeFiles/macro_trace_replay.dir/macro_trace_replay.cpp.o.d"
  "macro_trace_replay"
  "macro_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macro_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
