# Empty compiler generated dependencies file for fig3_tue_vs_size.
# This may be replaced when dependencies are built.
