# Empty dependencies file for fig8_hardware.
# This may be replaced when dependencies are built.
