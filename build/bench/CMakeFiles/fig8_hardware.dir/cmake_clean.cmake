file(REMOVE_RECURSE
  "CMakeFiles/fig8_hardware.dir/fig8_hardware.cpp.o"
  "CMakeFiles/fig8_hardware.dir/fig8_hardware.cpp.o.d"
  "fig8_hardware"
  "fig8_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
