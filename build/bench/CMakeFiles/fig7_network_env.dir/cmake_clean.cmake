file(REMOVE_RECURSE
  "CMakeFiles/fig7_network_env.dir/fig7_network_env.cpp.o"
  "CMakeFiles/fig7_network_env.dir/fig7_network_env.cpp.o.d"
  "fig7_network_env"
  "fig7_network_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_network_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
