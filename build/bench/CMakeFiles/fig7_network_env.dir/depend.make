# Empty dependencies file for fig7_network_env.
# This may be replaced when dependencies are built.
