# Empty compiler generated dependencies file for fig6_frequent_mods.
# This may be replaced when dependencies are built.
