file(REMOVE_RECURSE
  "CMakeFiles/fig6_frequent_mods.dir/fig6_frequent_mods.cpp.o"
  "CMakeFiles/fig6_frequent_mods.dir/fig6_frequent_mods.cpp.o.d"
  "fig6_frequent_mods"
  "fig6_frequent_mods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_frequent_mods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
