file(REMOVE_RECURSE
  "CMakeFiles/fig4_modification.dir/fig4_modification.cpp.o"
  "CMakeFiles/fig4_modification.dir/fig4_modification.cpp.o.d"
  "fig4_modification"
  "fig4_modification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_modification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
