# Empty compiler generated dependencies file for fig4_modification.
# This may be replaced when dependencies are built.
