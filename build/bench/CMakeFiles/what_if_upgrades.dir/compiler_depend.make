# Empty compiler generated dependencies file for what_if_upgrades.
# This may be replaced when dependencies are built.
