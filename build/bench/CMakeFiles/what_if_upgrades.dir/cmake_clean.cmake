file(REMOVE_RECURSE
  "CMakeFiles/what_if_upgrades.dir/what_if_upgrades.cpp.o"
  "CMakeFiles/what_if_upgrades.dir/what_if_upgrades.cpp.o.d"
  "what_if_upgrades"
  "what_if_upgrades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_upgrades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
