# Empty dependencies file for table6_file_creation.
# This may be replaced when dependencies are built.
