file(REMOVE_RECURSE
  "CMakeFiles/table6_file_creation.dir/table6_file_creation.cpp.o"
  "CMakeFiles/table6_file_creation.dir/table6_file_creation.cpp.o.d"
  "table6_file_creation"
  "table6_file_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_file_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
