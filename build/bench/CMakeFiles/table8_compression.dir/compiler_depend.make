# Empty compiler generated dependencies file for table8_compression.
# This may be replaced when dependencies are built.
