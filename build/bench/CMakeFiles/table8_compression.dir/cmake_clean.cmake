file(REMOVE_RECURSE
  "CMakeFiles/table8_compression.dir/table8_compression.cpp.o"
  "CMakeFiles/table8_compression.dir/table8_compression.cpp.o.d"
  "table8_compression"
  "table8_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
