file(REMOVE_RECURSE
  "CMakeFiles/fig2_trace_cdf.dir/fig2_trace_cdf.cpp.o"
  "CMakeFiles/fig2_trace_cdf.dir/fig2_trace_cdf.cpp.o.d"
  "fig2_trace_cdf"
  "fig2_trace_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_trace_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
