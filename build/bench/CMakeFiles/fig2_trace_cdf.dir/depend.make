# Empty dependencies file for fig2_trace_cdf.
# This may be replaced when dependencies are built.
