// Reproduces Figure 3: TUE vs size of the created file (PC clients).
// Paper conclusion: a "moderate" file is >= 100 KB (TUE <= 1.5), ideally
// >= 1 MB (TUE < 1.2).
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section("Figure 3: TUE vs size of the created file (PC client)");

  const std::uint64_t sizes[] = {1 * KiB,   4 * KiB,   16 * KiB, 64 * KiB,
                                 100 * KiB, 256 * KiB, 1 * MiB,  4 * MiB,
                                 16 * MiB,  64 * MiB};
  const std::vector<service_profile> services = all_services();

  text_table table;
  std::vector<std::string> header{"Size"};
  for (const service_profile& s : services) header.push_back(s.name);
  table.header(std::move(header));

  // Every (size, service) cell is an independent experiment: build the whole
  // grid first, fan it across cores, then print in order.
  std::vector<std::function<std::uint64_t()>> jobs;
  for (const std::uint64_t z : sizes) {
    for (const service_profile& s : services) {
      jobs.push_back([&s, z] {
        return measure_creation_traffic(
            make_config(s, access_method::pc_client), z);
      });
    }
  }
  const std::vector<std::uint64_t> traffic = run_grid(jobs);

  std::size_t cell = 0;
  for (const std::uint64_t z : sizes) {
    std::vector<std::string> row{human(static_cast<double>(z))};
    for (std::size_t i = 0; i < services.size(); ++i) {
      row.push_back(strfmt("%.2f", tue(traffic[cell++], z)));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Check: TUE <= ~1.5 at 100 KB and < ~1.2 at >= 1 MB for every "
      "service (paper's 'moderate size' guidance).\n");
  return 0;
}
