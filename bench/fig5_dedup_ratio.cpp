// Reproduces Figure 5: cross-user deduplication ratio vs block size
// (128 KB ... 16 MB, plus full-file), trace-driven.
// Paper: block-level dedup shows only *trivial superiority* over full-file.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 5: dedup ratio (cross-user) vs block size "
      "[paper: block-level barely above the full-file level line]");

  trace_params params;
  params.scale = 0.05;  // ~11k files
  const trace_dataset ds = generate_trace(params);

  const double full_cross = dedup_ratio_full_file(ds, true);
  const double full_same = dedup_ratio_full_file(ds, false);

  text_table table;
  table.header({"Granularity", "Dedup ratio (cross-user)",
                "Dedup ratio (same user)", "vs full-file"});
  for (std::size_t g = 0; g < trace_block_sizes.size(); ++g) {
    const double cross = dedup_ratio_blocks(ds, g, true);
    const double same = dedup_ratio_blocks(ds, g, false);
    table.row({human(static_cast<double>(trace_block_sizes[g])),
               strfmt("%.4f", cross), strfmt("%.4f", same),
               strfmt("+%.2f%%", (cross / full_cross - 1.0) * 100.0)});
  }
  table.row({"Full file", strfmt("%.4f", full_cross),
             strfmt("%.4f", full_same), "baseline"});
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Full-file duplicate byte fraction: %.1f%% (paper: 18.8%%). The gain "
      "from block-level dedup stays in the low percent range -> supporting "
      "full-file dedup is basically sufficient.\n",
      full_file_duplicate_fraction(ds) * 100.0);
  return 0;
}
