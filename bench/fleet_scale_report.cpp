// Fleet replay at scale: rope (CoW content store) vs flat per-layer copies,
// same workload, one binary.
//
// Two grids:
//   - identity grid (old caps: 2500 files/service, 2 MiB clamp): the CoW
//     rewrite must be invisible in every report — per-service fleet/TUE
//     reports byte-identical to the flat path, and identical when the
//     replay runs on 1 vs 4 threads (CLOUDSYNC_THREADS equivalent).
//   - scale grid (new defaults: whole trace, 64 MiB clamp, dedup-heavy by
//     construction — duplicate byte share raised to 45 % and version churn
//     doubled over the calibrated trace, modelling collaboration folders):
//     peak store memory and wall-clock per mode. The self-check requires
//     >= 5x peak-memory reduction for the rope.
//
// Each leg runs in a forked child so modes cannot share interned chunks,
// memo entries, or a high-water mark; the child reports the store's peak
// live bytes (primary metric) and ru_maxrss (corroboration).
//
// Writes BENCH_fleet.json (or argv[1]). `--small` runs a reduced identity
// grid only — the ASan CI leg. Exit status is the self-check verdict.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "core/fleet.hpp"
#include "store/content_store.hpp"
#include "util/content_cache.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

struct run_result {
  double wall_ms = 0;
  std::uint64_t peak_store_bytes = 0;
  std::uint64_t maxrss_kb = 0;
  std::uint64_t report_hash = 0;  ///< content_hash64 of the serialized reports
  std::uint64_t files = 0;
  std::uint64_t update_bytes = 0;
  std::uint64_t sync_traffic = 0;
  bool ok = false;
};

/// Every field a fleet report carries, serialized for byte-identity hashing.
std::string serialize_reports(const std::vector<fleet_service_report>& reports) {
  std::ostringstream os;
  for (const fleet_service_report& r : reports) {
    os << r.service << '|' << r.files << '|' << r.dropped_files << '|'
       << r.users << '|' << r.update_bytes << '|' << r.sync_traffic << '|'
       << r.commits << '|' << r.mean_staleness_sec << '|'
       << r.backend_retained_bytes << '|' << r.backend_live_bytes << '|'
       << r.tue() << '|' << r.bill.total_usd() << '\n';
  }
  return os.str();
}

/// Run one replay leg in a forked child: mode isolation is total (no shared
/// intern table, wire-size cache, identity memo, or rss high-water mark).
run_result run_leg(const fleet_config& cfg, content_mode mode) {
  int fd[2];
  if (pipe(fd) != 0) return {};
  const pid_t pid = fork();
  if (pid == 0) {
    close(fd[0]);
    content_store::global().set_mode(mode);
    content_store::global().reset_peak();
    const auto t0 = std::chrono::steady_clock::now();
    const auto reports = replay_trace_fleet(cfg);
    run_result r;
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    r.peak_store_bytes = content_store::global().stats().peak_live_bytes;
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    r.maxrss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
    const std::string s = serialize_reports(reports);
    r.report_hash = content_hash64(
        byte_view{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    for (const fleet_service_report& rep : reports) {
      r.files += rep.files;
      r.update_bytes += rep.update_bytes;
      r.sync_traffic += rep.sync_traffic;
    }
    r.ok = true;
    std::size_t off = 0;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&r);
    while (off < sizeof r) {
      const ssize_t n = write(fd[1], p + off, sizeof(r) - off);
      if (n <= 0) _exit(2);
      off += static_cast<std::size_t>(n);
    }
    _exit(0);
  }
  close(fd[1]);
  run_result r;
  std::size_t off = 0;
  auto* p = reinterpret_cast<std::uint8_t*>(&r);
  while (off < sizeof r) {
    const ssize_t n = read(fd[0], p + off, sizeof(r) - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (off != sizeof r || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return {};
  }
  return r;
}

const char* mode_name(content_mode m) {
  return m == content_mode::cow ? "cow" : "flat";
}

void print_leg(const char* label, const run_result& r) {
  std::printf("  %-12s %8.0f ms   peak store %10s   maxrss %10s   "
              "traffic %s\n",
              label, r.wall_ms, human(static_cast<double>(r.peak_store_bytes)).c_str(),
              human(static_cast<double>(r.maxrss_kb) * 1024.0).c_str(),
              human(static_cast<double>(r.sync_traffic)).c_str());
}

void json_leg(std::ostream& os, const char* key, const run_result& r,
              bool last = false) {
  os << "    \"" << key << "\": {\"wall_ms\": " << r.wall_ms
     << ", \"peak_store_bytes\": " << r.peak_store_bytes
     << ", \"maxrss_kb\": " << r.maxrss_kb << ", \"files\": " << r.files
     << ", \"update_bytes\": " << r.update_bytes
     << ", \"sync_traffic\": " << r.sync_traffic << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }

  print_section(small ? "Fleet scale report (small identity grid)"
                      : "Fleet scale report: rope vs flat at matched scale");

  // Identity grid at the historical caps: the CoW store must be invisible.
  fleet_config id_cfg;
  id_cfg.trace.scale = small ? 0.005 : 0.02;
  id_cfg.max_files_per_service = small ? 100 : 2500;
  id_cfg.trace.max_file_bytes = 2 * MiB;  // the old clamp
  id_cfg.replay_threads = 1;

  std::printf("identity grid: scale %.3f, cap %zu files/service, clamp %s\n",
              id_cfg.trace.scale, id_cfg.max_files_per_service,
              human(static_cast<double>(id_cfg.trace.max_file_bytes)).c_str());
  const run_result id_flat = run_leg(id_cfg, content_mode::flat);
  const run_result id_cow = run_leg(id_cfg, content_mode::cow);
  fleet_config id_mt_cfg = id_cfg;
  id_mt_cfg.replay_threads = 4;
  const run_result id_cow_mt = run_leg(id_mt_cfg, content_mode::cow);
  print_leg("flat", id_flat);
  print_leg("cow", id_cow);
  print_leg("cow x4thr", id_cow_mt);

  const bool legs_ok = id_flat.ok && id_cow.ok && id_cow_mt.ok;
  const bool identical_mode =
      legs_ok && id_cow.report_hash == id_flat.report_hash;
  const bool identical_threads =
      legs_ok && id_cow.report_hash == id_cow_mt.report_hash;
  std::printf("  reports byte-identical cow vs flat: %s; across 1/4 replay "
              "threads: %s\n",
              identical_mode ? "yes" : "NO", identical_threads ? "yes" : "NO");

  // Scale grid at the new defaults: whole trace, 64 MiB clamp, and a
  // dedup-heavy workload — the duplicate byte share is raised from the
  // trace's calibrated 18.8 % to 45 % and the version churn roughly doubled
  // (collaboration-style folders: shared documents re-saved many times).
  // Every flat-mode version is a full private copy in the cloud history;
  // a CoW version shares all but the patched chunk, so this grid is where
  // per-layer copying actually hurts.
  run_result sc_flat, sc_cow;
  double reduction = 0;
  bool reduction_ok = true;  // vacuously true for --small
  fleet_config sc_cfg;  // whole trace; clamp pinned (flat leg copies bytes)
  sc_cfg.trace.max_file_bytes = 64 * MiB;
  sc_cfg.trace.scale = 0.03;
  sc_cfg.trace.p_full_duplicate = 0.45;
  sc_cfg.trace.p_partial_duplicate = 0.12;
  sc_cfg.trace.modify_geometric_p = 0.25;
  sc_cfg.replay_threads = 1;
  if (!small) {
    std::printf("scale grid: scale %.3f, whole trace, clamp %s, "
                "dup share %.2f, modify p %.2f\n",
                sc_cfg.trace.scale,
                human(static_cast<double>(sc_cfg.trace.max_file_bytes)).c_str(),
                sc_cfg.trace.p_full_duplicate,
                sc_cfg.trace.modify_geometric_p);
    sc_flat = run_leg(sc_cfg, content_mode::flat);
    sc_cow = run_leg(sc_cfg, content_mode::cow);
    print_leg("flat", sc_flat);
    print_leg("cow", sc_cow);
    reduction = sc_cow.peak_store_bytes == 0
                    ? 0.0
                    : static_cast<double>(sc_flat.peak_store_bytes) /
                          static_cast<double>(sc_cow.peak_store_bytes);
    reduction_ok = sc_flat.ok && sc_cow.ok && reduction >= 5.0 &&
                   sc_cow.report_hash == sc_flat.report_hash;
    std::printf("  peak-memory reduction: %.1fx (target >= 5x): %s; reports "
                "identical: %s\n",
                reduction, reduction >= 5.0 ? "yes" : "NO",
                sc_cow.report_hash == sc_flat.report_hash ? "yes" : "NO");
  }

  const bool passed = legs_ok && identical_mode && identical_threads &&
                      reduction_ok;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"fleet_scale\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"identity_grid\": {\n"
      << "    \"scale\": " << id_cfg.trace.scale
      << ", \"max_files_per_service\": " << id_cfg.max_files_per_service
      << ", \"max_file_bytes\": " << id_cfg.trace.max_file_bytes << ",\n";
  json_leg(out, "flat", id_flat);
  json_leg(out, "cow", id_cow);
  json_leg(out, "cow_threads4", id_cow_mt);
  out << "    \"reports_identical_cow_vs_flat\": "
      << (identical_mode ? "true" : "false") << ",\n"
      << "    \"reports_identical_threads_1_vs_4\": "
      << (identical_threads ? "true" : "false") << "\n  },\n";
  if (!small) {
    out << "  \"scale_grid\": {\n"
        << "    \"scale\": " << sc_cfg.trace.scale
        << ", \"max_files_per_service\": \"whole-trace\""
        << ", \"max_file_bytes\": " << sc_cfg.trace.max_file_bytes
        << ",\n    \"p_full_duplicate\": " << sc_cfg.trace.p_full_duplicate
        << ", \"modify_geometric_p\": " << sc_cfg.trace.modify_geometric_p
        << ",\n";
    json_leg(out, "flat", sc_flat);
    json_leg(out, "cow", sc_cow);
    out << "    \"peak_memory_reduction\": " << reduction
        << ", \"target_reduction\": 5.0, \"meets_target\": "
        << (reduction >= 5.0 ? "true" : "false") << "\n  },\n";
  }
  out << "  \"self_check_passed\": " << (passed ? "true" : "false") << "\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path);

  if (!passed) {
    std::printf("SELF-CHECK FAILED\n");
    return 1;
  }
  return 0;
}
