// Reproduces Figure 4: sync traffic of a one-random-byte modification in a
// Z-byte compressed file, per access method. IDS services (Dropbox and
// SugarSync PC clients) stay flat (~50 KB); full-file services scale with Z;
// web and mobile are always full-file.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 4: sync traffic of a random one-byte modification "
      "[paper: Dropbox/SugarSync PC flat ~50 KB; others scale with Z]");

  const std::uint64_t sizes[] = {1 * KiB, 10 * KiB, 100 * KiB, 1 * MiB};

  for (access_method m : all_access_methods) {
    std::printf("-- (%c) %s --\n",
                static_cast<char>('a' + static_cast<int>(m)), to_string(m));
    text_table table;
    table.header({"Service", "Z=1 KB", "Z=10 KB", "Z=100 KB", "Z=1 MB"});
    for (const service_profile& s : all_services()) {
      std::vector<std::string> row{s.name};
      for (const std::uint64_t z : sizes) {
        const std::uint64_t traffic =
            measure_modification_traffic(make_config(s, m), z);
        row.push_back(human(static_cast<double>(traffic)));
      }
      table.row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Estimated IDS chunk size (paper: C = traffic - overhead = 10 KB): "
      "compare Dropbox PC Z=1MB cell against its Table 6 1 B overhead.\n");
  return 0;
}
