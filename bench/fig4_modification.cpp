// Reproduces Figure 4: sync traffic of a one-random-byte modification in a
// Z-byte compressed file, per access method. IDS services (Dropbox and
// SugarSync PC clients) stay flat (~50 KB); full-file services scale with Z;
// web and mobile are always full-file.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 4: sync traffic of a random one-byte modification "
      "[paper: Dropbox/SugarSync PC flat ~50 KB; others scale with Z]");

  const std::uint64_t sizes[] = {1 * KiB, 10 * KiB, 100 * KiB, 1 * MiB};
  const std::vector<service_profile> services = all_services();

  std::vector<std::function<std::uint64_t()>> jobs;
  for (access_method m : all_access_methods) {
    for (const service_profile& s : services) {
      for (const std::uint64_t z : sizes) {
        jobs.push_back([&s, m, z] {
          return measure_modification_traffic(make_config(s, m), z);
        });
      }
    }
  }
  const std::vector<std::uint64_t> traffic = run_grid(jobs);

  std::size_t cell = 0;
  for (access_method m : all_access_methods) {
    std::printf("-- (%c) %s --\n",
                static_cast<char>('a' + static_cast<int>(m)), to_string(m));
    text_table table;
    table.header({"Service", "Z=1 KB", "Z=10 KB", "Z=100 KB", "Z=1 MB"});
    for (const service_profile& s : services) {
      std::vector<std::string> row{s.name};
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        row.push_back(human(static_cast<double>(traffic[cell++])));
      }
      table.row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Estimated IDS chunk size (paper: C = traffic - overhead = 10 KB): "
      "compare Dropbox PC Z=1MB cell against its Table 6 1 B overhead.\n");
  return 0;
}
