// Reproduces Table 9 (Experiment 5): data deduplication granularity inferred
// with Algorithm 1 (iterative self duplication), same-user and cross-user.
// Paper: Dropbox 4 MB / No; Ubuntu One Full file / Full file; others No / No.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Table 9: dedup granularity via Algorithm 1 "
      "[paper: Dropbox 4MB|No, Ubuntu One FullFile|FullFile, rest No|No]");

  text_table table;
  table.header({"Service", "Same user (PC)", "Cross users (PC)",
                "probe uploads"});
  for (const service_profile& s : all_services()) {
    const auto same = probe_dedup_granularity(
        make_config(s, access_method::pc_client), /*cross_user=*/false);
    const auto cross = probe_dedup_granularity(
        make_config(s, access_method::pc_client), /*cross_user=*/true);
    table.row({s.name, same.granularity_string(), cross.granularity_string(),
               strfmt("%d + %d", same.upload_rounds, cross.upload_rounds)});
  }
  std::printf("%s\n", table.str().c_str());

  // Narrate one probe to show the algorithm converging in O(log B) rounds.
  std::printf("Algorithm 1 narration for Dropbox (same user):\n");
  const auto probe = probe_dedup_granularity(
      make_config(dropbox(), access_method::pc_client), false);
  for (const std::string& line : probe.log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nWeb-based check (paper: web sync never deduplicates):\n");
  const auto web = probe_dedup_granularity(
      make_config(dropbox(), access_method::web_browser), false);
  std::printf("  Dropbox via web browser -> %s\n",
              web.granularity_string().c_str());
  return 0;
}
