// Google-benchmark microbenchmarks for the from-scratch primitives that the
// simulation's fidelity (and speed) rests on: hashing, rolling checksums,
// LZSS, rsync delta computation, and dedup analysis.
#include <benchmark/benchmark.h>

#include "chunking/cdc.hpp"
#include "chunking/rsync.hpp"
#include "client/sync_engine.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "dedup/dedup_engine.hpp"
#include "util/adler32.hpp"
#include "util/content_cache.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/sha256.hpp"
#include "util/units.hpp"

namespace {

using namespace cloudsync;

byte_buffer payload(std::size_t n, bool text) {
  rng r(99);
  return text ? random_text(r, n) : random_bytes(r, n);
}

void BM_Md5(benchmark::State& state) {
  const byte_buffer data = payload(static_cast<std::size_t>(state.range(0)),
                                   false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(md5(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(4 * 1024)->Arg(1 * MiB);

void BM_Sha1(benchmark::State& state) {
  const byte_buffer data = payload(static_cast<std::size_t>(state.range(0)),
                                   false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(1 * MiB);

void BM_Sha256(benchmark::State& state) {
  const byte_buffer data = payload(static_cast<std::size_t>(state.range(0)),
                                   false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 * MiB);

void BM_RollingChecksum(benchmark::State& state) {
  const byte_buffer data = payload(1 * MiB, false);
  constexpr std::size_t kWindow = 10 * 1024;
  for (auto _ : state) {
    rolling_checksum rc(kWindow);
    rc.reset(byte_view{data}.first(kWindow));
    std::uint32_t acc = 0;
    for (std::size_t pos = 1; pos + kWindow <= data.size(); ++pos) {
      rc.roll(data[pos - 1], data[pos + kWindow - 1]);
      acc ^= rc.value();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RollingChecksum);

void BM_LzssCompressText(benchmark::State& state) {
  const byte_buffer data = payload(1 * MiB, true);
  const int level = static_cast<int>(state.range(0));
  std::size_t out_size = 0;
  for (auto _ : state) {
    const byte_buffer c = lzss_compress(data, {.level = level});
    out_size = c.size();
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(out_size);
}
BENCHMARK(BM_LzssCompressText)->Arg(1)->Arg(5)->Arg(9);

void BM_HuffmanEncode(benchmark::State& state) {
  const byte_buffer data = payload(1 * MiB, true);
  std::size_t out_size = 0;
  for (auto _ : state) {
    const byte_buffer c = huffman_encode(data);
    out_size = c.size();
    benchmark::DoNotOptimize(c.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(out_size);
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const byte_buffer frame = huffman_encode(payload(1 * MiB, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman_decode(frame));
  }
}
BENCHMARK(BM_HuffmanDecode);

void BM_LzssDecompress(benchmark::State& state) {
  const byte_buffer frame = lzss_compress(payload(1 * MiB, true), {.level = 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzss_decompress(frame));
  }
}
BENCHMARK(BM_LzssDecompress);

void BM_RsyncSignature(benchmark::State& state) {
  const byte_buffer data = payload(4 * MiB, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_signature(data, 10 * 1024));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RsyncSignature);

void BM_RsyncDeltaOneByteEdit(benchmark::State& state) {
  byte_buffer old_data = payload(4 * MiB, false);
  byte_buffer new_data = old_data;
  new_data[2 * MiB] ^= 0xff;
  const file_signature sig = compute_signature(old_data, 10 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_delta(sig, new_data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(new_data.size()));
}
BENCHMARK(BM_RsyncDeltaOneByteEdit);

void BM_DedupAnalyzeBlocks(benchmark::State& state) {
  dedup_engine eng({dedup_granularity::fixed_block, 4 * MiB, false});
  const byte_buffer data = payload(16 * MiB, false);
  eng.commit(1, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.analyze(1, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_DedupAnalyzeBlocks);

// The hot-path cache primitives (this PR's performance layer): the fast
// content hash that keys the cache, and the memoized wire-size lookup vs the
// full compressor run it replaces. The Cached/Uncached pair is the per-call
// before/after of sync_client::shipped_size() on warm content.
void BM_ContentHash64(benchmark::State& state) {
  const byte_buffer data = payload(static_cast<std::size_t>(state.range(0)),
                                   false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(content_hash64(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ContentHash64)->Arg(4 * 1024)->Arg(1 * MiB);

void BM_WirePayloadSizeUncached(benchmark::State& state) {
  const byte_buffer data = payload(1 * MiB, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire_payload_size(data, 6));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_WirePayloadSizeUncached);

void BM_WirePayloadSizeCached(benchmark::State& state) {
  const byte_buffer data = payload(1 * MiB, true);
  content_cache cache(64);
  cache.shipped_size(data, 6, &wire_payload_size);  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.shipped_size(data, 6, &wire_payload_size));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_WirePayloadSizeCached);

void BM_Cdc(benchmark::State& state) {
  const byte_buffer data = payload(4 * MiB, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(content_defined_chunks(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Cdc);

}  // namespace

BENCHMARK_MAIN();
