// Streaming sync vs legacy whole-file planning, and the post-cap scale leg.
//
// Two legs:
//   - identity leg: (a) kernel-level — signature / delta / wire bytes from
//     the streaming jobs must be byte-identical to the whole-buffer path on
//     multi-MB inputs; (b) engine-level — forked legacy and streaming worlds
//     replay the same seeded workload and every traffic_meter cell (category
//     x direction), commit count, and cloud content hash must match. Worlds
//     fork so the process-wide signature/delta memos of one can never serve
//     the other (which would hide a divergence).
//   - scale leg (full mode only): a 4 GiB incompressible file — a rope
//     tiling a 32 x 1 MiB segment pool, so unique bytes stay O(pool) — is
//     created and then delta-synced twice through a journaled client with
//     resumable sessions. The self-check requires convergence and a content
//     store peak under 64 MiB: the cap the streaming rework removed is now
//     the *memory* budget, not the file-size ceiling. ru_maxrss corroborates.
//
// Writes BENCH_stream.json (or argv[1]). `--small` runs the reduced identity
// legs only — the ASan CI leg. Exit status is the self-check verdict.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "bench_util.hpp"
#include "chunking/rsync.hpp"
#include "core/experiment.hpp"
#include "store/content_ref.hpp"
#include "store/content_store.hpp"
#include "util/content_cache.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::size_t kCats =
    static_cast<std::size_t>(traffic_category::kCount);

// ---------------------------------------------------------------------------
// Kernel identity: streaming jobs vs whole-buffer functions on one input.
// ---------------------------------------------------------------------------

bool kernel_identity(std::size_t base_bytes) {
  rng r(31);
  const byte_buffer base = synthetic_payload(r, base_bytes, 1.8);
  // An edited cousin: two interior patches plus an appended tail — copy runs,
  // literal runs, and a tail block all appear in the delta.
  byte_buffer edited = base;
  const byte_buffer patch1 = random_bytes(r, 9000);
  const byte_buffer patch2 = random_bytes(r, 513);
  std::memcpy(edited.data() + base_bytes / 5, patch1.data(), patch1.size());
  std::memcpy(edited.data() + (3 * base_bytes) / 4, patch2.data(),
              patch2.size());
  const byte_buffer tail = random_bytes(r, 70000);
  edited.insert(edited.end(), tail.begin(), tail.end());

  const std::size_t bs = 64 * KiB;
  // Whole-buffer path.
  const file_signature sig = compute_signature(base, bs);
  const file_delta delta = compute_delta(sig, edited);
  const byte_buffer wire = serialize_delta(delta);

  // Streaming path over ropes.
  const content_ref old_ref = content_ref::from_bytes(base);
  const content_ref new_ref = content_ref::from_bytes(edited);
  const file_signature sig2 = compute_signature_ref(old_ref, bs);
  const auto events = compute_delta_events(sig2, new_ref);
  const file_delta delta2 = delta_from_events(sig2.block_size, new_ref, events);

  bool ok = true;
  ok &= serialize_delta(delta2) == wire;
  ok &= delta_wire_size(delta2) == wire.size();
  content_hasher64 h;
  walk_delta_wire(delta2, [&](byte_view v) { h.update(v); });
  ok &= h.finish() == content_hash64(wire);
  ok &= apply_delta_ref(old_ref, delta2).equal(edited);
  ok &= new_ref.equal(apply_delta(base, parse_delta(wire)));
  return ok;
}

// ---------------------------------------------------------------------------
// Engine identity: forked legacy vs streaming worlds on a seeded workload.
// ---------------------------------------------------------------------------

struct workload_sizes {
  std::size_t a, b, c, append;
};

void run_workload(experiment_env& env, const workload_sizes& sz) {
  station& st = env.primary();
  rng content(7);
  st.fs.create("a.bin", make_compressed_file(content, sz.a),
               env.clock().now());
  st.fs.create("b.txt", make_text_file(content, sz.b), env.clock().now());
  st.fs.create("c.rand", random_bytes(content, sz.c), env.clock().now());
  env.settle();
  for (int i = 0; i < 3; ++i) {
    env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
    modify_random_byte(st.fs, "a.bin", env.random(), env.clock().now());
    env.settle();
  }
  env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
  append_random(st.fs, "b.txt", env.random(), sz.append, env.clock().now());
  env.settle();
  env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
  modify_random_byte(st.fs, "c.rand", env.random(), env.clock().now());
  env.settle();
}

struct world_run {
  double wall_ms = 0;
  std::uint64_t meter[2][kCats] = {};
  std::uint64_t commits = 0;
  std::uint64_t cloud_hash = 0;
  std::uint64_t peak_store_bytes = 0;
  bool ok = false;

  std::uint64_t total_traffic() const {
    std::uint64_t t = 0;
    for (int d = 0; d < 2; ++d) {
      for (std::size_t c = 0; c < kCats; ++c) t += meter[d][c];
    }
    return t;
  }
};

/// One engine world in a forked child: legacy and streaming runs share no
/// process-wide memo, cache, or store high-water mark.
world_run run_world(const service_profile& profile, bool whole_file_planning,
                    bool journal, const workload_sizes& sz) {
  int fd[2];
  if (pipe(fd) != 0) return {};
  const pid_t pid = fork();
  if (pid == 0) {
    close(fd[0]);
    content_store::global().reset_peak();
    experiment_config cfg{profile};
    cfg.method = access_method::pc_client;
    cfg.use_content_cache = false;
    cfg.whole_file_planning = whole_file_planning;
    cfg.journal = journal;
    const auto t0 = std::chrono::steady_clock::now();
    experiment_env env(cfg);
    run_workload(env, sz);
    world_run w;
    w.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    const traffic_meter& m = env.primary().client->meter();
    for (int d = 0; d < 2; ++d) {
      for (std::size_t c = 0; c < kCats; ++c) {
        w.meter[d][c] = m.get(static_cast<direction>(d),
                              static_cast<traffic_category>(c));
      }
    }
    w.commits = env.primary().client->commit_count();
    std::uint64_t h = 0;
    for (const char* path : {"a.bin", "b.txt", "c.rand"}) {
      h = mix64(h ^ env.the_cloud().file_content(0, path)->hash64());
    }
    w.cloud_hash = h;
    w.peak_store_bytes = content_store::global().stats().peak_live_bytes;
    w.ok = true;
    std::size_t off = 0;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&w);
    while (off < sizeof w) {
      const ssize_t n = write(fd[1], p + off, sizeof(w) - off);
      if (n <= 0) _exit(2);
      off += static_cast<std::size_t>(n);
    }
    _exit(0);
  }
  close(fd[1]);
  world_run w;
  std::size_t off = 0;
  auto* p = reinterpret_cast<std::uint8_t*>(&w);
  while (off < sizeof w) {
    const ssize_t n = read(fd[0], p + off, sizeof(w) - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (off != sizeof w || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return {};
  }
  return w;
}

/// Per-cell meter equality — not grand totals, which could mask compensating
/// differences between categories or directions.
bool worlds_identical(const world_run& legacy, const world_run& streaming) {
  if (!legacy.ok || !streaming.ok) return false;
  bool same = true;
  for (int d = 0; d < 2; ++d) {
    for (std::size_t c = 0; c < kCats; ++c) {
      if (legacy.meter[d][c] != streaming.meter[d][c]) {
        std::printf("    MISMATCH %s %s: legacy %llu streaming %llu\n",
                    to_string(static_cast<traffic_category>(c)),
                    d == 0 ? "up" : "down",
                    static_cast<unsigned long long>(legacy.meter[d][c]),
                    static_cast<unsigned long long>(streaming.meter[d][c]));
        same = false;
      }
    }
  }
  same &= legacy.commits == streaming.commits;
  same &= legacy.cloud_hash == streaming.cloud_hash;
  return same;
}

struct identity_case {
  const char* key;
  world_run legacy, streaming;
  bool identical = false;
};

// ---------------------------------------------------------------------------
// Scale leg: one 4 GiB file through a journaled streaming client.
// ---------------------------------------------------------------------------

struct scale_run {
  double create_ms = 0;
  double update_ms = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_up = 0;
  std::uint64_t total_traffic = 0;
  std::uint64_t commits = 0;
  std::uint64_t peak_store_bytes = 0;
  std::uint64_t maxrss_kb = 0;
  bool converged = false;
  bool ok = false;
};

constexpr std::uint64_t kScaleFileBytes = 4ull * GiB;
constexpr std::uint64_t kPeakBudget = 64 * MiB;

/// The big file: a rope tiling a pool of 32 seeded 1 MiB incompressible
/// segments (the same shape core/fleet gives uncapped trace files). Unique
/// bytes are O(pool); the logical file is as large as we like.
content_ref make_pooled_file(std::uint64_t size) {
  constexpr std::size_t kSegments = 32;
  constexpr std::size_t kSegBytes = 1 * MiB;
  rng r(99);
  std::vector<content_ref> pool;
  pool.reserve(kSegments);
  for (std::size_t i = 0; i < kSegments; ++i) {
    pool.push_back(content_ref::from_buffer(random_bytes(r, kSegBytes)));
  }
  content_ref::builder b;
  std::uint64_t j = 0;
  for (std::uint64_t left = size; left > 0; ++j) {
    const std::size_t len =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, kSegBytes));
    b.append(pool[mix64(0x5eedull ^ j) % kSegments], 0, len);
    left -= len;
  }
  return b.build();
}

scale_run run_scale_leg() {
  int fd[2];
  if (pipe(fd) != 0) return {};
  const pid_t pid = fork();
  if (pid == 0) {
    close(fd[0]);
    content_store::global().reset_peak();

    // Dropbox-shaped client with the knobs that matter at this size: IDS on,
    // delta blocks widened to 4 MiB (1024 signature blocks for 4 GiB), dedup
    // off (the tiled pool would self-dedup and dodge the transfer under
    // test), compression level kept so the incompressible probe fast path is
    // what prices the payload.
    service_profile prof = dropbox();
    prof.name = "stream_scale";
    prof.delta_chunk_size = 4 * MiB;
    prof.dedup = dedup_policy::disabled();
    for (const access_method m : all_access_methods) {
      prof.method(m).dedup_enabled = false;
    }

    experiment_config cfg{prof};
    cfg.method = access_method::pc_client;
    cfg.journal = true;                     // resumable sessions at 4 GiB
    cfg.recovery.chunk_bytes = 4 * MiB;     // 1024 session ranges

    experiment_env env(cfg);
    station& st = env.primary();

    scale_run s;
    const content_ref big = make_pooled_file(kScaleFileBytes);
    s.file_bytes = big.size();

    const auto t0 = std::chrono::steady_clock::now();
    st.fs.create("big.bin", big, env.clock().now());
    env.settle();
    const auto t1 = std::chrono::steady_clock::now();
    s.create_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    for (int i = 0; i < 2; ++i) {
      env.clock().advance_to(env.clock().now() + sim_time::from_sec(120));
      modify_random_byte(st.fs, "big.bin", env.random(), env.clock().now());
      env.settle();
    }
    s.update_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t1)
                      .count();

    const traffic_meter& m = env.primary().client->meter();
    s.payload_up = m.get(direction::up, traffic_category::payload);
    for (int d = 0; d < 2; ++d) {
      for (std::size_t c = 0; c < kCats; ++c) {
        s.total_traffic += m.get(static_cast<direction>(d),
                                 static_cast<traffic_category>(c));
      }
    }
    s.commits = env.primary().client->commit_count();
    s.converged =
        env.the_cloud().file_content(0, "big.bin")->equal(st.fs.read("big.bin"));
    s.peak_store_bytes = content_store::global().stats().peak_live_bytes;
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    s.maxrss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
    s.ok = true;
    std::size_t off = 0;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&s);
    while (off < sizeof s) {
      const ssize_t n = write(fd[1], p + off, sizeof(s) - off);
      if (n <= 0) _exit(2);
      off += static_cast<std::size_t>(n);
    }
    _exit(0);
  }
  close(fd[1]);
  scale_run s;
  std::size_t off = 0;
  auto* p = reinterpret_cast<std::uint8_t*>(&s);
  while (off < sizeof s) {
    const ssize_t n = read(fd[0], p + off, sizeof(s) - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (off != sizeof s || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return {};
  }
  return s;
}

void json_world(std::ostream& os, const char* key, const world_run& w,
                bool last = false) {
  os << "      \"" << key << "\": {\"wall_ms\": " << w.wall_ms
     << ", \"total_traffic\": " << w.total_traffic()
     << ", \"commits\": " << w.commits
     << ", \"peak_store_bytes\": " << w.peak_store_bytes << "}"
     << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }

  print_section(small ? "Streaming sync report (small identity legs)"
                      : "Streaming sync report: identity + 4 GiB scale leg");

  // Kernel identity: the streaming jobs against the whole-buffer functions.
  const std::size_t kernel_bytes = small ? 1 * MiB : 8 * MiB;
  const bool kernel_ok = kernel_identity(kernel_bytes);
  std::printf("kernel identity (%s base): %s\n",
              human(static_cast<double>(kernel_bytes)).c_str(),
              kernel_ok ? "byte-identical" : "DIVERGED");

  // Engine identity: legacy whole-file planning vs streaming, forked worlds.
  const workload_sizes sz = small
                                ? workload_sizes{384 * KiB, 192 * KiB,
                                                 128 * KiB, 16 * KiB}
                                : workload_sizes{6 * MiB, 3 * MiB, 4 * MiB,
                                                 32 * KiB};
  identity_case cases[] = {
      {"dropbox", {}, {}, false},           // IDS + compression
      {"google_drive", {}, {}, false},      // full-file, no IDS
      {"dropbox_journal", {}, {}, false},   // resumable sessions
  };
  std::printf("engine identity: workload %s/%s/%s, legacy vs streaming\n",
              human(static_cast<double>(sz.a)).c_str(),
              human(static_cast<double>(sz.b)).c_str(),
              human(static_cast<double>(sz.c)).c_str());
  bool engine_ok = true;
  for (identity_case& c : cases) {
    const bool journal = std::strcmp(c.key, "dropbox_journal") == 0;
    const service_profile prof =
        std::strcmp(c.key, "google_drive") == 0 ? google_drive() : dropbox();
    c.legacy = run_world(prof, /*whole_file_planning=*/true, journal, sz);
    c.streaming = run_world(prof, /*whole_file_planning=*/false, journal, sz);
    c.identical = worlds_identical(c.legacy, c.streaming);
    std::printf("  %-16s legacy %7.0f ms  streaming %7.0f ms  traffic %10s  "
                "identical: %s\n",
                c.key, c.legacy.wall_ms, c.streaming.wall_ms,
                human(static_cast<double>(c.streaming.total_traffic())).c_str(),
                c.identical ? "yes" : "NO");
    engine_ok &= c.identical;
  }

  // Scale leg (full mode): the file the 64 MiB cap used to forbid.
  scale_run sc;
  bool scale_ok = true;  // vacuously true for --small
  if (!small) {
    std::printf("scale leg: %s pooled file, journaled streaming client\n",
                human(static_cast<double>(kScaleFileBytes)).c_str());
    sc = run_scale_leg();
    scale_ok = sc.ok && sc.converged && sc.file_bytes >= kScaleFileBytes &&
               sc.peak_store_bytes <= kPeakBudget;
    std::printf("  create %8.0f ms   updates %8.0f ms   payload up %10s\n",
                sc.create_ms, sc.update_ms,
                human(static_cast<double>(sc.payload_up)).c_str());
    std::printf("  peak store %10s (budget %s): %s   maxrss %10s   "
                "converged: %s\n",
                human(static_cast<double>(sc.peak_store_bytes)).c_str(),
                human(static_cast<double>(kPeakBudget)).c_str(),
                sc.peak_store_bytes <= kPeakBudget ? "yes" : "OVER",
                human(static_cast<double>(sc.maxrss_kb) * 1024.0).c_str(),
                sc.converged ? "yes" : "NO");
  }

  const bool passed = kernel_ok && engine_ok && scale_ok;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"stream_scale\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"kernel_identity\": {\"base_bytes\": " << kernel_bytes
      << ", \"identical\": " << (kernel_ok ? "true" : "false") << "},\n"
      << "  \"engine_identity\": {\n";
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const identity_case& c = cases[i];
    out << "    \"" << c.key << "\": {\n";
    json_world(out, "legacy", c.legacy);
    json_world(out, "streaming", c.streaming);
    out << "      \"identical\": " << (c.identical ? "true" : "false")
        << "\n    }" << (i + 1 < std::size(cases) ? ",\n" : "\n");
  }
  out << "  },\n";
  if (!small) {
    out << "  \"scale_leg\": {\n"
        << "    \"file_bytes\": " << sc.file_bytes
        << ", \"create_ms\": " << sc.create_ms
        << ", \"update_ms\": " << sc.update_ms << ",\n"
        << "    \"payload_up\": " << sc.payload_up
        << ", \"total_traffic\": " << sc.total_traffic
        << ", \"commits\": " << sc.commits << ",\n"
        << "    \"peak_store_bytes\": " << sc.peak_store_bytes
        << ", \"peak_budget_bytes\": " << kPeakBudget
        << ", \"maxrss_kb\": " << sc.maxrss_kb << ",\n"
        << "    \"converged\": " << (sc.converged ? "true" : "false")
        << ", \"within_budget\": "
        << (sc.peak_store_bytes <= kPeakBudget ? "true" : "false")
        << "\n  },\n";
  }
  out << "  \"self_check_passed\": " << (passed ? "true" : "false") << "\n}\n";
  out.close();
  std::printf("wrote %s\n", out_path);

  if (!passed) {
    std::printf("SELF-CHECK FAILED\n");
    return 1;
  }
  return 0;
}
