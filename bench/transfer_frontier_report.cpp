// Transfer-frontier sweep: what does proactive redundancy (FEC striping
// across parallel connections + hedged duplicates) buy at the delay tail,
// and what does it cost at the network level? For each fault intensity of
// the PR 2 failure sweep, runs the serialized create+rewrite workload
// (run_transfer_experiment: every transaction settles alone, its event →
// all-idle latency is one delay sample) once per scheduler configuration —
// single-connection baseline, the adaptive controller, and pinned (K,R)
// lattice points — and plots the delay CDF against the TUE overhead the
// redundancy bytes add: TOFEC's throughput–delay frontier, network-level.
//
// Self-checks (nonzero exit on violation):
//   - every cell is byte-identical between a serial and a parallel grid
//     evaluation (CLOUDSYNC_THREADS=1 vs N);
//   - on the fault-free link, the adaptive scheduler is byte-invisible:
//     every meter category, every delay sample, and every counter matches
//     the scheduler-off baseline exactly (the controller must never
//     escalate without observed faults);
//   - the single-connection baseline meters zero redundancy bytes
//     everywhere, and the adaptive config meters zero at intensity 0;
//   - at every nonzero intensity some scheduler config beats the baseline's
//     p99 delay strictly, while its overhead ratio — (redundancy + retry)
//     bytes per data-update byte — stays within kOverheadBudget of the
//     baseline's (redundancy must buy its tail latency, not blow the TUE
//     budget the paper is about).
//
// Machine-readable output: BENCH_transfer.json (or argv[1]). `--small` runs
// the reduced identity grid only (sanitizer CI leg).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::uint64_t kFileBytes = 96 * KiB;
constexpr std::size_t kChunkBytes = 8 * KiB;  // 12 chunks per upload
constexpr double kOverheadBudget = 0.35;      // extra (redundancy+retry)/MB
const double kIntensities[] = {0.0, 0.25, 0.5, 1.0};
const std::uint64_t kSeeds[] = {1234, 4711, 9001};

/// One scheduler configuration of the sweep. `pinned` rows bypass the
/// controller (the decision is forced), mapping the lattice itself.
struct sched_config {
  const char* name;
  bool enabled;
  bool pinned;
  int k;
  int r;
};
const sched_config kConfigs[] = {
    {"single", false, false, 1, 0},  // scheduler off: today's serial loop
    {"adaptive", true, false, 0, 0},
    {"k2r1", true, true, 2, 1},
    {"k3r1", true, true, 3, 1},
    {"k4r2", true, true, 4, 2},
};

experiment_config cfg_for(double intensity, const sched_config& sc,
                          std::uint64_t seed) {
  experiment_config cfg = make_config(dropbox(), access_method::pc_client);
  cfg.link = link_config::beijing();  // the paper's lossy vantage point
  cfg.seed = seed;
  cfg.faults = fault_plan::degraded(intensity);
  cfg.recovery.chunk_bytes = kChunkBytes;
  cfg.transfer.enabled = sc.enabled;
  if (sc.pinned) {
    cfg.transfer.pinned = true;
    cfg.transfer.pin = {sc.k, sc.r, sim_time::from_sec(2)};
  }
  return cfg;
}

bool same(const transfer_run_result& a, const transfer_run_result& b) {
  return a.delay_samples_sec == b.delay_samples_sec &&
         a.total_traffic == b.total_traffic &&
         a.payload_traffic == b.payload_traffic &&
         a.retry_traffic == b.retry_traffic &&
         a.redundancy_traffic == b.redundancy_traffic &&
         a.resume_traffic == b.resume_traffic &&
         a.data_update_bytes == b.data_update_bytes && a.tue == b.tue &&
         a.retries == b.retries && a.requeues == b.requeues &&
         a.fallbacks == b.fallbacks &&
         a.faults_injected == b.faults_injected &&
         a.sched.stripes == b.sched.stripes &&
         a.sched.hedges_fired == b.sched.hedges_fired &&
         a.sched.hedges_won == b.sched.hedges_won &&
         a.sched.reconstructions == b.sched.reconstructions &&
         a.sched.recovery_rounds == b.sched.recovery_rounds;
}

/// Seed-pooled view of one (intensity, config) cell: the delay distribution
/// over every seed's transactions, plus averaged traffic shares.
struct cell_view {
  std::vector<double> delays;
  double p50 = 0, p95 = 0, p99 = 0, mean = 0;
  double tue = 0;
  double overhead_ratio = 0;  ///< (redundancy+retry) / data_update_bytes
  double redundancy_traffic = 0;
  double retry_traffic = 0;
  std::uint64_t requeues = 0;
  std::uint64_t stripes = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t reconstructions = 0;
  std::uint64_t recovery_rounds = 0;
};

cell_view pool(const transfer_run_result* runs, std::size_t n) {
  cell_view v;
  for (std::size_t i = 0; i < n; ++i) {
    const transfer_run_result& r = runs[i];
    v.delays.insert(v.delays.end(), r.delay_samples_sec.begin(),
                    r.delay_samples_sec.end());
    v.tue += r.tue;
    v.overhead_ratio +=
        static_cast<double>(r.redundancy_traffic + r.retry_traffic) /
        static_cast<double>(r.data_update_bytes);
    v.redundancy_traffic += static_cast<double>(r.redundancy_traffic);
    v.retry_traffic += static_cast<double>(r.retry_traffic);
    v.requeues += r.requeues;
    v.stripes += r.sched.stripes;
    v.hedges_fired += r.sched.hedges_fired;
    v.hedges_won += r.sched.hedges_won;
    v.reconstructions += r.sched.reconstructions;
    v.recovery_rounds += r.sched.recovery_rounds;
  }
  v.tue /= static_cast<double>(n);
  v.overhead_ratio /= static_cast<double>(n);
  v.redundancy_traffic /= static_cast<double>(n);
  v.retry_traffic /= static_cast<double>(n);
  const empirical_cdf cdf(std::vector<double>(v.delays));
  v.p50 = cdf.quantile(0.50);
  v.p95 = cdf.quantile(0.95);
  v.p99 = cdf.quantile(0.99);
  for (const double d : v.delays) v.mean += d;
  v.mean /= static_cast<double>(v.delays.empty() ? 1 : v.delays.size());
  return v;
}

using job = std::function<transfer_run_result()>;

std::vector<transfer_run_result> evaluate(const std::vector<job>& jobs,
                                          unsigned threads) {
  std::vector<transfer_run_result> out(jobs.size());
  parallel_runner pool(threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
  return out;
}

void json_cdf(std::ofstream& out, const std::vector<double>& samples) {
  const empirical_cdf cdf{std::vector<double>(samples)};
  const auto pts = cdf.points(24);
  out << "[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out << (i ? ", " : "") << "[" << pts[i].first << ", " << pts[i].second
        << "]";
  }
  out << "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }
  if (out_path == nullptr) out_path = "BENCH_transfer.json";
  print_section(small
                    ? "Transfer frontier (small identity grid)"
                    : "Transfer frontier: tail delay vs redundancy overhead");

  // --small keeps the legs the sanitizer CI needs: the fault-free identity
  // pair plus one faulted striped cell, single seed.
  const std::size_t files = small ? 4 : 10;
  const std::vector<double> intensities =
      small ? std::vector<double>{0.0, 1.0}
            : std::vector<double>(std::begin(kIntensities),
                                  std::end(kIntensities));
  const std::vector<std::uint64_t> seeds =
      small ? std::vector<std::uint64_t>{kSeeds[0]}
            : std::vector<std::uint64_t>(std::begin(kSeeds),
                                         std::end(kSeeds));
  const std::vector<sched_config> configs =
      small ? std::vector<sched_config>{kConfigs[0], kConfigs[1],
                                        kConfigs[4]}
            : std::vector<sched_config>(std::begin(kConfigs),
                                        std::end(kConfigs));
  const std::size_t num_seeds = seeds.size();
  const std::size_t num_configs = configs.size();

  // Grid layout: [intensity][config][seed].
  std::vector<job> jobs;
  for (const double intensity : intensities) {
    for (const sched_config& sc : configs) {
      for (const std::uint64_t seed : seeds) {
        jobs.push_back([cfg = cfg_for(intensity, sc, seed), files] {
          return run_transfer_experiment(cfg, files, kFileBytes);
        });
      }
    }
  }

  const unsigned threads = parallel_runner::default_thread_count();
  const std::vector<transfer_run_result> serial = evaluate(jobs, 1);
  const std::vector<transfer_run_result> parallel = evaluate(jobs, threads);

  bool deterministic = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    deterministic = deterministic && same(serial[i], parallel[i]);
  }

  auto cell_at = [&](std::size_t intensity, std::size_t config,
                     std::size_t seed) -> const transfer_run_result& {
    return serial[(intensity * num_configs + config) * num_seeds + seed];
  };

  // Fault-free link: the adaptive scheduler must be byte-invisible. (Pinned
  // rows legitimately differ — they force striping — and map the pure cost
  // of redundancy nobody needed.)
  bool clean_identity = true;
  for (std::size_t seed = 0; seed < num_seeds; ++seed) {
    clean_identity = clean_identity && same(cell_at(0, 0, seed),
                                            cell_at(0, 1, seed));
  }

  // Redundancy bytes only ever appear when the scheduler stripes: never for
  // the baseline, and never for the unprovoked adaptive controller.
  bool redundancy_gated = true;
  for (std::size_t in = 0; in < intensities.size(); ++in) {
    for (std::size_t seed = 0; seed < num_seeds; ++seed) {
      redundancy_gated =
          redundancy_gated && cell_at(in, 0, seed).redundancy_traffic == 0;
      if (intensities[in] == 0.0) {
        redundancy_gated =
            redundancy_gated && cell_at(in, 1, seed).redundancy_traffic == 0;
      }
    }
  }

  // Pool each cell across seeds and evaluate the frontier: at every nonzero
  // intensity some scheduler config must beat the baseline's p99 strictly
  // while staying within the overhead budget.
  std::vector<std::vector<cell_view>> table(intensities.size());
  bool frontier_ok = true;
  std::vector<int> winner(intensities.size(), -1);
  for (std::size_t in = 0; in < intensities.size(); ++in) {
    for (std::size_t c = 0; c < num_configs; ++c) {
      std::vector<transfer_run_result> runs(num_seeds);
      for (std::size_t s = 0; s < num_seeds; ++s) runs[s] = cell_at(in, c, s);
      table[in].push_back(pool(runs.data(), num_seeds));
    }
    if (intensities[in] == 0.0) continue;
    const cell_view& base = table[in][0];
    for (std::size_t c = 1; c < num_configs; ++c) {
      const cell_view& v = table[in][c];
      if (v.p99 < base.p99 &&
          v.overhead_ratio <= base.overhead_ratio + kOverheadBudget) {
        if (winner[in] < 0 ||
            v.p99 < table[in][static_cast<std::size_t>(winner[in])].p99) {
          winner[in] = static_cast<int>(c);
        }
      }
    }
    frontier_ok = frontier_ok && winner[in] > 0;
  }

  for (std::size_t in = 0; in < intensities.size(); ++in) {
    text_table t;
    t.header({"config", "p50 s", "p95 s", "p99 s", "mean s", "TUE",
              "overhead", "redundancy", "stripes", "hedges", "reconstr",
              "gave up"});
    for (std::size_t c = 0; c < num_configs; ++c) {
      const cell_view& v = table[in][c];
      t.row({configs[c].name, strfmt("%.1f", v.p50), strfmt("%.1f", v.p95),
             strfmt("%.1f", v.p99), strfmt("%.1f", v.mean),
             strfmt("%.3f", v.tue), strfmt("%.3f", v.overhead_ratio),
             human(v.redundancy_traffic),
             strfmt("%llu", (unsigned long long)v.stripes),
             strfmt("%llu/%llu", (unsigned long long)v.hedges_fired,
                    (unsigned long long)v.hedges_won),
             strfmt("%llu", (unsigned long long)v.reconstructions),
             strfmt("%llu", (unsigned long long)v.requeues)});
    }
    std::printf("--- intensity %.2f (%zu files x %s, %zu seeds%s) ---\n%s\n",
                intensities[in], files, human(kFileBytes).c_str(), num_seeds,
                winner[in] > 0
                    ? strfmt(", frontier winner: %s",
                             configs[static_cast<std::size_t>(winner[in])]
                                 .name)
                          .c_str()
                    : "",
                t.str().c_str());
  }

  std::printf(
      "checks: deterministic(1 vs %u threads)=%s, clean-link identity=%s, "
      "redundancy gated=%s, frontier (p99 win within +%.2f overhead)=%s\n",
      threads, deterministic ? "yes" : "NO", clean_identity ? "yes" : "NO",
      redundancy_gated ? "yes" : "NO", kOverheadBudget,
      small ? "skipped (--small)" : (frontier_ok ? "yes" : "NO"));

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"transfer_frontier\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"files\": " << files << ",\n"
      << "  \"file_bytes\": " << kFileBytes << ",\n"
      << "  \"chunk_bytes\": " << kChunkBytes << ",\n"
      << "  \"seeds\": " << num_seeds << ",\n"
      << "  \"overhead_budget\": " << kOverheadBudget << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "  \"clean_identity\": " << (clean_identity ? "true" : "false")
      << ",\n"
      << "  \"redundancy_gated\": " << (redundancy_gated ? "true" : "false")
      << ",\n"
      << "  \"frontier_ok\": "
      << (small ? "null" : (frontier_ok ? "true" : "false")) << ",\n"
      << "  \"intensities\": [";
  for (std::size_t in = 0; in < intensities.size(); ++in) {
    out << (in == 0 ? "\n" : ",\n") << "    {\"intensity\": "
        << intensities[in] << ", \"winner\": "
        << (winner[in] > 0 ? std::string("\"") +
                                 configs[static_cast<std::size_t>(winner[in])]
                                     .name +
                                 "\""
                           : std::string("null"))
        << ", \"configs\": {";
    for (std::size_t c = 0; c < num_configs; ++c) {
      const cell_view& v = table[in][c];
      out << (c == 0 ? "\n" : ",\n") << "      \"" << configs[c].name
          << "\": {\"p50\": " << v.p50 << ", \"p95\": " << v.p95
          << ", \"p99\": " << v.p99 << ", \"mean\": " << v.mean
          << ", \"tue\": " << v.tue
          << ", \"overhead_ratio\": " << v.overhead_ratio
          << ", \"redundancy_traffic\": " << v.redundancy_traffic
          << ", \"retry_traffic\": " << v.retry_traffic
          << ", \"stripes\": " << v.stripes
          << ", \"hedges_fired\": " << v.hedges_fired
          << ", \"hedges_won\": " << v.hedges_won
          << ", \"reconstructions\": " << v.reconstructions
          << ", \"recovery_rounds\": " << v.recovery_rounds
          << ", \"gave_up\": " << v.requeues << ", \"delay_cdf\": ";
      json_cdf(out, v.delays);
      out << "}";
    }
    out << "\n    }}";
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return deterministic && clean_identity && redundancy_gated &&
                 (small || frontier_ok)
             ? 0
             : 1;
}
