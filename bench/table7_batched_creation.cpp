// Reproduces Table 7 (Experiment 1'): total traffic for synchronising 100
// compressed 1 KB file creations, moved into the sync folder in one batch.
// Paper: Dropbox PC 120 KB (TUE 1.2), Ubuntu One PC 140 KB (1.4); services
// without BDS land at TUE 9-56.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Table 7: total traffic for 100 x 1 KB batched creations "
      "[paper: Dropbox PC 120 KB (1.2), Ubuntu One PC 140 KB (1.4)]");

  constexpr std::size_t kFiles = 100;
  constexpr std::uint64_t kEach = 1 * KiB;
  constexpr std::uint64_t kUpdate = kFiles * kEach;

  const std::vector<service_profile> services = all_services();
  std::vector<std::function<std::uint64_t()>> jobs;
  for (const service_profile& s : services) {
    for (access_method m : all_access_methods) {
      jobs.push_back([&s, m] {
        return measure_batch_creation_traffic(make_config(s, m), kFiles,
                                              kEach);
      });
    }
  }
  const std::vector<std::uint64_t> traffic = run_grid(jobs);

  text_table table;
  table.header({"Service", "PC traffic", "(TUE)", "Web traffic", "(TUE)",
                "Mobile traffic", "(TUE)"});
  std::size_t cell = 0;
  for (const service_profile& s : services) {
    std::vector<std::string> row{s.name};
    for (access_method m : all_access_methods) {
      (void)m;
      const std::uint64_t t = traffic[cell++];
      row.push_back(human(static_cast<double>(t)));
      row.push_back(strfmt("(%.1f)", tue(t, kUpdate)));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "BDS adopters (Dropbox, Ubuntu One PC clients) stay near TUE 1; the "
      "rest pay per-file overhead ~10-50x the data size.\n");
  return 0;
}
