// Before/after harness for the byte-kernel layer: times every content
// kernel (hashing, chunking, checksums, compression estimate) against an
// embedded copy of the pre-optimization scalar implementation, checks the
// outputs are bit-identical, and measures what the fused single-pass
// pipeline and the flat dedup shard buy on top. Also times the fleet replay
// at the old (250) and new (2500) per-service file caps and asserts the
// replay is byte-identical across thread counts.
//
// Writes BENCH_kernels.json (or argv[1]). Exit status is the identity
// verdict: any kernel or replay divergence fails the run (CI gates on it);
// throughput numbers are recorded but never gate, since they depend on the
// host.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "bench_util.hpp"
#include "core/fleet.hpp"
#include "pipeline/byte_pipeline.hpp"
#include "util/adler32.hpp"
#include "util/crc32.hpp"
#include "util/string_key.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

// ---------------------------------------------------------------------------
// Reference kernels: the scalar implementations this PR replaced, kept here
// verbatim-in-shape so the "before" column stays measurable on any host.
// ---------------------------------------------------------------------------
namespace refk {

inline std::uint32_t rotr(std::uint32_t v, int s) {
  return v >> s | v << (32 - s);
}
inline std::uint32_t rotl(std::uint32_t v, int s) {
  return v << s | v >> (32 - s);
}
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

/// Final one-or-two padded blocks of a Merkle–Damgård hash (0x80, zeros,
/// 64-bit bit length; `be` selects the length byte order).
template <typename ProcessBlock>
void md_pad(const std::uint8_t* tail, std::size_t tail_len,
            std::uint64_t total_len, bool be, ProcessBlock&& process) {
  std::uint8_t block[128] = {};
  std::memcpy(block, tail, tail_len);
  block[tail_len] = 0x80;
  const std::size_t blocks = tail_len < 56 ? 1 : 2;
  const std::uint64_t bit_len = total_len * 8;
  std::uint8_t* lenp = block + blocks * 64 - 8;
  if (be) {
    store_be32(lenp, static_cast<std::uint32_t>(bit_len >> 32));
    store_be32(lenp + 4, static_cast<std::uint32_t>(bit_len));
  } else {
    store_le32(lenp, static_cast<std::uint32_t>(bit_len));
    store_le32(lenp + 4, static_cast<std::uint32_t>(bit_len >> 32));
  }
  for (std::size_t b = 0; b < blocks; ++b) process(block + b * 64);
}

constexpr std::uint32_t kSha256Round[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

sha256_digest sha256(byte_view data) {
  std::uint32_t st[8] = {0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
                         0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u};
  const auto process = [&st](const std::uint8_t* block) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = st[0], b = st[1], c = st[2], d = st[3];
    std::uint32_t e = st[4], f = st[5], g = st[6], h = st[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kSha256Round[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      h = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + s0 + maj;
    }
    st[0] += a; st[1] += b; st[2] += c; st[3] += d;
    st[4] += e; st[5] += f; st[6] += g; st[7] += h;
  };
  std::size_t off = 0;
  while (off + 64 <= data.size()) {
    process(data.data() + off);
    off += 64;
  }
  md_pad(data.data() + off, data.size() - off, data.size(), /*be=*/true,
         process);
  sha256_digest out;
  for (int i = 0; i < 8; ++i) store_be32(out.bytes.data() + 4 * i, st[i]);
  return out;
}

constexpr int kMd5Shift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};
constexpr std::uint32_t kMd5Sine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

md5_digest md5(byte_view data) {
  std::uint32_t st[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  const auto process = [&st](const std::uint8_t* block) {
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);
    std::uint32_t a = st[0], b = st[1], c = st[2], d = st[3];
    for (int i = 0; i < 64; ++i) {
      std::uint32_t f;
      int g;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) & 15;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) & 15;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) & 15;
      }
      const std::uint32_t tmp = d;
      d = c;
      c = b;
      b = b + rotl(a + f + kMd5Sine[i] + m[g], kMd5Shift[i]);
      a = tmp;
    }
    st[0] += a; st[1] += b; st[2] += c; st[3] += d;
  };
  std::size_t off = 0;
  while (off + 64 <= data.size()) {
    process(data.data() + off);
    off += 64;
  }
  md_pad(data.data() + off, data.size() - off, data.size(), /*be=*/false,
         process);
  md5_digest out;
  for (int i = 0; i < 4; ++i) store_le32(out.bytes.data() + 4 * i, st[i]);
  return out;
}

sha1_digest sha1(byte_view data) {
  std::uint32_t st[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
                         0xc3d2e1f0u};
  const auto process = [&st](const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
    for (int i = 16; i < 80; ++i) {
      w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    std::uint32_t a = st[0], b = st[1], c = st[2], d = st[3], e = st[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = tmp;
    }
    st[0] += a; st[1] += b; st[2] += c; st[3] += d; st[4] += e;
  };
  std::size_t off = 0;
  while (off + 64 <= data.size()) {
    process(data.data() + off);
    off += 64;
  }
  md_pad(data.data() + off, data.size() - off, data.size(), /*be=*/true,
         process);
  sha1_digest out;
  for (int i = 0; i < 5; ++i) store_be32(out.bytes.data() + 4 * i, st[i]);
  return out;
}

std::uint32_t crc32(byte_view data, std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::uint32_t weak_checksum(byte_view block) {
  std::uint32_t a = 0, b = 0;
  for (const std::uint8_t byte : block) {
    a += byte;
    b += a;
  }
  return (b << 16) | (a & 0xffffu);
}

std::vector<chunk_ref> content_defined_chunks(byte_view data,
                                              cdc_params params) {
  const std::uint64_t* gear = gear_table();
  const std::uint64_t mask = params.avg_size - 1;
  std::vector<chunk_ref> out;
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remain = data.size() - start;
    if (remain <= params.min_size) {
      out.push_back({start, remain});
      break;
    }
    const std::size_t limit = std::min(remain, params.max_size);
    std::uint64_t h = 0;
    std::size_t len = 0;
    for (len = 0; len < limit; ++len) {
      h = (h << 1) + gear[data[start + len]];
      if (len + 1 >= params.min_size && (h & mask) == 0) {
        ++len;
        break;
      }
    }
    out.push_back({start, len});
    start += len;
  }
  return out;
}

}  // namespace refk

// ---------------------------------------------------------------------------
// Measurement scaffolding
// ---------------------------------------------------------------------------

/// Every timed loop folds its results in here so the optimizer cannot
/// discard a kernel call whose value is otherwise unused.
volatile std::uint64_t g_sink = 0;

bool chunks_equal(const std::vector<chunk_ref>& a,
                  const std::vector<chunk_ref>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].offset != b[i].offset || a[i].size != b[i].size) return false;
  }
  return true;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Run `fn` repeatedly until it has consumed ≥ `min_ms` of wall clock, then
/// return MB/s over the bytes it claims to process per call.
template <typename Fn>
double throughput_mb_s(std::uint64_t bytes_per_call, double min_ms, Fn&& fn) {
  // Warm up caches/allocations once, outside the timed region.
  fn();
  int calls = 0;
  const double t0 = now_ms();
  double elapsed = 0;
  do {
    fn();
    ++calls;
    elapsed = now_ms() - t0;
  } while (elapsed < min_ms);
  const double bytes = static_cast<double>(bytes_per_call) * calls;
  return bytes / (elapsed * 1e3);  // bytes/ms → MB/s (MB = 1e6 B)
}

struct kernel_row {
  const char* name;
  double ref_mb_s = 0;
  double opt_mb_s = 0;
  bool identical = true;
  bool identity_checked = true;  ///< estimator changes are rate-only rows
  double speedup() const { return ref_mb_s > 0 ? opt_mb_s / ref_mb_s : 0; }
};

/// Mixed-compressibility corpus: binary-random, mildly compressible, and
/// text-like buffers, the three content classes the trace generator emits.
std::vector<byte_buffer> make_corpus() {
  std::vector<byte_buffer> corpus;
  rng r(0x6b65726e5f726570ull);
  corpus.push_back(synthetic_payload(r, 4 * MiB, 1.0));
  corpus.push_back(synthetic_payload(r, 4 * MiB, 2.0));
  corpus.push_back(synthetic_payload(r, 2 * MiB, 4.0));
  corpus.push_back(synthetic_payload(r, 512 * KiB + 37, 1.5));  // odd tail
  return corpus;
}

std::string fleet_report_fingerprint(
    const std::vector<fleet_service_report>& reports) {
  std::ostringstream os;
  for (const fleet_service_report& r : reports) {
    os << r.service << '|' << r.files << '|' << r.dropped_files << '|'
       << r.users << '|' << r.update_bytes << '|' << r.sync_traffic << '|'
       << r.commits << '|' << r.mean_staleness_sec << '|'
       << r.bill.total_usd() << '\n';
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  print_section("Kernel report: scalar reference vs optimized byte kernels");

  const std::vector<byte_buffer> corpus = make_corpus();
  std::uint64_t corpus_bytes = 0;
  for (const byte_buffer& b : corpus) corpus_bytes += b.size();
  const cdc_params cdc{};
  constexpr double kMinMs = 150.0;  // per timed kernel side

  std::vector<kernel_row> rows;

  {
    kernel_row row{"sha256"};
    for (const byte_buffer& b : corpus) {
      row.identical &= refk::sha256(b) == sha256(b);
    }
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += refk::sha256(b).prefix64();
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += sha256(b).prefix64();
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    kernel_row row{"md5"};
    for (const byte_buffer& b : corpus) row.identical &= refk::md5(b) == md5(b);
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += refk::md5(b).prefix64();
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += md5(b).prefix64();
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    kernel_row row{"sha1"};
    for (const byte_buffer& b : corpus) {
      row.identical &= refk::sha1(b) == sha1(b);
    }
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += refk::sha1(b).prefix64();
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += sha1(b).prefix64();
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    kernel_row row{"crc32"};
    for (const byte_buffer& b : corpus) {
      row.identical &= refk::crc32(b) == crc32(b);
    }
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += refk::crc32(b);
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += crc32(b);
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    kernel_row row{"adler32_weak"};
    for (const byte_buffer& b : corpus) {
      row.identical &= refk::weak_checksum(b) == weak_checksum(b);
    }
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += refk::weak_checksum(b);
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) s += weak_checksum(b);
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    kernel_row row{"gear_cdc"};
    for (const byte_buffer& b : corpus) {
      row.identical &= chunks_equal(refk::content_defined_chunks(b, cdc),
                                    content_defined_chunks(b, cdc));
    }
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) {
        s += refk::content_defined_chunks(b, cdc).size();
      }
      g_sink = g_sink + s;
    });
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) {
        s += content_defined_chunks(b, cdc).size();
      }
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }
  {
    // Compression-size estimate over the full buffer: the lzss trial
    // compression a size estimate used to require vs the pipeline's
    // streamable order-0 entropy. Different estimators by design (the fused
    // pass cannot run a match-finder per tile), so rate-only: no identity.
    kernel_row row{"compress_estimate"};
    row.identity_checked = false;
    row.ref_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) {
        s += static_cast<std::uint64_t>(
            estimate_compression_ratio(b, b.size()) * 1000);
      }
      g_sink = g_sink + s;
    });
    content_request ereq;
    ereq.entropy = true;
    row.opt_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
      std::uint64_t s = 0;
      for (const byte_buffer& b : corpus) {
        s += static_cast<std::uint64_t>(
            analyze_content(b, ereq).entropy_bits_per_byte * 1000);
      }
      g_sink = g_sink + s;
    });
    rows.push_back(row);
  }

  // Aggregate = one virtual pass of every kernel over the corpus, time-
  // weighted (sum of per-kernel times at the measured rates).
  double ref_time = 0, opt_time = 0;
  for (const kernel_row& r : rows) {
    ref_time += static_cast<double>(corpus_bytes) / r.ref_mb_s;
    opt_time += static_cast<double>(corpus_bytes) / r.opt_mb_s;
  }
  const double agg_ref = rows.size() * static_cast<double>(corpus_bytes) /
                         ref_time;
  const double agg_opt = rows.size() * static_cast<double>(corpus_bytes) /
                         opt_time;

  // Fused pipeline vs the same kernels run as separate passes (both sides
  // use the optimized kernels; this isolates the single-pass win).
  content_request full;
  full.sha256 = full.md5 = full.crc32 = full.weak = full.entropy = true;
  full.cdc = cdc;
  bool fused_identical = true;
  for (const byte_buffer& b : corpus) {
    const content_report rep = analyze_content(b, full);
    fused_identical &= rep.sha256 == sha256(b) && rep.md5 == md5(b) &&
                       rep.crc32 == crc32(b) && rep.weak == weak_checksum(b) &&
                       chunks_equal(rep.cdc_chunks,
                                    content_defined_chunks(b, cdc));
  }
  const double separate_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
    std::uint64_t s = 0;
    for (const byte_buffer& b : corpus) {
      s += sha256(b).prefix64() + md5(b).prefix64() + crc32(b) +
           weak_checksum(b) + content_defined_chunks(b, cdc).size();
      content_request ereq;
      ereq.entropy = true;
      s += static_cast<std::uint64_t>(
          analyze_content(b, ereq).entropy_bits_per_byte * 1000);
    }
    g_sink = g_sink + s;
  });
  const double fused_mb_s = throughput_mb_s(corpus_bytes, kMinMs, [&] {
    std::uint64_t s = 0;
    for (const byte_buffer& b : corpus) {
      const content_report rep = analyze_content(b, full);
      s += rep.sha256.prefix64() + rep.crc32 + rep.cdc_chunks.size();
    }
    g_sink = g_sink + s;
  });

  // Dedup-index probe: the flat per-user shard vs the node-based
  // unordered_map<fingerprint, count> it replaced. Same fingerprints, same
  // membership answers.
  constexpr std::size_t kFingerprints = 100'000;
  std::vector<fingerprint> fps(kFingerprints);
  {
    rng fr(0xdedbull);
    for (fingerprint& fp : fps) {
      for (auto& byte : fp.bytes) {
        byte = static_cast<std::uint8_t>(fr.uniform_range(0, 255));
      }
    }
  }
  bool index_identical = true;
  double baseline_mops = 0, shard_mops = 0;
  {
    std::unordered_map<fingerprint, std::uint64_t> base;
    fingerprint_shard shard(kFingerprints);
    for (const fingerprint& fp : fps) {
      ++base[fp];
      shard.add(fp);
    }
    for (std::size_t i = 0; i < kFingerprints; i += 97) {
      index_identical &= base.contains(fps[i]) == shard.contains(fps[i]);
    }
    index_identical &= base.size() == shard.unique_count();

    const double ops = 2.0 * kFingerprints;  // one add + one probe per fp
    baseline_mops = throughput_mb_s(static_cast<std::uint64_t>(ops), kMinMs,
                                    [&] {
                                      std::unordered_map<fingerprint,
                                                         std::uint64_t>
                                          m;
                                      for (const fingerprint& fp : fps) {
                                        ++m[fp];
                                      }
                                      std::size_t hits = 0;
                                      for (const fingerprint& fp : fps) {
                                        hits += m.contains(fp);
                                      }
                                      if (hits != kFingerprints) std::abort();
                                    });
    shard_mops = throughput_mb_s(static_cast<std::uint64_t>(ops), kMinMs, [&] {
      fingerprint_shard s(kFingerprints);
      for (const fingerprint& fp : fps) s.add(fp);
      std::size_t hits = 0;
      for (const fingerprint& fp : fps) hits += s.contains(fp);
      if (hits != kFingerprints) std::abort();
    });
  }

  // Fleet replay: wall time at the old vs new default cap, and the new cap
  // replayed serially vs across 4 threads must be byte-identical.
  fleet_config fcfg;
  fcfg.replay_threads = 1;
  // Pin the historical caps: the fleet_config defaults moved to whole-trace /
  // uncapped with the CoW store, and this report compares 250 vs 2500 files
  // at the original 2 MiB clamp.
  fcfg.trace.max_file_bytes = 2 * MiB;
  fcfg.max_files_per_service = 250;
  double t0 = now_ms();
  const auto fleet_old = replay_trace_fleet(fcfg);
  const double fleet_old_ms = now_ms() - t0;
  std::size_t files_old = 0;
  for (const auto& r : fleet_old) files_old += r.files;

  fcfg.max_files_per_service = 2500;
  t0 = now_ms();
  const auto fleet_new = replay_trace_fleet(fcfg);
  const double fleet_new_ms = now_ms() - t0;
  std::size_t files_new = 0;
  for (const auto& r : fleet_new) files_new += r.files;

  fcfg.replay_threads = 4;
  const auto fleet_mt = replay_trace_fleet(fcfg);
  const bool fleet_identical = fleet_report_fingerprint(fleet_new) ==
                               fleet_report_fingerprint(fleet_mt);

  bool all_identical = fused_identical && index_identical && fleet_identical;
  for (const kernel_row& r : rows) all_identical &= r.identical;

  text_table table;
  table.header({"kernel", "ref MB/s", "opt MB/s", "speedup", "identical"});
  for (const kernel_row& r : rows) {
    table.row({r.name, strfmt("%.1f", r.ref_mb_s),
               strfmt("%.1f", r.opt_mb_s), strfmt("%.2fx", r.speedup()),
               r.identity_checked ? (r.identical ? "yes" : "NO") : "n/a"});
  }
  table.row({"aggregate", strfmt("%.1f", agg_ref), strfmt("%.1f", agg_opt),
             strfmt("%.2fx", agg_opt / agg_ref), "-"});
  std::printf("%s\n", table.str().c_str());
  std::printf("fused pipeline: %.1f MB/s vs %.1f MB/s separate passes "
              "(%.2fx), outputs identical: %s\n",
              fused_mb_s, separate_mb_s, fused_mb_s / separate_mb_s,
              fused_identical ? "yes" : "NO");
  std::printf("dedup index: %.2f Mops/s flat shard vs %.2f Mops/s "
              "unordered_map (%.2fx), answers identical: %s\n",
              shard_mops, baseline_mops, shard_mops / baseline_mops,
              index_identical ? "yes" : "NO");
  std::printf("fleet replay: cap 250 -> %zu files in %.0f ms; cap 2500 -> "
              "%zu files in %.0f ms; identical across 1/4 threads: %s\n",
              files_old, fleet_old_ms, files_new, fleet_new_ms,
              fleet_identical ? "yes" : "NO");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"kernels\",\n"
      << "  \"corpus_bytes\": " << corpus_bytes << ",\n"
      << "  \"kernels\": {";
  bool first = true;
  for (const kernel_row& r : rows) {
    out << (first ? "\n" : ",\n") << "    \"" << r.name
        << "\": {\"ref_mb_s\": " << r.ref_mb_s
        << ", \"opt_mb_s\": " << r.opt_mb_s << ", \"speedup\": " << r.speedup()
        << ", \"identical\": "
        << (r.identity_checked ? (r.identical ? "true" : "false") : "null")
        << "}";
    first = false;
  }
  out << "\n  },\n"
      << "  \"aggregate\": {\"ref_mb_s\": " << agg_ref
      << ", \"opt_mb_s\": " << agg_opt
      << ", \"speedup\": " << agg_opt / agg_ref << "},\n"
      << "  \"fused_pipeline\": {\"separate_mb_s\": " << separate_mb_s
      << ", \"fused_mb_s\": " << fused_mb_s
      << ", \"speedup\": " << fused_mb_s / separate_mb_s
      << ", \"identical\": " << (fused_identical ? "true" : "false") << "},\n"
      << "  \"dedup_index\": {\"unordered_map_mops\": " << baseline_mops
      << ", \"flat_shard_mops\": " << shard_mops
      << ", \"speedup\": " << shard_mops / baseline_mops
      << ", \"identical\": " << (index_identical ? "true" : "false") << "},\n"
      << "  \"fleet_replay\": {\"cap_old\": 250, \"files_old\": " << files_old
      << ", \"wall_ms_old\": " << fleet_old_ms
      << ", \"cap_new\": 2500, \"files_new\": " << files_new
      << ", \"wall_ms_new\": " << fleet_new_ms
      << ", \"identical_across_threads\": "
      << (fleet_identical ? "true" : "false") << "},\n"
      << "  \"identical_outputs\": " << (all_identical ? "true" : "false")
      << "\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  // Identity is the correctness gate; throughput is recorded, not gated
  // (it depends on the host).
  return all_identical ? 0 : 1;
}
