// Crash-recovery sweep: what does a crashing client cost at the network
// level, and how much of that cost do resumable transfers claw back? For
// each service, runs the crash workload (distinct creations + one-byte
// modifications, journaled, through resumable upload sessions) under
// increasingly frequent seeded client crashes, once with session resume on
// and once restarting every interrupted transfer from scratch — the paper's
// §5 observation (Box and Ubuntu One re-send the whole file after a
// disruption) against the engineered alternative.
//
// Self-checks (nonzero exit on violation):
//   - every cell is byte-identical between a serial and a parallel grid
//     evaluation (CLOUDSYNC_THREADS=1 vs N — crash schedules, restarts, and
//     recovery compose with the parallel runner);
//   - the full invariant suite (convergence, journal/session quiescence, no
//     lost or duplicated commits, per-incarnation byte conservation) holds
//     in every cell;
//   - at zero crash rate, resume-on and resume-off are byte-identical (the
//     recovery disposition must not matter when nobody crashes);
//   - every nonzero-rate cell actually crashed, and its resume-on variant
//     resumed at least one transfer mid-flight (otherwise the comparison
//     is vacuous — tune seeds/rates rather than accept it);
//   - averaged resume-on TUE is strictly below restart-from-scratch TUE at
//     every nonzero crash rate.
//
// Machine-readable output: BENCH_crash.json (or argv[1]).
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::size_t kFiles = 6;
constexpr std::uint64_t kFileBytes = 256 * KiB;
const double kCrashRates[] = {0.0, 0.1, 0.2, 0.4};
const std::uint64_t kSeeds[] = {1234, 4711, 9001};

experiment_config cfg_for(const service_profile& s, double crash_rate,
                          bool resume, std::uint64_t seed) {
  experiment_config cfg = make_config(s, access_method::pc_client);
  cfg.seed = seed;
  cfg.journal = true;
  cfg.recovery.resume = resume;
  cfg.faults = fault_plan::crashes(crash_rate, /*seed=*/seed ^ 0x5bd1);
  return cfg;
}

bool same(const crash_run_result& a, const crash_run_result& b) {
  return a.total_traffic == b.total_traffic &&
         a.resume_traffic == b.resume_traffic &&
         a.retry_traffic == b.retry_traffic &&
         a.data_update_bytes == b.data_update_bytes && a.tue == b.tue &&
         a.completion_sec == b.completion_sec && a.crashes == b.crashes &&
         a.resumes == b.resumes &&
         a.recovery_restarts == b.recovery_restarts &&
         a.journal_begun == b.journal_begun &&
         a.journal_committed == b.journal_committed &&
         a.journal_aborted == b.journal_aborted;
}

/// Seed-averaged view of one (service, rate, resume) cell.
struct cell_avg {
  double tue = 0;
  double completion_sec = 0;
  double resume_traffic = 0;
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;
  std::uint64_t recovery_restarts = 0;
};

cell_avg average(const crash_run_result* runs, std::size_t n) {
  cell_avg avg;
  for (std::size_t i = 0; i < n; ++i) {
    avg.tue += runs[i].tue;
    avg.completion_sec += runs[i].completion_sec;
    avg.resume_traffic += static_cast<double>(runs[i].resume_traffic);
    avg.crashes += runs[i].crashes;
    avg.resumes += runs[i].resumes;
    avg.recovery_restarts += runs[i].recovery_restarts;
  }
  avg.tue /= static_cast<double>(n);
  avg.completion_sec /= static_cast<double>(n);
  avg.resume_traffic /= static_cast<double>(n);
  return avg;
}

using job = std::function<crash_run_result()>;

std::vector<crash_run_result> evaluate(const std::vector<job>& jobs,
                                       unsigned threads) {
  std::vector<crash_run_result> out(jobs.size());
  parallel_runner pool(threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  print_section("Crash sweep: TUE with resumable transfers vs restart");

  const std::vector<service_profile> services = {dropbox(), box(), onedrive()};
  constexpr std::size_t kNumRates = std::size(kCrashRates);
  constexpr std::size_t kNumSeeds = std::size(kSeeds);

  // Grid layout: [service][rate][resume? 0=on 1=off][seed].
  std::vector<job> jobs;
  for (const service_profile& s : services) {
    for (const double rate : kCrashRates) {
      for (const bool resume : {true, false}) {
        for (const std::uint64_t seed : kSeeds) {
          jobs.push_back([cfg = cfg_for(s, rate, resume, seed)] {
            return run_crash_experiment(cfg, kFiles, kFileBytes);
          });
        }
      }
    }
  }

  const unsigned threads = parallel_runner::default_thread_count();
  const std::vector<crash_run_result> serial = evaluate(jobs, 1);
  const std::vector<crash_run_result> parallel = evaluate(jobs, threads);

  bool deterministic = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    deterministic = deterministic && same(serial[i], parallel[i]);
  }

  bool invariants_ok = true;
  for (const crash_run_result& r : serial) {
    if (!r.invariants.ok()) {
      invariants_ok = false;
      std::fprintf(stderr, "invariant violation:\n%s\n",
                   r.invariants.summary().c_str());
    }
  }

  auto cell_at = [&](std::size_t svc, std::size_t rate, bool resume,
                     std::size_t seed) -> const crash_run_result& {
    return serial[((svc * kNumRates + rate) * 2 + (resume ? 0 : 1)) *
                      kNumSeeds +
                  seed];
  };

  // Zero crashes → the recovery disposition is dead code, byte for byte.
  bool zero_rate_identical = true;
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    for (std::size_t seed = 0; seed < kNumSeeds; ++seed) {
      zero_rate_identical =
          zero_rate_identical &&
          same(cell_at(svc, 0, true, seed), cell_at(svc, 0, false, seed));
    }
  }

  bool cells_crashed = true;
  bool resume_wins = true;
  // table_cells[svc][rate][resume? 0=on 1=off]
  std::vector<std::vector<std::vector<cell_avg>>> table_cells(services.size());
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    table_cells[svc].resize(kNumRates);
    for (std::size_t rate = 0; rate < kNumRates; ++rate) {
      for (const bool resume : {true, false}) {
        crash_run_result runs[kNumSeeds];
        for (std::size_t seed = 0; seed < kNumSeeds; ++seed) {
          runs[seed] = cell_at(svc, rate, resume, seed);
        }
        table_cells[svc][rate].push_back(average(runs, kNumSeeds));
      }
      const cell_avg& on = table_cells[svc][rate][0];
      const cell_avg& off = table_cells[svc][rate][1];
      if (rate > 0) {
        // The comparison is only meaningful if the schedule actually killed
        // clients and the resume variant continued a transfer mid-flight.
        cells_crashed = cells_crashed && on.crashes > 0 && off.crashes > 0 &&
                        on.resumes > 0;
        resume_wins = resume_wins && on.tue < off.tue;
      }
    }
  }

  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    text_table table;
    table.header({"crash rate", "TUE resume", "TUE restart", "crashes",
                  "resumes", "re-sent", "resume traffic", "completion s"});
    for (std::size_t rate = 0; rate < kNumRates; ++rate) {
      const cell_avg& on = table_cells[svc][rate][0];
      const cell_avg& off = table_cells[svc][rate][1];
      table.row({strfmt("%.2f", kCrashRates[rate]), strfmt("%.3f", on.tue),
                 strfmt("%.3f", off.tue),
                 strfmt("%llu", (unsigned long long)(on.crashes + off.crashes)),
                 strfmt("%llu", (unsigned long long)on.resumes),
                 strfmt("%llu", (unsigned long long)off.recovery_restarts),
                 human(on.resume_traffic),
                 strfmt("%.1f", on.completion_sec)});
    }
    std::printf("--- %s (PC client, journaled sessions, %zu seeds) ---\n%s\n",
                services[svc].name.c_str(), kNumSeeds, table.str().c_str());
  }

  std::printf(
      "checks: deterministic(1 vs %u threads)=%s, invariants=%s, "
      "zero-rate resume==restart=%s, nonzero cells crashed+resumed=%s, "
      "resume TUE < restart TUE=%s\n",
      threads, deterministic ? "yes" : "NO", invariants_ok ? "yes" : "NO",
      zero_rate_identical ? "yes" : "NO", cells_crashed ? "yes" : "NO",
      resume_wins ? "yes" : "NO");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_crash.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"crash_recovery\",\n"
      << "  \"files\": " << kFiles << ",\n"
      << "  \"file_bytes\": " << kFileBytes << ",\n"
      << "  \"seeds\": " << kNumSeeds << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"invariants_ok\": " << (invariants_ok ? "true" : "false") << ",\n"
      << "  \"zero_rate_identical\": "
      << (zero_rate_identical ? "true" : "false") << ",\n"
      << "  \"cells_crashed\": " << (cells_crashed ? "true" : "false") << ",\n"
      << "  \"resume_wins\": " << (resume_wins ? "true" : "false") << ",\n"
      << "  \"services\": {";
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    out << (svc == 0 ? "\n" : ",\n") << "    \"" << services[svc].name
        << "\": [";
    for (std::size_t rate = 0; rate < kNumRates; ++rate) {
      const cell_avg& on = table_cells[svc][rate][0];
      const cell_avg& off = table_cells[svc][rate][1];
      out << (rate == 0 ? "\n" : ",\n") << "      {\"crash_rate\": "
          << kCrashRates[rate] << ", \"tue_resume\": " << on.tue
          << ", \"tue_restart\": " << off.tue
          << ", \"crashes_resume\": " << on.crashes
          << ", \"crashes_restart\": " << off.crashes
          << ", \"resumes\": " << on.resumes
          << ", \"recovery_restarts\": " << off.recovery_restarts
          << ", \"resume_traffic\": " << on.resume_traffic
          << ", \"completion_resume_sec\": " << on.completion_sec
          << ", \"completion_restart_sec\": " << off.completion_sec << "}";
    }
    out << "\n    ]";
  }
  out << "\n  }\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return deterministic && invariants_ok && zero_rate_identical &&
                 cells_crashed && resume_wins
             ? 0
             : 1;
}
