// Sharded multi-tenant sync server at scale: one process serving thousands
// of concurrent sessions, swept across shard counts, driver threads, user
// populations, and arrival rates.
//
// Two grids:
//   - identity grid: the same wave replayed under {1 shard, N shards} x
//     {1 thread, 4 threads} must produce byte-identical per-session traffic
//     and dedup outcomes (results_identity_hash over user-sorted results,
//     wall timings excluded). This is the determinism contract: sharding and
//     driver interleaving are performance knobs, never semantic ones.
//   - scale grid: populations from 10k to 1M users with a fixed arrival
//     fraction, 1 shard vs hardware-width shards; reports session
//     throughput, p50/p99 latency, queue peaks, and per-shard lock
//     contention.
//
// All legs run in-process (no fork — the binary must stay ThreadSanitizer-
// clean), each against a freshly constructed sync_server.
//
// Writes BENCH_server.json (or argv[1]). `--small` runs a reduced grid — the
// sanitizer CI leg. Exit status is the self-check verdict: identity always
// gated; the shard-scaling speedup check only gates on hosts with >= 4
// cores (narrower hosts report the ratio but cannot demonstrate it).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/parallel_runner.hpp"
#include "server/session.hpp"
#include "server/sync_server.hpp"
#include "util/stats.hpp"

using namespace cloudsync;

namespace {

struct leg_result {
  double wall_ms = 0;
  double throughput = 0;  ///< sessions per second
  double p50_ms = 0, p99_ms = 0;
  double mean_queue_wait_ms = 0;
  std::uint64_t identity = 0;
  std::uint64_t sessions = 0;
  std::uint64_t uploads = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contentions = 0;
  std::uint64_t admission_waits = 0;
  std::uint32_t queue_depth_peak = 0;
  std::uint32_t in_flight_peak = 0;
  std::uint64_t failed = 0;
};

leg_result run_leg(const workload_params& wp, std::uint32_t shards,
                   unsigned threads) {
  const auto work = make_session_workloads(wp);
  server_config cfg;
  cfg.shards = shards;
  cfg.admission_limit = 64;
  sync_server srv(cfg);

  parallel_runner pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = parallel_map_n<session_result>(
      pool, work.size(),
      [&](std::size_t i) { return run_session(srv, work[i]); });
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  leg_result r;
  r.wall_ms = wall_ms;
  r.sessions = results.size();
  r.throughput =
      wall_ms > 0 ? 1e3 * static_cast<double>(results.size()) / wall_ms : 0;
  r.identity = results_identity_hash(results);
  std::vector<double> latencies;
  latencies.reserve(results.size());
  running_stats queue_wait;
  for (const session_result& sr : results) {
    latencies.push_back(static_cast<double>(sr.latency_ns) / 1e6);
    queue_wait.add(static_cast<double>(sr.queue_wait_ns) / 1e6);
    r.uploads += sr.files_uploaded;
    r.dedup_hits += sr.dedup_hits;
    r.payload_bytes += sr.meter.by_category(traffic_category::payload);
    r.failed += sr.failed ? 1 : 0;
  }
  const empirical_cdf cdf(std::move(latencies));
  r.p50_ms = cdf.quantile(0.5);
  r.p99_ms = cdf.quantile(0.99);
  r.mean_queue_wait_ms = queue_wait.mean();

  const shard_stats agg = srv.stats().aggregate();
  r.lock_acquisitions = agg.lock_acquisitions;
  r.lock_contentions = agg.lock_contentions;
  r.admission_waits = agg.admission_waits;
  r.queue_depth_peak = agg.queue_depth_peak;
  r.in_flight_peak = agg.in_flight_peak;
  return r;
}

void json_leg(std::ostream& os, const leg_result& r, const char* indent) {
  os << indent << "\"wall_ms\": " << r.wall_ms << ",\n"
     << indent << "\"throughput_sessions_per_s\": " << r.throughput << ",\n"
     << indent << "\"p50_latency_ms\": " << r.p50_ms << ",\n"
     << indent << "\"p99_latency_ms\": " << r.p99_ms << ",\n"
     << indent << "\"mean_queue_wait_ms\": " << r.mean_queue_wait_ms << ",\n"
     << indent << "\"identity\": \"" << r.identity << "\",\n"
     << indent << "\"sessions\": " << r.sessions << ",\n"
     << indent << "\"uploads\": " << r.uploads << ",\n"
     << indent << "\"dedup_hits\": " << r.dedup_hits << ",\n"
     << indent << "\"payload_bytes\": " << r.payload_bytes << ",\n"
     << indent << "\"lock_acquisitions\": " << r.lock_acquisitions << ",\n"
     << indent << "\"lock_contentions\": " << r.lock_contentions << ",\n"
     << indent << "\"admission_waits\": " << r.admission_waits << ",\n"
     << indent << "\"queue_depth_peak\": " << r.queue_depth_peak << ",\n"
     << indent << "\"in_flight_peak\": " << r.in_flight_peak << ",\n"
     << indent << "\"failed_sessions\": " << r.failed << "\n";
}

workload_params grid_params(std::uint32_t population, double arrival_rate,
                            std::uint32_t session_cap, bool small) {
  workload_params p;
  p.seed = 20'140'601;  // the paper's trace collection year/month
  p.user_population = population;
  p.sessions = std::min<std::uint32_t>(
      session_cap, std::max<std::uint32_t>(
                       1, static_cast<std::uint32_t>(
                              static_cast<double>(population) * arrival_rate)));
  p.files_per_session = 4;
  p.mean_file_bytes = small ? 1024 : 4096;
  p.identity_pool = 512;
  p.p_pool_identity = 0.6;
  p.p_repeat_in_session = 0.1;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_server.json";
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t wide_shards = std::max(4u, hw);
  bench::print_section("Sharded sync server: identity legs");

  // --- Identity grid: shard count and driver threads must be invisible ---
  const workload_params idp = grid_params(small ? 1'000 : 10'000, 0.2,
                                          small ? 200 : 2'000, small);
  struct id_leg {
    const char* name;
    std::uint32_t shards;
    unsigned threads;
    leg_result r;
  };
  std::vector<id_leg> id_legs = {
      {"shards1_threads1", 1, 1, {}},
      {"shardsN_threads1", wide_shards, 1, {}},
      {"shardsN_threads4", wide_shards, 4, {}},
      {"shards1_threads4", 1, 4, {}},
  };
  for (id_leg& leg : id_legs) {
    leg.r = run_leg(idp, leg.shards, leg.threads);
    std::printf("  %-18s shards=%-3u threads=%u  wall=%8.1f ms  id=%016llx\n",
                leg.name, leg.shards, leg.threads, leg.r.wall_ms,
                static_cast<unsigned long long>(leg.r.identity));
  }
  bool identity_ok = true;
  for (const id_leg& leg : id_legs) {
    if (leg.r.identity != id_legs.front().r.identity) identity_ok = false;
    if (leg.r.failed != 0) identity_ok = false;
  }
  std::printf("  identity check: %s\n", identity_ok ? "OK" : "FAILED");

  // --- Scale grid: populations x arrival rates, 1 shard vs wide ---
  bench::print_section("Sharded sync server: fleet scale grid");
  struct cell {
    std::uint32_t population;
    double rate;
    std::uint32_t shards;
    unsigned threads;
    leg_result r;
  };
  std::vector<cell> cells;
  const std::vector<std::uint32_t> pops =
      small ? std::vector<std::uint32_t>{1'000, 10'000}
            : std::vector<std::uint32_t>{10'000, 100'000, 1'000'000};
  const std::vector<double> rates =
      small ? std::vector<double>{0.05} : std::vector<double>{0.01, 0.05};
  const std::uint32_t cap = small ? 500 : 10'000;
  // Oversubscribed drivers keep every shard busy even while some sessions
  // block at admission.
  const unsigned drive = std::max(4u, hw);
  for (const std::uint32_t pop : pops) {
    for (const double rate : rates) {
      for (const std::uint32_t shards : {1u, wide_shards}) {
        cells.push_back({pop, rate, shards, drive, {}});
      }
    }
  }
  for (cell& c : cells) {
    c.r = run_leg(grid_params(c.population, c.rate, cap, small), c.shards,
                  c.threads);
    std::printf(
        "  pop=%-9u rate=%.2f shards=%-3u  %7.0f sess/s  p50=%6.2f ms  "
        "p99=%6.2f ms  contested=%llu/%llu\n",
        c.population, c.rate, c.shards, c.r.throughput, c.r.p50_ms, c.r.p99_ms,
        static_cast<unsigned long long>(c.r.lock_contentions),
        static_cast<unsigned long long>(c.r.lock_acquisitions));
  }

  // Scaling self-check: wide shards must beat one serialized shard on the
  // 10k-population cells — but only a host with real parallelism can show
  // it; narrower hosts report the ratio without gating.
  double worst_speedup = 1e9;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const cell& one = cells[i];
    const cell& wide = cells[i + 1];
    if (one.population != 10'000) continue;
    if (one.r.throughput > 0) {
      worst_speedup =
          std::min(worst_speedup, wide.r.throughput / one.r.throughput);
    }
  }
  if (worst_speedup > 1e8) worst_speedup = 1.0;  // grid had no 10k cells
  const bool scaling_gated = hw >= 4;
  const bool scaling_ok = !scaling_gated || worst_speedup >= 1.5;
  std::printf("\n  shard scaling (10k grid): worst %u-shard speedup %.2fx %s\n",
              wide_shards, worst_speedup,
              scaling_gated ? (scaling_ok ? "(OK)" : "(FAILED, need >= 1.5x)")
                            : "(report-only: host too narrow to gate)");

  // --- JSON report ---
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"server_scale_report\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"hardware_concurrency\": " << hw << ",\n"
      << "  \"wide_shards\": " << wide_shards << ",\n"
      << "  \"identity_ok\": " << (identity_ok ? "true" : "false") << ",\n"
      << "  \"scaling_gated\": " << (scaling_gated ? "true" : "false") << ",\n"
      << "  \"worst_wide_shard_speedup\": " << worst_speedup << ",\n"
      << "  \"identity_legs\": {\n";
  for (std::size_t i = 0; i < id_legs.size(); ++i) {
    out << "    \"" << id_legs[i].name << "\": {\n"
        << "      \"shards\": " << id_legs[i].shards << ",\n"
        << "      \"threads\": " << id_legs[i].threads << ",\n";
    json_leg(out, id_legs[i].r, "      ");
    out << "    }" << (i + 1 < id_legs.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"scale_grid\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out << "    {\n      \"population\": " << cells[i].population << ",\n"
        << "      \"arrival_rate\": " << cells[i].rate << ",\n"
        << "      \"shards\": " << cells[i].shards << ",\n"
        << "      \"threads\": " << cells[i].threads << ",\n";
    json_leg(out, cells[i].r, "      ");
    out << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("\n  wrote %s\n", out_path);

  return identity_ok && scaling_ok ? 0 : 1;
}
