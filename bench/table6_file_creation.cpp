// Reproduces Table 6: sync traffic of a (compressed) file creation, for
// Z ∈ {1 B, 1 KB, 1 MB, 10 MB} × 6 services × 3 access methods.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Table 6: sync traffic of a (compressed) file creation "
      "[paper: e.g. Google Drive PC 9K/10K/1.13M/11.2M]");

  const std::uint64_t sizes[] = {1, 1 * KiB, 1 * MiB, 10 * MiB};
  const std::vector<service_profile> services = all_services();

  // All method × service × size cells are independent experiments: evaluate
  // the full grid across cores, then print in order.
  std::vector<std::function<std::uint64_t()>> jobs;
  for (access_method m : all_access_methods) {
    for (const service_profile& s : services) {
      for (const std::uint64_t z : sizes) {
        jobs.push_back(
            [&s, m, z] { return measure_creation_traffic(make_config(s, m), z); });
      }
    }
  }
  const std::vector<std::uint64_t> traffic = run_grid(jobs);

  std::size_t cell = 0;
  for (access_method m : all_access_methods) {
    std::printf("-- %s --\n", to_string(m));
    text_table table;
    table.header({"Service", "1 B", "1 KB", "1 MB", "10 MB"});
    for (const service_profile& s : services) {
      std::vector<std::string> row{s.name};
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        row.push_back(human(static_cast<double>(traffic[cell++])));
      }
      table.row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
