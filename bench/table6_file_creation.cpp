// Reproduces Table 6: sync traffic of a (compressed) file creation, for
// Z ∈ {1 B, 1 KB, 1 MB, 10 MB} × 6 services × 3 access methods.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Table 6: sync traffic of a (compressed) file creation "
      "[paper: e.g. Google Drive PC 9K/10K/1.13M/11.2M]");

  const std::uint64_t sizes[] = {1, 1 * KiB, 1 * MiB, 10 * MiB};

  for (access_method m : all_access_methods) {
    std::printf("-- %s --\n", to_string(m));
    text_table table;
    table.header({"Service", "1 B", "1 KB", "1 MB", "10 MB"});
    for (const service_profile& s : all_services()) {
      std::vector<std::string> row{s.name};
      for (const std::uint64_t z : sizes) {
        const std::uint64_t traffic =
            measure_creation_traffic(make_config(s, m), z);
        row.push_back(human(static_cast<double>(traffic)));
      }
      table.row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
