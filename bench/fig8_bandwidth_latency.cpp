// Reproduces Figure 8 (a) and (b): Dropbox TUE on the "1 KB/sec" appending
// experiment under the packet filter — (a) variable bandwidth at ~50 ms RTT,
// (b) variable latency at 20 Mbps.
// Paper: higher bandwidth or shorter latency => larger TUE.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 8(a): Dropbox TUE, '1 KB/sec' appends, bandwidth 1.6-20 Mbps "
      "(latency fixed ~50 ms)");

  {
    text_table table;
    table.header({"Bandwidth (Mbps)", "TUE", "commits"});
    // Our calibrated Dropbox commit is ~45 KB, so the serialisation-driven
    // batching threshold sits below the paper's 1.6 Mbps floor; the sweep
    // extends lower to expose the same rising shape (see EXPERIMENTS.md).
    for (const double mbps : {0.1, 0.2, 0.4, 0.8, 1.6, 5.0, 20.0}) {
      experiment_config cfg = make_config(dropbox(), access_method::pc_client);
      const packet_filter filter{mbps_to_bytes_per_sec(mbps), sim_time{}};
      cfg.link = filter.apply(link_config::minnesota());
      const auto res = run_append_experiment(cfg, 1.0, 1.0, 1 * MiB);
      table.row({strfmt("%.1f", mbps), strfmt("%.1f", res.tue),
                 strfmt("%llu", (unsigned long long)res.commits)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  print_section(
      "Figure 8(b): Dropbox TUE, '1 KB/sec' appends, latency 40-1000 ms "
      "(bandwidth fixed 20 Mbps)");

  {
    text_table table;
    table.header({"RTT (ms)", "TUE", "commits"});
    for (const double ms : {40.0, 100.0, 200.0, 400.0, 700.0, 1000.0}) {
      experiment_config cfg = make_config(dropbox(), access_method::pc_client);
      cfg.link = link_config::minnesota();
      cfg.link.rtt = sim_time::from_msec(ms);
      const auto res = run_append_experiment(cfg, 1.0, 1.0, 1 * MiB);
      table.row({strfmt("%.0f", ms), strfmt("%.1f", res.tue),
                 strfmt("%llu", (unsigned long long)res.commits)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("Expected monotonicity: TUE rises with bandwidth and falls "
              "with latency (paper Fig 8a/8b).\n");
  return 0;
}
