// §7 discussion, made measurable:
//  (1) logical storage interfaces — the same IDS workload through the
//      whole-object GET+PUT+DELETE mid-layer vs the Cumulus-style chunk
//      store: identical wire traffic, very different backend I/O;
//  (2) traffic cost — the paper's §1 S3-pricing arithmetic, from the
//      ISP-trace averages and from our own measured workloads.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

struct run_result {
  std::uint64_t wire_traffic = 0;
  backend_op_stats backend;
  std::uint64_t retained_bytes = 0;
};

/// 4 MB file, then 40 one-byte edits, each synced separately.
run_result modify_workload(service_profile profile, bool chunk_store) {
  experiment_config cfg{std::move(profile)};
  cfg.use_chunk_store = chunk_store;
  experiment_env env(cfg);
  station& st = env.primary();
  st.fs.create("doc", make_compressed_file(env.random(), 4 * MiB),
               env.clock().now());
  env.settle();
  env.the_cloud().store().reset_stats();
  const auto snap = st.client->meter().snap();

  for (int i = 0; i < 40; ++i) {
    env.clock().advance_to(env.clock().now() + sim_time::from_sec(30));
    modify_random_byte(st.fs, "doc", env.random(), env.clock().now());
    env.settle();
  }

  run_result res;
  res.wire_traffic = experiment_env::traffic_since(st, snap);
  res.backend = env.the_cloud().store().stats();
  res.retained_bytes = env.the_cloud().store().retained_bytes();
  return res;
}

}  // namespace

int main() {
  print_section(
      "Tradeoff 1: 40 one-byte edits of a 4 MB file — client traffic vs "
      "cloud backend I/O under each sync/storage strategy");
  {
    service_profile full = box();  // full-file sync
    full.commit_processing = sim_time{};
    service_profile ids = dropbox();  // incremental sync
    ids.commit_processing = sim_time{};

    struct variant {
      const char* label;
      service_profile profile;
      bool chunks;
    };
    const variant variants[] = {
        {"full-file sync, whole objects", full, false},
        {"IDS + GET/PUT/DELETE mid-layer", ids, false},
        {"IDS + chunk-store substrate", ids, true},
    };

    text_table table;
    table.header({"Strategy", "wire traffic", "backend ops", "bytes written",
                  "bytes read", "retained"});
    for (const variant& v : variants) {
      const run_result res = modify_workload(v.profile, v.chunks);
      table.row({v.label, human(static_cast<double>(res.wire_traffic)),
                 strfmt("%llu", (unsigned long long)res.backend.total_ops()),
                 human(static_cast<double>(res.backend.bytes_written)),
                 human(static_cast<double>(res.backend.bytes_read)),
                 human(static_cast<double>(res.retained_bytes))});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Reading: IDS cuts wire traffic ~50x but, on a RESTful whole-object "
        "backend, every edit re-reads and re-writes the 4 MB object; the "
        "chunk store removes that amplification at the cost of manifest "
        "complexity (the paper's 'implementation difficulty' axis).\n");
  }

  print_section(
      "Tradeoff 2: the paper's S3 cost arithmetic (Jan-2014 pricing, "
      "outbound $0.05/GB)");
  {
    const pricing p = pricing::s3_2014();
    text_table table;
    table.header({"Scenario", "USD/day"});
    // §1: ISP-trace averages: 5.18 MB out + 2.8 MB in per sync, 1e9/day.
    table.row({"paper: 1B syncs/day x 5.18 MB out (ISP trace)",
               strfmt("$%.0f", project_daily_cost(1e9, 5.18e6, 2.8e6, p))});
    // What full-file vs IDS does to that bill for the edit-heavy share.
    const run_result full = modify_workload(
        [] {
          service_profile s = box();
          s.commit_processing = sim_time{};
          return s;
        }(),
        false);
    const run_result ids = modify_workload(
        [] {
          service_profile s = dropbox();
          s.commit_processing = sim_time{};
          return s;
        }(),
        false);
    // Price the measured per-user workload scaled to 10M users/day.
    const double full_usd = project_daily_cost(
        1e7, static_cast<double>(full.wire_traffic) * 0.4,
        static_cast<double>(full.wire_traffic) * 0.6, p);
    const double ids_usd = project_daily_cost(
        1e7, static_cast<double>(ids.wire_traffic) * 0.4,
        static_cast<double>(ids.wire_traffic) * 0.6, p);
    table.row({"10M users/day doing the 40-edit workload, full-file sync",
               strfmt("$%.0f", full_usd)});
    table.row({"same, with IDS", strfmt("$%.0f", ids_usd)});
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
