// Macro-level analysis (§3.1): replay the calibrated trace through every
// service's full sync stack and compare fleet-level traffic, TUE, sync
// delay, and provider cost. This is the paper's dataset meeting the paper's
// benchmarks: the per-mechanism findings (BDS, IDS, compression, dedup)
// should compound into visibly different fleet bills.
#include "bench_util.hpp"
#include "core/fleet.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Macro trace replay: per-service fleet totals over the same "
      "calibrated workload");

  fleet_config cfg;
  cfg.trace.scale = 0.01;          // ~2.2k files generated
  cfg.max_files_per_service = 200;  // replayed per service
  cfg.trace.max_file_bytes = 2 * MiB;  // historical clamp, for comparability

  const auto reports = replay_trace_fleet(cfg);

  text_table table;
  table.header({"Service", "users", "files", "update bytes", "sync traffic",
                "TUE", "commits", "mean sync delay", "retained", "live",
                "replay cost"});
  for (const fleet_service_report& r : reports) {
    table.row({r.service, strfmt("%zu", r.users), strfmt("%zu", r.files),
               human(static_cast<double>(r.update_bytes)),
               human(static_cast<double>(r.sync_traffic)),
               strfmt("%.2f", r.tue()),
               strfmt("%llu", (unsigned long long)r.commits),
               strfmt("%.1f s", r.mean_staleness_sec),
               human(static_cast<double>(r.backend_retained_bytes)),
               human(static_cast<double>(r.backend_live_bytes)),
               strfmt("$%.4f", r.bill.total_usd())});
  }
  std::printf("%s\n", table.str().c_str());
  for (const fleet_service_report& r : reports) {
    if (r.dropped_files > 0) {
      std::printf("note: %s: %zu trace records beyond the %zu-file cap were "
                  "not replayed\n",
                  r.service.c_str(), r.dropped_files,
                  cfg.max_files_per_service);
    }
  }
  std::printf(
      "Backend gauges: 'retained' counts every stored version (history "
      "included), 'live' only the latest non-deleted objects; the gap is what "
      "object_store::compact_history() could free.\n");
  std::printf(
      "Reading: the services with more of the paper's four mechanisms (BDS, "
      "IDS, compression, dedup) end up with lower TUE on the same workload; "
      "deferment trades a little sync delay for much of that gain.\n");
  return 0;
}
