// Client cache-tier sweep: does the limited-disk block cache pay for its
// complexity — and does it stay invisible when it has room to?
//
// Four legs, each a grid of run_cache_experiment cells:
//   identity — the uncapped write-through cache (LRU and ARC) must be
//     byte-identical per (direction, traffic category) to the cacheless
//     engine on the looping-scan and frequent-modification workloads. The
//     tier never changes what the wire carries until capacity forces it to
//     (and rehydrate must read exactly 0 in these runs).
//   scan — hit-ratio grid over capacity x {LRU, ARC} on the looping-scan
//     workload (hot set re-read between full scans). Gates: ARC >= LRU at
//     every capacity (the frequency list must protect the hot set from
//     scan churn), and the LRU hit ratio is monotone non-decreasing in
//     capacity (LRU is a stack algorithm; the inclusion property makes
//     this exact, so any violation is a cache bug, not noise). ARC does
//     not have the inclusion property, so its monotonicity is reported
//     but not gated.
//   write-mode — TUE grid over {write-through, write-back x coalescing
//     window} on the frequent-modification workload, under a defer-free
//     profile (a fixed-defer profile would batch the edits for
//     write-through too and mask the comparison). Gate: write-back TUE is
//     strictly below write-through TUE at every tested window.
//   determinism — the whole grid evaluated serially and with N worker
//     threads must match cell-for-cell (meters, counters, gauges).
//
// Machine-readable output: BENCH_cache.json (or argv[1]). `--small`
// shrinks the grids for the sanitizer CI leg. Exit code is the verdict.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::uint64_t kFileBytes = 64 * KiB;
constexpr std::size_t kBlockBytes = 8 * KiB;

/// Windows for the write-back leg. The frequent_mods workload edits each
/// file 3x at 2 s spacing, so even the shortest window coalesces a burst.
const double kWindowsSec[] = {2.0, 5.0, 15.0};

experiment_config cache_cfg(std::uint64_t capacity, cache_eviction policy,
                            cache_write_mode mode, double window_sec,
                            bool defer_free) {
  service_profile s = dropbox();
  if (defer_free) s = with_defer(s, defer_config::none());
  experiment_config cfg = make_config(s, access_method::pc_client);
  cfg.cache_tier = true;
  cfg.cache.capacity_bytes = capacity;
  cfg.cache.block_bytes = kBlockBytes;
  cfg.cache.policy = policy;
  cfg.cache.write_mode = mode;
  cfg.cache.coalesce_window = sim_time::from_sec(window_sec);
  return cfg;
}

experiment_config cacheless_cfg(bool defer_free) {
  service_profile s = dropbox();
  if (defer_free) s = with_defer(s, defer_config::none());
  return make_config(s, access_method::pc_client);
}

bool same_meter(const traffic_meter& a, const traffic_meter& b) {
  for (int d = 0; d < 2; ++d) {
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto dir = static_cast<direction>(d);
      const auto cat = static_cast<traffic_category>(c);
      if (a.get(dir, cat) != b.get(dir, cat)) return false;
    }
  }
  return true;
}

bool same(const cache_run_result& a, const cache_run_result& b) {
  return same_meter(a.meter, b.meter) && a.total_traffic == b.total_traffic &&
         a.rehydrate_traffic == b.rehydrate_traffic &&
         a.data_update_bytes == b.data_update_bytes &&
         a.commits == b.commits && a.cache.hits == b.cache.hits &&
         a.cache.misses == b.cache.misses &&
         a.cache.evictions == b.cache.evictions &&
         a.cache.dirty_marked == b.cache.dirty_marked &&
         a.cache.dirty_coalesced == b.cache.dirty_coalesced &&
         a.cache.flushes == b.cache.flushes &&
         a.resident_blocks == b.resident_blocks &&
         a.resident_bytes == b.resident_bytes;
}

using job = std::function<cache_run_result()>;

std::vector<cache_run_result> evaluate(const std::vector<job>& jobs,
                                       unsigned threads) {
  std::vector<cache_run_result> out(jobs.size());
  parallel_runner pool(threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
  return out;
}

void meter_diff(const char* label, const traffic_meter& a,
                const traffic_meter& b) {
  for (int d = 0; d < 2; ++d) {
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto dir = static_cast<direction>(d);
      const auto cat = static_cast<traffic_category>(c);
      if (a.get(dir, cat) != b.get(dir, cat)) {
        std::fprintf(stderr, "  %s %s/%s: %llu vs %llu\n", label,
                     d == 0 ? "up" : "down", to_string(cat),
                     (unsigned long long)a.get(dir, cat),
                     (unsigned long long)b.get(dir, cat));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }
  if (out_path == nullptr) out_path = "BENCH_cache.json";
  print_section(small ? "Client cache tier (small grid)"
                      : "Client cache tier: hit ratio and TUE sweep");

  const std::size_t files = small ? 8 : 16;
  const std::uint64_t total_bytes = files * kFileBytes;
  const std::vector<double> fractions =
      small ? std::vector<double>{0.5, 1.0}
            : std::vector<double>{0.3, 0.5, 0.75, 1.0};
  std::vector<std::uint64_t> capacities;
  for (const double f : fractions) {
    capacities.push_back(
        static_cast<std::uint64_t>(f * static_cast<double>(total_bytes)));
  }
  const std::size_t num_windows = small ? 2 : std::size(kWindowsSec);

  // Grid layout (one flat job vector so the determinism leg covers every
  // cell):
  //   [0]                        cacheless, looping_scan
  //   [1]                        cacheless, frequent_mods (defer-free)
  //   [2 .. 3]                   uncapped {lru, arc}, looping_scan
  //   [4 .. 5]                   uncapped {lru, arc}, frequent_mods (df)
  //   [6 .. 6+2C)                capped scan: [cap][lru, arc]
  //   [6+2C]                     write-through, frequent_mods (defer-free)
  //   [6+2C+1 .. +num_windows]   write-back per window, frequent_mods (df)
  std::vector<job> jobs;
  auto push = [&](experiment_config cfg, cache_workload wl,
                  std::size_t pin = 0) {
    jobs.push_back([cfg = std::move(cfg), wl, files, pin] {
      return run_cache_experiment(cfg, wl, files, kFileBytes, pin);
    });
  };
  push(cacheless_cfg(false), cache_workload::looping_scan);
  push(cacheless_cfg(true), cache_workload::frequent_mods);
  for (const cache_eviction p : {cache_eviction::lru, cache_eviction::arc}) {
    push(cache_cfg(0, p, cache_write_mode::write_through, 8.0, false),
         cache_workload::looping_scan);
  }
  for (const cache_eviction p : {cache_eviction::lru, cache_eviction::arc}) {
    push(cache_cfg(0, p, cache_write_mode::write_through, 8.0, true),
         cache_workload::frequent_mods);
  }
  const std::size_t scan_base = jobs.size();
  for (const std::uint64_t cap : capacities) {
    for (const cache_eviction p :
         {cache_eviction::lru, cache_eviction::arc}) {
      push(cache_cfg(cap, p, cache_write_mode::write_through, 8.0, false),
           cache_workload::looping_scan);
    }
  }
  const std::size_t wt_run = jobs.size();
  push(cache_cfg(0, cache_eviction::lru, cache_write_mode::write_through,
                 8.0, true),
       cache_workload::frequent_mods);
  const std::size_t wb_base = jobs.size();
  for (std::size_t w = 0; w < num_windows; ++w) {
    push(cache_cfg(0, cache_eviction::lru, cache_write_mode::write_back,
                   kWindowsSec[w], true),
         cache_workload::frequent_mods);
  }

  const unsigned threads = parallel_runner::default_thread_count();
  const std::vector<cache_run_result> serial = evaluate(jobs, 1);
  const std::vector<cache_run_result> parallel = evaluate(jobs, threads);

  bool deterministic = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (!same(serial[i], parallel[i])) {
      deterministic = false;
      std::fprintf(stderr, "determinism violation: job %zu differs\n", i);
    }
  }

  // Gate: uncapped cache is invisible on the wire — per-category identity
  // with the cacheless engine, and its rehydrate counter is exactly zero.
  bool identity = true;
  const struct {
    const char* name;
    std::size_t baseline, cached;
  } kIdentityPairs[] = {
      {"scan/lru", 0, 2},  {"scan/arc", 0, 3},
      {"mods/lru", 1, 4},  {"mods/arc", 1, 5},
  };
  for (const auto& pr : kIdentityPairs) {
    const cache_run_result& base = serial[pr.baseline];
    const cache_run_result& cached = serial[pr.cached];
    if (!same_meter(base.meter, cached.meter) ||
        cached.rehydrate_traffic != 0) {
      identity = false;
      std::fprintf(stderr, "identity violation: %s\n", pr.name);
      meter_diff(pr.name, base.meter, cached.meter);
    }
  }

  // Gates: ARC beats (or ties) LRU at every scan capacity; LRU hit ratio
  // is monotone non-decreasing in capacity. ARC monotonicity is recorded
  // in the JSON but not gated (no inclusion property).
  bool arc_ge_lru = true;
  bool lru_monotone = true;
  bool arc_monotone = true;
  double prev_lru = -1.0, prev_arc = -1.0;
  for (std::size_t c = 0; c < capacities.size(); ++c) {
    const cache_run_result& lru = serial[scan_base + 2 * c];
    const cache_run_result& arc = serial[scan_base + 2 * c + 1];
    if (arc.hit_ratio + 1e-12 < lru.hit_ratio) {
      arc_ge_lru = false;
      std::fprintf(stderr, "ARC < LRU at capacity %llu: %.4f vs %.4f\n",
                   (unsigned long long)capacities[c], arc.hit_ratio,
                   lru.hit_ratio);
    }
    if (lru.hit_ratio + 1e-12 < prev_lru) {
      lru_monotone = false;
      std::fprintf(stderr, "LRU hit ratio regressed at capacity %llu\n",
                   (unsigned long long)capacities[c]);
    }
    if (arc.hit_ratio + 1e-12 < prev_arc) arc_monotone = false;
    prev_lru = lru.hit_ratio;
    prev_arc = arc.hit_ratio;
  }

  // Gate: write-back strictly beats write-through TUE at every window.
  bool wb_wins = true;
  const double wt_tue = serial[wt_run].tue;
  for (std::size_t w = 0; w < num_windows; ++w) {
    const double wb_tue = serial[wb_base + w].tue;
    if (!(wb_tue < wt_tue)) {
      wb_wins = false;
      std::fprintf(stderr,
                   "write-back does not beat write-through at %.0fs window: "
                   "%.3f vs %.3f\n",
                   kWindowsSec[w], wb_tue, wt_tue);
    }
  }

  {
    text_table t;
    t.header({"capacity", "policy", "hit ratio", "rehydrate", "evictions",
              "TUE"});
    for (std::size_t c = 0; c < capacities.size(); ++c) {
      for (std::size_t p = 0; p < 2; ++p) {
        const cache_run_result& r = serial[scan_base + 2 * c + p];
        t.row({human(static_cast<double>(capacities[c])),
               p == 0 ? "lru" : "arc", strfmt("%.4f", r.hit_ratio),
               human(static_cast<double>(r.rehydrate_traffic)),
               strfmt("%llu", (unsigned long long)r.cache.evictions),
               strfmt("%.3f", r.tue)});
      }
    }
    std::printf("--- looping scan: capacity x policy (%zu files x %s) ---\n%s\n",
                files, human(kFileBytes).c_str(), t.str().c_str());
  }
  {
    text_table t;
    t.header({"mode", "window", "TUE", "commits", "coalesced", "total"});
    const cache_run_result& wt = serial[wt_run];
    t.row({"write-through", "-", strfmt("%.3f", wt.tue),
           strfmt("%llu", (unsigned long long)wt.commits), "-",
           human(static_cast<double>(wt.total_traffic))});
    for (std::size_t w = 0; w < num_windows; ++w) {
      const cache_run_result& wb = serial[wb_base + w];
      t.row({"write-back", strfmt("%.0fs", kWindowsSec[w]),
             strfmt("%.3f", wb.tue),
             strfmt("%llu", (unsigned long long)wb.commits),
             strfmt("%llu", (unsigned long long)wb.cache.dirty_coalesced),
             human(static_cast<double>(wb.total_traffic))});
    }
    std::printf("--- frequent mods: write mode x window (defer-free) ---\n%s\n",
                t.str().c_str());
  }

  std::printf(
      "checks: deterministic(1 vs %u threads)=%s, uncapped identity=%s, "
      "ARC>=LRU=%s, LRU monotone=%s (ARC monotone=%s, unGated), "
      "write-back wins=%s\n",
      threads, deterministic ? "yes" : "NO", identity ? "yes" : "NO",
      arc_ge_lru ? "yes" : "NO", lru_monotone ? "yes" : "NO",
      arc_monotone ? "yes" : "no", wb_wins ? "yes" : "NO");

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"cache_tier\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"files\": " << files << ",\n"
      << "  \"file_bytes\": " << kFileBytes << ",\n"
      << "  \"block_bytes\": " << kBlockBytes << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "  \"uncapped_identity\": " << (identity ? "true" : "false") << ",\n"
      << "  \"arc_ge_lru\": " << (arc_ge_lru ? "true" : "false") << ",\n"
      << "  \"lru_monotone\": " << (lru_monotone ? "true" : "false") << ",\n"
      << "  \"arc_monotone\": " << (arc_monotone ? "true" : "false") << ",\n"
      << "  \"write_back_wins\": " << (wb_wins ? "true" : "false") << ",\n"
      << "  \"scan\": [";
  for (std::size_t c = 0; c < capacities.size(); ++c) {
    for (std::size_t p = 0; p < 2; ++p) {
      const cache_run_result& r = serial[scan_base + 2 * c + p];
      out << (c == 0 && p == 0 ? "\n" : ",\n") << "    {\"capacity\": "
          << capacities[c] << ", \"policy\": \""
          << (p == 0 ? "lru" : "arc") << "\", \"hit_ratio\": " << r.hit_ratio
          << ", \"hits\": " << r.cache.hits
          << ", \"misses\": " << r.cache.misses
          << ", \"evictions\": " << r.cache.evictions
          << ", \"rehydrate\": " << r.rehydrate_traffic
          << ", \"tue\": " << r.tue << "}";
    }
  }
  out << "\n  ],\n  \"write_mode\": [";
  {
    const cache_run_result& wt = serial[wt_run];
    out << "\n    {\"mode\": \"write_through\", \"window_sec\": 0"
        << ", \"tue\": " << wt.tue << ", \"commits\": " << wt.commits
        << ", \"total\": " << wt.total_traffic << ", \"coalesced\": 0}";
    for (std::size_t w = 0; w < num_windows; ++w) {
      const cache_run_result& wb = serial[wb_base + w];
      out << ",\n    {\"mode\": \"write_back\", \"window_sec\": "
          << kWindowsSec[w] << ", \"tue\": " << wb.tue
          << ", \"commits\": " << wb.commits
          << ", \"total\": " << wb.total_traffic
          << ", \"coalesced\": " << wb.cache.dirty_coalesced << "}";
    }
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return deterministic && identity && arc_ge_lru && lru_monotone && wb_wins
             ? 0
             : 1;
}
