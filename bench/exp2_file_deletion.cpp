// Reproduces Experiment 2: deletion of a synchronised file generates
// negligible (< 100 KB) traffic regardless of service, size, or method,
// because deletion is an attribute change ("fake deletion").
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Experiment 2: sync traffic of a file deletion "
      "[paper: always negligible, < 100 KB]");

  const std::uint64_t sizes[] = {1 * KiB, 1 * MiB, 10 * MiB};

  for (access_method m : all_access_methods) {
    std::printf("-- %s --\n", to_string(m));
    text_table table;
    table.header({"Service", "del 1 KB", "del 1 MB", "del 10 MB"});
    for (const service_profile& s : all_services()) {
      std::vector<std::string> row{s.name};
      for (const std::uint64_t z : sizes) {
        const std::uint64_t traffic =
            measure_deletion_traffic(make_config(s, m), z);
        row.push_back(human(static_cast<double>(traffic)));
      }
      table.row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("All cells stay below 100 KB: users need not worry about "
              "deletion traffic.\n");
  return 0;
}
