// Ablation bench for the design choices DESIGN.md calls out: what would each
// individual mechanism buy a full-file/no-dedup/no-compression baseline?
// Sweeps: IDS chunk size, dedup block size, compression level, defer policy.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

service_profile baseline() {
  service_profile s = box();  // full-file, no compression, no dedup, no defer
  s.name = "Baseline";
  return s;
}

}  // namespace

int main() {
  print_section(
      "Ablation 1: IDS chunk size vs one-byte-modification traffic "
      "(1 MB file, PC client)");
  {
    text_table table;
    table.header({"Delta chunk", "mod traffic", "vs full-file"});
    const std::uint64_t full = measure_modification_traffic(
        make_config(baseline(), access_method::pc_client), 1 * MiB);
    for (const std::size_t chunk :
         {700ul, 4096ul, 10240ul, 65536ul, 262144ul}) {
      service_profile s = baseline();
      s.name = "Baseline+IDS";
      s.delta_chunk_size = chunk;
      s.method(access_method::pc_client).incremental_sync = true;
      const std::uint64_t t = measure_modification_traffic(
          make_config(s, access_method::pc_client), 1 * MiB);
      table.row({human(static_cast<double>(chunk)),
                 human(static_cast<double>(t)),
                 strfmt("%.1f%%", 100.0 * static_cast<double>(t) /
                                      static_cast<double>(full))});
    }
    table.row({"full-file", human(static_cast<double>(full)), "100%"});
    std::printf("%s\n", table.str().c_str());
  }

  print_section(
      "Ablation 2: dedup granularity vs re-upload traffic "
      "(4 MB file uploaded twice under different names)");
  {
    text_table table;
    table.header({"Dedup policy", "2nd upload traffic"});
    struct row {
      const char* label;
      dedup_policy policy;
    };
    dedup_policy cdc_policy;
    cdc_policy.granularity = dedup_granularity::content_defined;
    cdc_policy.cdc = {64 * KiB, 256 * KiB, 1 * MiB};
    const row rows[] = {
        {"none", dedup_policy::disabled()},
        {"full-file", {dedup_granularity::full_file, 4 * MiB, false, {}}},
        {"block 1 MB", {dedup_granularity::fixed_block, 1 * MiB, false, {}}},
        {"block 4 MB", {dedup_granularity::fixed_block, 4 * MiB, false, {}}},
        {"CDC ~256 KB", cdc_policy},
    };
    for (const row& r : rows) {
      service_profile s = baseline();
      s.dedup = r.policy;
      s.method(access_method::pc_client).dedup_enabled = true;
      experiment_env env(make_config(s, access_method::pc_client));
      station& st = env.primary();
      const byte_buffer data = make_compressed_file(env.random(), 4 * MiB);
      st.fs.create("first", data, env.clock().now());
      env.settle();
      const auto snap = st.client->meter().snap();
      st.fs.create("second", data, env.clock().now());
      env.settle();
      table.row({r.label,
                 human(static_cast<double>(
                     experiment_env::traffic_since(st, snap)))});
    }
    std::printf("%s\n", table.str().c_str());
  }

  print_section(
      "Ablation 3: upload compression level vs text-upload traffic "
      "(4 MB random-English text)");
  {
    text_table table;
    table.header({"Level", "upload traffic", "vs raw"});
    std::uint64_t raw = 0;
    for (const int level : {0, 1, 3, 5, 7, 9}) {
      service_profile s = baseline();
      s.method(access_method::pc_client).upload_compression_level = level;
      const std::uint64_t t = measure_text_upload_traffic(
          make_config(s, access_method::pc_client), 4 * MiB);
      if (level == 0) raw = t;
      table.row({strfmt("%d", level), human(static_cast<double>(t)),
                 strfmt("%.1f%%", 100.0 * static_cast<double>(t) /
                                      static_cast<double>(raw))});
    }
    std::printf("%s\n", table.str().c_str());

    // What a gzip-class two-stage pipeline (dictionary + entropy coding)
    // would add on the same content — the headroom above the services'
    // dictionary-only compressors.
    rng r(7);
    const byte_buffer text = random_text(r, 4 * MiB);
    const std::size_t lzss_only =
        lzss_compressor(9).compress(text).size();
    const std::size_t two_stage =
        huffman_lzss_compressor(9).compress(text).size();
    std::printf(
        "reference: LZSS-9 alone %s; LZSS-9 + Huffman %s (extra %.1f%% off "
        "the payload)\n\n",
        human(static_cast<double>(lzss_only)).c_str(),
        human(static_cast<double>(two_stage)).c_str(),
        100.0 * (1.0 - static_cast<double>(two_stage) /
                           static_cast<double>(lzss_only)));
  }

  print_section(
      "Ablation 4: defer policy vs TUE on '3 KB / 3 sec' appends (1 MB)");
  {
    text_table table;
    table.header({"Defer policy", "TUE", "commits"});
    struct row {
      const char* label;
      defer_config defer;
    };
    byte_counter_defer::params uds_params;
    uds_params.threshold_bytes = 64 * KiB;
    uds_params.max_wait = sim_time::from_sec(60);
    const row rows[] = {
        {"none", defer_config::none()},
        {"fixed 1 s", defer_config::fixed(sim_time::from_sec(1))},
        {"fixed 4.2 s", defer_config::fixed(sim_time::from_sec(4.2))},
        {"fixed 10.5 s", defer_config::fixed(sim_time::from_sec(10.5))},
        {"UDS (64 KB counter)", defer_config::uds(uds_params)},
        {"ASD", defer_config::asd()},
    };
    for (const row& r : rows) {
      const service_profile s = with_defer(baseline(), r.defer);
      const auto res = run_append_experiment(
          make_config(s, access_method::pc_client), 3.0, 3.0, 1 * MiB);
      table.row({r.label, strfmt("%.1f", res.tue),
                 strfmt("%llu", (unsigned long long)res.commits)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Fixed defers below the update period do nothing; above it they "
        "batch everything; ASD matches the best fixed choice without "
        "knowing the period.\n");
  }
  return 0;
}
