// Before/after harness for the simulator's performance layer: evaluates the
// same TUE experiment grid twice —
//
//   baseline : serial, content cache disabled (the seed behaviour)
//   optimized: parallel runner across cores, process-wide content cache on
//
// — asserts the outputs are byte-identical (caching and parallelism must
// never change a result), and records the wall-clock trajectory in
// machine-readable form (BENCH_hotpath.json, or argv[1]) so the speedup is
// tracked from this PR onward. See docs/PERFORMANCE.md for how to read it.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

using job = std::function<std::uint64_t()>;

/// The measured workload: a representative slice of the paper's grids
/// (creation / modification / text upload cells across all six services).
/// Service profiles are captured by value so the jobs own their configs.
std::vector<job> build_jobs(bool cached) {
  std::vector<job> jobs;
  auto cfg_for = [cached](const service_profile& s, access_method m) {
    experiment_config cfg = make_config(s, m);
    cfg.use_content_cache = cached;
    return cfg;
  };
  for (const std::uint64_t z : {64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB}) {
    for (const service_profile& s : all_services()) {
      jobs.push_back([cfg = cfg_for(s, access_method::pc_client), z] {
        return measure_creation_traffic(cfg, z);
      });
    }
  }
  for (const std::uint64_t z : {256 * KiB, 1 * MiB}) {
    for (const service_profile& s : all_services()) {
      jobs.push_back([cfg = cfg_for(s, access_method::pc_client), z] {
        return measure_modification_traffic(cfg, z);
      });
    }
  }
  for (const service_profile& s : all_services()) {
    jobs.push_back([cfg = cfg_for(s, access_method::pc_client)] {
      return measure_text_upload_traffic(cfg, 1 * MiB);
    });
  }
  // A second, identical round of the modification cells for the IDS-capable
  // services: re-planning the same edit against the same shadow content is
  // the workload the signature/delta memos exist for, and without a repeated
  // cell the grid never revisited a key (their hit rates read 0%).
  for (const std::uint64_t z : {256 * KiB, 1 * MiB}) {
    for (const service_profile& s : all_services()) {
      if (!s.method(access_method::pc_client).incremental_sync) continue;
      jobs.push_back([cfg = cfg_for(s, access_method::pc_client), z] {
        return measure_modification_traffic(cfg, z);
      });
    }
  }
  return jobs;
}

struct run_result {
  std::vector<std::uint64_t> values;
  double wall_ms = 0;
};

run_result evaluate(bool cached, unsigned threads) {
  const std::vector<job> jobs = build_jobs(cached);
  run_result res;
  res.values.resize(jobs.size());
  parallel_runner pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  pool.run_indexed(jobs.size(),
                   [&](std::size_t i) { res.values[i] = jobs[i](); });
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  print_section("Hot-path report: serial+uncached vs parallel+cached");

  const unsigned threads = parallel_runner::default_thread_count();

  const run_result baseline = evaluate(/*cached=*/false, /*threads=*/1);
  // Start the optimized run with every process-wide memo cold, so the hit
  // counters below describe exactly this run.
  content_cache::global().clear();
  global_fingerprint_cache().clear();
  clear_incremental_sync_memos();
  clear_generation_memo();
  const run_result optimized = evaluate(/*cached=*/true, threads);

  struct named_stats {
    const char* name;
    content_cache_stats s;
  };
  const named_stats caches[] = {
      {"shipped_size", content_cache::global().stats()},
      {"fingerprint", global_fingerprint_cache().stats()},
      {"signature", signature_memo_stats()},
      {"delta", delta_memo_stats()},
      {"generation", generation_memo_stats()},
  };

  const bool identical = baseline.values == optimized.values;
  const double speedup =
      optimized.wall_ms > 0 ? baseline.wall_ms / optimized.wall_ms : 0.0;

  text_table table;
  table.header({"mode", "wall ms", "cells"});
  table.row({"serial + uncached (seed)", strfmt("%.1f", baseline.wall_ms),
             strfmt("%zu", baseline.values.size())});
  table.row({strfmt("parallel(%u) + cached", threads),
             strfmt("%.1f", optimized.wall_ms),
             strfmt("%zu", optimized.values.size())});
  std::printf("%s\n", table.str().c_str());
  std::printf("speedup: %.2fx, outputs identical: %s\n", speedup,
              identical ? "yes" : "NO");
  for (const named_stats& c : caches) {
    std::printf("  memo %-12s %5.1f%% hit rate (%llu hits / %llu misses)\n",
                c.name, 100.0 * c.s.hit_rate(), (unsigned long long)c.s.hits,
                (unsigned long long)c.s.misses);
  }

  const char* out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"hotpath\",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"cells\": " << baseline.values.size() << ",\n"
      << "  \"baseline\": {\"mode\": \"serial+uncached\", \"wall_ms\": "
      << baseline.wall_ms << "},\n"
      << "  \"optimized\": {\"mode\": \"parallel+cached\", \"wall_ms\": "
      << optimized.wall_ms << "},\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"identical_outputs\": " << (identical ? "true" : "false") << ",\n"
      << "  \"caches\": {";
  bool first = true;
  for (const named_stats& c : caches) {
    out << (first ? "\n" : ",\n") << "    \"" << c.name
        << "\": {\"hits\": " << c.s.hits << ", \"misses\": " << c.s.misses
        << ", \"evictions\": " << c.s.evictions
        << ", \"hit_rate\": " << c.s.hit_rate() << "}";
    first = false;
  }
  out << "\n  }\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  // Caching/parallelism changing any output is a correctness failure.
  if (!identical) return 1;

  // The grid repeats the IDS modification cells precisely so these two memo
  // tiers get revisited; a zero hit count means a dead cache tier.
  const content_cache_stats sig = signature_memo_stats();
  const content_cache_stats del = delta_memo_stats();
  if (sig.hits == 0 || del.hits == 0) {
    std::fprintf(stderr,
                 "error: dead memo tier (signature hits=%llu, delta "
                 "hits=%llu); the repeated IDS cells should produce hits\n",
                 (unsigned long long)sig.hits, (unsigned long long)del.hits);
    return 1;
  }
  return 0;
}
