// Reproduces Figure 7 (Experiment 7): TUE of OneDrive, Box, and Dropbox on
// the "X KB / X sec" appending experiment at the two vantage points:
// MN (20 Mbps, ~50 ms RTT) vs BJ (1.6 Mbps, ~300 ms RTT).
// Paper: the poor network leads to *smaller* TUE — transfers in flight
// naturally batch subsequent updates (§6.2 Condition 1).
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 7: TUE @ MN vs @ BJ for the 'X KB / X sec' experiment "
      "[paper: BJ curves sit below MN curves, gap widest at small X]");

  const double xs[] = {1, 2, 3, 5, 8, 12, 16, 20};
  const service_profile services[] = {onedrive(), box(), dropbox()};

  for (const service_profile& s : services) {
    std::printf("-- %s --\n", s.name.c_str());
    text_table table;
    table.header({"X (KB & sec)", "TUE @ MN", "TUE @ BJ", "commits MN",
                  "commits BJ"});
    for (const double x : xs) {
      experiment_config mn = make_config(s, access_method::pc_client);
      mn.link = link_config::minnesota();
      experiment_config bj = mn;
      bj.link = link_config::beijing();
      const auto rm = run_append_experiment(mn, x, x, 1 * MiB);
      const auto rb = run_append_experiment(bj, x, x, 1 * MiB);
      table.row({strfmt("%.0f", x), strfmt("%.1f", rm.tue),
                 strfmt("%.1f", rb.tue), strfmt("%llu", (unsigned long long)rm.commits),
                 strfmt("%llu", (unsigned long long)rb.commits)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "Expected: '@ BJ' TUE <= '@ MN' TUE, with fewer commits — the slow "
      "link keeps transfers in flight, so updates batch naturally.\n");
  return 0;
}
