// Reproduces Table 8 (Experiment 4): sync traffic of a 10 MB random-English
// text file creation, upload (UP) and download (DN), per access method.
// Paper: only Dropbox & Ubuntu One compress uploads (PC > mobile > web=none);
// on download only Dropbox compresses for every method.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Table 8: sync traffic of a 10 MB text file (UP/DN) "
      "[paper: Dropbox PC 6.1/5.5 MB, Google Drive 11.3/11.0 MB]");

  constexpr std::uint64_t kX = 10 * MiB;

  const std::vector<service_profile> services = all_services();
  std::vector<std::function<std::uint64_t()>> jobs;
  for (const service_profile& s : services) {
    for (access_method m : all_access_methods) {
      jobs.push_back(
          [&s, m] { return measure_text_upload_traffic(make_config(s, m), kX); });
      jobs.push_back([&s, m] {
        return measure_text_download_traffic(make_config(s, m), kX);
      });
    }
  }
  const std::vector<std::uint64_t> traffic = run_grid(jobs);

  text_table table;
  table.header({"Service", "PC UP", "PC DN", "Web UP", "Web DN", "Mobile UP",
                "Mobile DN"});
  std::size_t cell = 0;
  for (const service_profile& s : services) {
    std::vector<std::string> row{s.name};
    for (access_method m : all_access_methods) {
      (void)m;
      row.push_back(human(static_cast<double>(traffic[cell++])));
      row.push_back(human(static_cast<double>(traffic[cell++])));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Compression pattern to check: Dropbox & Ubuntu One UP < 10 MB on PC "
      "(moderate) and mobile (low), never via web; DN compressed by Dropbox "
      "everywhere and by Ubuntu One on PC/web only.\n");
  return 0;
}
