// Reproduces Figure 8 (c): Dropbox TUE on the "X KB / X sec" appending
// experiment across hardware classes M1 (typical), M2 (outdated), M3
// (advanced). Paper: slower hardware incurs less sync traffic (§6.2
// Condition 2 — metadata computation time batches updates).
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 8(c): Dropbox TUE on 'X KB / X sec' appends with M1/M2/M3 "
      "[paper: M2 (outdated) lowest, M3 (advanced) highest]");

  const double xs[] = {0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0};
  const hardware_profile hw[] = {hardware_profile::m1(), hardware_profile::m2(),
                                 hardware_profile::m3()};

  text_table table;
  table.header({"X (KB & sec)", "TUE M1 (typical)", "TUE M2 (outdated)",
                "TUE M3 (advanced)"});
  for (const double x : xs) {
    std::vector<std::string> row{strfmt("%.1f", x)};
    for (const hardware_profile& h : hw) {
      experiment_config cfg = make_config(dropbox(), access_method::pc_client);
      cfg.hardware = h;
      const auto res = run_append_experiment(cfg, x, x, 1 * MiB);
      row.push_back(strfmt("%.1f", res.tue));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected ordering at small X: M2 < M1 <= M3 (slower hardware "
              "saves traffic by batching naturally).\n");
  return 0;
}
