// The paper's provider guidance, operationalised: start from a plain
// full-file service (Google-Drive-like) and add the four mechanisms one at
// a time — compression, IDS, BDS, full-file dedup, then ASD — measuring a
// mixed workload after each step. This is Table 5's "implications" column
// as an executable.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

struct workload_result {
  std::uint64_t traffic = 0;
  std::uint64_t update_bytes = 0;
};

/// Mixed workload: a batch of small files, a compressible document that gets
/// edited repeatedly, a duplicate upload, and a steady append stream.
workload_result run_mixed_workload(const service_profile& profile) {
  experiment_config cfg{profile};
  experiment_env env(cfg);
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  std::uint64_t update = 0;

  // 1. 40 small files at once (BDS target).
  for (int i = 0; i < 40; ++i) {
    st.fs.create(strfmt("batch/f%02d", i),
                 make_compressed_file(env.random(), 2 * KiB),
                 env.clock().now());
    update += 2 * KiB;
  }
  env.settle();

  // 2. A 2 MB text report (compression target).
  st.fs.create("report.txt", make_text_file(env.random(), 2 * MiB),
               env.clock().now());
  update += 2 * MiB;
  env.settle();

  // 3. Ten small edits to the report (IDS target).
  for (int i = 0; i < 10; ++i) {
    env.clock().advance_to(env.clock().now() + sim_time::from_sec(60));
    modify_random_byte(st.fs, "report.txt", env.random(), env.clock().now());
    update += 1;
    env.settle();
  }

  // 4. A duplicate of an existing file (dedup target).
  const byte_buffer dup = st.fs.read("report.txt").flatten();
  st.fs.create("report_copy.txt", dup, env.clock().now());
  update += dup.size();
  env.settle();

  // 5. A "2 KB / 2 sec" stream to 256 KB (defer target).
  st.fs.create("notes.md", byte_buffer{}, env.clock().now());
  const sim_time base = env.clock().now();
  for (int i = 1; i <= 128; ++i) {
    env.clock().schedule_at(base + sim_time::from_sec(2.0 * i), [&env, &st] {
      append_random(st.fs, "notes.md", env.random(), 2 * KiB,
                    env.clock().now());
    });
    update += 2 * KiB;
  }
  env.settle();

  return {experiment_env::traffic_since(st, snap), update};
}

}  // namespace

int main() {
  print_section(
      "What if a plain full-file service adopted the paper's mechanisms "
      "one by one? (mixed workload: batch creates + compressible doc + "
      "edits + duplicate + append stream)");

  service_profile s = google_drive();
  s.defer = defer_config::none();  // start from the bare mechanism set
  s.name = "baseline (full-file)";

  std::vector<std::pair<std::string, service_profile>> steps;
  steps.emplace_back(s.name, s);

  s.method(access_method::pc_client).upload_compression_level = 6;
  steps.emplace_back("+ compression", s);

  s.method(access_method::pc_client).incremental_sync = true;
  s.delta_chunk_size = 10 * KiB;
  steps.emplace_back("+ incremental sync (IDS)", s);

  method_profile& pc = s.method(access_method::pc_client);
  pc.batched_sync = true;
  pc.bds_batch_overhead_up = 6'000;
  pc.bds_batch_overhead_down = 2'500;
  pc.bds_per_file_bytes = 150;
  steps.emplace_back("+ batched sync (BDS)", s);

  s.dedup = {dedup_granularity::full_file, 4 * MiB, false, {}};
  s.method(access_method::pc_client).dedup_enabled = true;
  steps.emplace_back("+ full-file dedup", s);

  s.defer = defer_config::asd();
  steps.emplace_back("+ adaptive sync defer (ASD)", s);

  text_table table;
  table.header({"Configuration", "sync traffic", "TUE", "saved vs baseline"});
  std::uint64_t baseline = 0;
  for (auto& [label, profile] : steps) {
    const workload_result res = run_mixed_workload(profile);
    if (baseline == 0) baseline = res.traffic;
    table.row({label, human(static_cast<double>(res.traffic)),
               strfmt("%.2f", tue(res.traffic, res.update_bytes)),
               strfmt("%.1f%%",
                      100.0 * (1.0 - static_cast<double>(res.traffic) /
                                         static_cast<double>(baseline)))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Each mechanism attacks a different slice of the waste; together they "
      "push TUE to ~1 — the paper's headline claim that today's sync "
      "traffic has 'enormous space' for optimisation.\n");
  return 0;
}
