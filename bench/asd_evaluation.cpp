// Evaluates the paper's proposed ASD (adaptive sync defer, Eq. 2) against
// the shipped policies: fixed defers fail once X exceeds T, ASD tracks the
// update period and keeps TUE near 1 everywhere (§6.1).
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "ASD evaluation: fixed sync defer vs adaptive sync defer "
      "[paper: with ASD, Google Drive's TUE at X=5/6/7 drops from "
      "260/100/83 to ~1]");

  const double xs[] = {1, 2, 3, 5, 6, 7, 8, 10, 14, 20};

  struct variant {
    std::string label;
    service_profile profile;
  };
  const variant variants[] = {
      {"GoogleDrive fixed 4.2s", google_drive()},
      {"GoogleDrive + ASD", with_defer(google_drive(), defer_config::asd())},
      {"OneDrive fixed 10.5s", onedrive()},
      {"OneDrive + ASD", with_defer(onedrive(), defer_config::asd())},
      {"Box no defer", box()},
      {"Box + ASD", with_defer(box(), defer_config::asd())},
  };

  text_table table;
  std::vector<std::string> header{"X (KB & sec)"};
  for (const variant& v : variants) header.push_back(v.label);
  table.header(std::move(header));

  for (const double x : xs) {
    std::vector<std::string> row{strfmt("%.0f", x)};
    for (const variant& v : variants) {
      const auto res = run_append_experiment(
          make_config(v.profile, access_method::pc_client), x, x, 1 * MiB);
      row.push_back(strfmt("%.1f", res.tue));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "ASD columns should stay near TUE ~ 1-2 across the whole X range, "
      "because T_i adapts to sit slightly above the inter-update gap.\n");
  return 0;
}
