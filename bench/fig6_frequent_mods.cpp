// Reproduces Figure 6 (Experiment 6): TUE under the "X KB / X sec" appending
// workload (append X random KB every X seconds until 1 MB total), six
// services, PC client @ MN.
// Paper shapes: full-file + no defer (Box, Ubuntu One) -> TUE large and
// decreasing in X; fixed defer (Google Drive 4.2 s, OneDrive 10.5 s,
// SugarSync 6 s) -> TUE ~ 1 while X < T, spiking when X > T; IDS
// (Dropbox, SugarSync) -> moderate TUE.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 6: TUE vs X for the 'X KB / X sec' appending experiment "
      "(C = 1 MB, PC @ MN) [paper maxima: GD 260, OD 51, DB 32, Box 75, "
      "U1 144, SS 33]");

  const double xs[] = {1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20};

  text_table table;
  std::vector<std::string> header{"X (KB & sec)"};
  for (const service_profile& s : all_services()) header.push_back(s.name);
  table.header(std::move(header));

  for (const double x : xs) {
    std::vector<std::string> row{strfmt("%.0f", x)};
    for (const service_profile& s : all_services()) {
      const auto res = run_append_experiment(
          make_config(s, access_method::pc_client), x, x, 1 * MiB);
      row.push_back(strfmt("%.1f", res.tue));
    }
    table.row(std::move(row));
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Shapes to check: Google Drive ~1 for X<=4 then spikes (T~4.2 s); "
      "OneDrive ~1 for X<=10 (T~10.5 s); SugarSync ~1 for X<=6 (T~6 s); "
      "Box/Ubuntu One decrease smoothly; Dropbox stays lowest among "
      "non-deferring services (IDS).\n");
  return 0;
}
