// Shared helpers for the reproduction bench binaries. Each binary prints the
// paper-style table/series it regenerates, plus the paper's published values
// where useful for side-by-side comparison.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cloudsync.hpp"

namespace cloudsync::bench {

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline std::string human(double bytes) { return format_bytes(bytes); }

/// Experiment config for (service, method) at the default MN vantage point.
inline experiment_config make_config(const service_profile& s,
                                     access_method m) {
  experiment_config cfg{s};
  cfg.method = m;
  return cfg;
}

/// The pool shared by a bench binary's independent experiment evaluations.
/// Thread count follows the hardware (override with CLOUDSYNC_THREADS=1 for
/// a serial run; results are identical either way).
inline parallel_runner& bench_pool() {
  static parallel_runner pool;
  return pool;
}

/// Evaluate a grid of independent experiment jobs across cores and return
/// the results in job order — the deterministic building block for the
/// table/figure binaries: build every cell's job first, evaluate in
/// parallel, then print from the ordered results.
template <typename R>
std::vector<R> run_grid(const std::vector<std::function<R()>>& jobs) {
  return parallel_map_n<R>(bench_pool(), jobs.size(),
                           [&](std::size_t i) { return jobs[i](); });
}

}  // namespace cloudsync::bench
