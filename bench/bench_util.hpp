// Shared helpers for the reproduction bench binaries. Each binary prints the
// paper-style table/series it regenerates, plus the paper's published values
// where useful for side-by-side comparison.
#pragma once

#include <cstdio>
#include <string>

#include "cloudsync.hpp"

namespace cloudsync::bench {

inline void print_section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline std::string human(double bytes) { return format_bytes(bytes); }

/// Experiment config for (service, method) at the default MN vantage point.
inline experiment_config make_config(const service_profile& s,
                                     access_method m) {
  experiment_config cfg{s};
  cfg.method = m;
  return cfg;
}

}  // namespace cloudsync::bench
