// Reproduces Figure 2: CDF of original and compressed file sizes in the
// (synthetic, calibrated) trace.
// Paper: original max 2.0 GB / mean 962 KB / median 7.5 KB; compressed max
// 1.97 GB / mean 732 KB / median 3.2 KB; most files are small.
#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section(
      "Figure 2: CDF of original vs compressed file size "
      "[paper: median 7.5 KB / 3.2 KB, mean 962 KB / 732 KB]");

  trace_params params;
  params.scale = 0.05;
  const trace_dataset ds = generate_trace(params);
  const trace_summary s = summarize(ds);

  std::printf("files: %zu\n", s.file_count);
  std::printf("original:   median %s, mean %s, max %s\n",
              human(s.median_size).c_str(), human(s.mean_size).c_str(),
              human(s.max_size).c_str());
  std::printf("compressed: median %s, mean %s\n",
              human(s.median_compressed).c_str(),
              human(static_cast<double>(s.total_compressed) /
                    static_cast<double>(s.file_count))
                  .c_str());
  std::printf("P(original < 100 KB) = %.1f%% [paper: 77%%], "
              "P(compressed < 100 KB) = %.1f%% [paper: 81%%]\n\n",
              s.fraction_small * 100.0, s.fraction_small_compressed * 100.0);

  const empirical_cdf orig = original_size_cdf(ds);
  const empirical_cdf comp = compressed_size_cdf(ds);

  text_table table;
  table.header({"Size", "CDF(original)", "CDF(compressed)"});
  for (double kb : {0.256, 1.0, 4.0, 7.5, 16.0, 64.0, 100.0, 1024.0,
                    10240.0, 102400.0, 1048576.0}) {
    const double bytes = kb * 1024.0;
    table.row({human(bytes), strfmt("%.3f", orig.at(bytes)),
               strfmt("%.3f", comp.at(bytes))});
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
