// Regenerates the paper's §4/§5 trace-level claims from the calibrated
// synthetic trace: small-file fraction, batchability, modification rate,
// compressibility, duplication.
#include <map>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

int main() {
  print_section("Trace analysis: §4/§5 dataset claims, paper vs measured");

  trace_params params;
  params.scale = 0.05;
  const trace_dataset ds = generate_trace(params);
  const trace_summary s = summarize(ds);

  text_table table;
  table.header({"Claim", "Paper", "Measured"});
  table.row({"files < 100 KB (original size)", "77%",
             strfmt("%.1f%%", s.fraction_small * 100.0)});
  table.row({"files < 100 KB (compressed size)", "81%",
             strfmt("%.1f%%", s.fraction_small_compressed * 100.0)});
  table.row({"small files creatable in batches", "66%",
             strfmt("%.1f%%", batchable_small_fraction(ds) * 100.0)});
  table.row({"files modified at least once", "84%",
             strfmt("%.1f%%", s.fraction_modified * 100.0)});
  table.row({"files effectively compressible", "52%",
             strfmt("%.1f%%", s.fraction_effectively_compressible * 100.0)});
  table.row({"overall compression ratio", "1.31",
             strfmt("%.2f", s.overall_compression_ratio)});
  table.row({"sync traffic saved by compression", "24%",
             strfmt("%.1f%%", s.traffic_saving * 100.0)});
  table.row({"full-file duplicate byte ratio", "18.8%",
             strfmt("%.1f%%", full_file_duplicate_fraction(ds) * 100.0)});
  table.row({"users with >10% traffic from frequent mods", "8.5%",
             strfmt("%.1f%%",
                    frequent_modification_user_fraction(ds) * 100.0)});
  table.row({"median original size", "7.5 KB", human(s.median_size)});
  table.row({"median compressed size", "3.2 KB", human(s.median_compressed)});
  table.row({"mean original size", "962 KB", human(s.mean_size)});
  table.row({"max original size", "2.0 GB", human(s.max_size)});
  std::printf("%s\n", table.str().c_str());

  std::printf("per-service file counts (Table 2, scaled by %.2f):\n",
              params.scale);
  text_table services;
  services.header({"Service", "files"});
  std::map<std::string, std::size_t> counts;
  for (const trace_file_record& f : ds.files) ++counts[f.service];
  for (const auto& [name, n] : counts) {
    services.row({name, strfmt("%zu", n)});
  }
  std::printf("%s\n", services.str().c_str());
  return 0;
}
