// Robustness sweep: how does network-level efficiency degrade when the
// network and the service misbehave? For each service, runs the failure
// workload (distinct creations + one-byte modifications) under increasingly
// hostile deterministic fault plans — link outages, connection resets,
// mid-transfer aborts, transient server errors and throttles — and reports
// TUE plus sync-completion time per intensity.
//
// Self-checks (nonzero exit on violation):
//   - zero intensity is byte-identical to a run with no fault plan at all
//     (the fault layer must be a strict no-op when disabled);
//   - every cell is byte-identical between a serial and a parallel grid
//     evaluation (seeded injection composes with the parallel runner);
//   - averaged TUE is monotonically non-decreasing in fault intensity
//     (faults can only waste traffic, never save it).
//
// Machine-readable output: BENCH_failure.json (or argv[1]).
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::size_t kFiles = 8;
constexpr std::uint64_t kFileBytes = 256 * KiB;
const double kIntensities[] = {0.0, 0.25, 0.5, 1.0};
const std::uint64_t kSeeds[] = {1234, 4711, 9001};

experiment_config cfg_for(const service_profile& s, double intensity,
                          std::uint64_t seed) {
  experiment_config cfg = make_config(s, access_method::pc_client);
  cfg.link = link_config::beijing();  // the paper's lossy vantage point
  cfg.seed = seed;
  cfg.faults = fault_plan::degraded(intensity);
  return cfg;
}

bool same(const failure_run_result& a, const failure_run_result& b) {
  return a.total_traffic == b.total_traffic &&
         a.retry_traffic == b.retry_traffic &&
         a.data_update_bytes == b.data_update_bytes && a.tue == b.tue &&
         a.completion_sec == b.completion_sec && a.retries == b.retries &&
         a.requeues == b.requeues && a.fallbacks == b.fallbacks &&
         a.faults_injected == b.faults_injected;
}

/// Seed-averaged view of one (service, intensity) cell.
struct cell_avg {
  double tue = 0;
  double completion_sec = 0;
  double retry_traffic = 0;
  std::uint64_t retries = 0;
  std::uint64_t requeues = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t faults_injected = 0;
};

cell_avg average(const failure_run_result* runs, std::size_t n) {
  cell_avg avg;
  for (std::size_t i = 0; i < n; ++i) {
    avg.tue += runs[i].tue;
    avg.completion_sec += runs[i].completion_sec;
    avg.retry_traffic += static_cast<double>(runs[i].retry_traffic);
    avg.retries += runs[i].retries;
    avg.requeues += runs[i].requeues;
    avg.fallbacks += runs[i].fallbacks;
    avg.faults_injected += runs[i].faults_injected;
  }
  avg.tue /= static_cast<double>(n);
  avg.completion_sec /= static_cast<double>(n);
  avg.retry_traffic /= static_cast<double>(n);
  return avg;
}

using job = std::function<failure_run_result()>;

std::vector<failure_run_result> evaluate(const std::vector<job>& jobs,
                                         unsigned threads) {
  std::vector<failure_run_result> out(jobs.size());
  parallel_runner pool(threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  print_section("Failure sweep: TUE and completion time vs fault intensity");

  const std::vector<service_profile> services = {dropbox(), box(), onedrive()};
  constexpr std::size_t kNumIntensities = std::size(kIntensities);
  constexpr std::size_t kNumSeeds = std::size(kSeeds);

  // Grid layout: [service][intensity][seed], plus one trailing block of
  // explicit no-plan baselines [service][seed] that intensity 0 must match.
  std::vector<job> jobs;
  for (const service_profile& s : services) {
    for (const double intensity : kIntensities) {
      for (const std::uint64_t seed : kSeeds) {
        jobs.push_back([cfg = cfg_for(s, intensity, seed)] {
          return run_failure_experiment(cfg, kFiles, kFileBytes);
        });
      }
    }
  }
  for (const service_profile& s : services) {
    for (const std::uint64_t seed : kSeeds) {
      experiment_config cfg = cfg_for(s, 0.0, seed);
      cfg.faults = fault_plan::none();
      jobs.push_back(
          [cfg] { return run_failure_experiment(cfg, kFiles, kFileBytes); });
    }
  }

  const unsigned threads = parallel_runner::default_thread_count();
  const std::vector<failure_run_result> serial = evaluate(jobs, 1);
  const std::vector<failure_run_result> parallel = evaluate(jobs, threads);

  bool deterministic = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    deterministic = deterministic && same(serial[i], parallel[i]);
  }

  auto cell_at = [&](std::size_t svc, std::size_t inten, std::size_t seed) {
    return serial[(svc * kNumIntensities + inten) * kNumSeeds + seed];
  };
  const std::size_t baseline_off =
      services.size() * kNumIntensities * kNumSeeds;

  bool zero_matches_baseline = true;
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    for (std::size_t seed = 0; seed < kNumSeeds; ++seed) {
      zero_matches_baseline =
          zero_matches_baseline &&
          same(cell_at(svc, 0, seed),
               serial[baseline_off + svc * kNumSeeds + seed]);
    }
  }

  bool tue_monotone = true;
  std::vector<std::vector<cell_avg>> table_cells(services.size());
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    for (std::size_t inten = 0; inten < kNumIntensities; ++inten) {
      failure_run_result runs[kNumSeeds];
      for (std::size_t seed = 0; seed < kNumSeeds; ++seed) {
        runs[seed] = cell_at(svc, inten, seed);
      }
      table_cells[svc].push_back(average(runs, kNumSeeds));
      if (inten > 0) {
        tue_monotone = tue_monotone && table_cells[svc][inten].tue >=
                                           table_cells[svc][inten - 1].tue;
      }
    }
  }

  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    text_table table;
    table.header({"intensity", "TUE", "completion s", "retry traffic",
                  "retries", "fallbacks", "faults"});
    for (std::size_t inten = 0; inten < kNumIntensities; ++inten) {
      const cell_avg& c = table_cells[svc][inten];
      table.row({strfmt("%.2f", kIntensities[inten]), strfmt("%.3f", c.tue),
                 strfmt("%.1f", c.completion_sec), human(c.retry_traffic),
                 strfmt("%llu", (unsigned long long)c.retries),
                 strfmt("%llu", (unsigned long long)c.fallbacks),
                 strfmt("%llu", (unsigned long long)c.faults_injected)});
    }
    std::printf("--- %s (PC client, Beijing link, %zu seeds) ---\n%s\n",
                services[svc].name.c_str(), kNumSeeds, table.str().c_str());
  }

  std::printf("checks: deterministic(1 vs %u threads)=%s, "
              "zero-intensity==no-plan=%s, TUE monotone=%s\n",
              threads, deterministic ? "yes" : "NO",
              zero_matches_baseline ? "yes" : "NO",
              tue_monotone ? "yes" : "NO");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_failure.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"failure\",\n"
      << "  \"files\": " << kFiles << ",\n"
      << "  \"file_bytes\": " << kFileBytes << ",\n"
      << "  \"seeds\": " << kNumSeeds << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"zero_matches_baseline\": "
      << (zero_matches_baseline ? "true" : "false") << ",\n"
      << "  \"tue_monotone\": " << (tue_monotone ? "true" : "false") << ",\n"
      << "  \"services\": {";
  for (std::size_t svc = 0; svc < services.size(); ++svc) {
    out << (svc == 0 ? "\n" : ",\n") << "    \"" << services[svc].name
        << "\": [";
    for (std::size_t inten = 0; inten < kNumIntensities; ++inten) {
      const cell_avg& c = table_cells[svc][inten];
      out << (inten == 0 ? "\n" : ",\n") << "      {\"intensity\": "
          << kIntensities[inten] << ", \"tue\": " << c.tue
          << ", \"completion_sec\": " << c.completion_sec
          << ", \"retry_traffic\": " << c.retry_traffic
          << ", \"retries\": " << c.retries << ", \"requeues\": " << c.requeues
          << ", \"fallbacks\": " << c.fallbacks
          << ", \"faults_injected\": " << c.faults_injected << "}";
    }
    out << "\n    ]";
  }
  out << "\n  }\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return deterministic && zero_matches_baseline && tue_monotone ? 0 : 1;
}
