// Protocol-selection sweep: is the adaptive cost-model selector at least as
// network-efficient as every pinned protocol, on every workload, in every
// network environment — and does it actually win where the regimes mix?
//
// For each cell of {trace workload} x {network environment} the same
// deterministic trace (run_protocol_experiment) is replayed under:
//   - service_default        (the historical branching — the baseline)
//   - forced full_file / rsync / cdc_dedup (the three pinned protocols)
//   - adaptive               (argmin over the calibrated cost model)
// plus two variant-profile service_default runs that reproduce the pinned
// protocols through the legacy branching alone — the identity references
// that prove forcing a protocol goes through exactly the engine paths that
// already existed.
//
// Self-checks (nonzero exit on violation):
//   - every cell is byte-identical per (direction, traffic category)
//     between a serial and a parallel grid evaluation (CLOUDSYNC_THREADS
//     equivalent: 1 vs N workers);
//   - forced runs are byte-identical per meter category to the legacy
//     engine: forced(rsync) == service_default on the canonical profile,
//     forced(full_file) == service_default with {incremental off, dedup
//     off}, forced(cdc_dedup) == service_default with {incremental off,
//     dedup on};
//   - adaptive total traffic <= each pinned protocol within kAdaptiveSlack
//     in every cell, and strictly beats at least one pinned protocol in at
//     least one cell of every workload (regime mixing must pay);
//   - after calibration the selector's median |predicted - actual| /
//     actual over all adaptive observations is below kMedianErrorBudget.
//
// Machine-readable output: BENCH_protocol.json (or argv[1]). `--small`
// shrinks the grid to one network environment (sanitizer CI leg).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

using namespace cloudsync;
using namespace cloudsync::bench;

namespace {

constexpr std::uint64_t kFileBytes = 64 * KiB;
constexpr double kAdaptiveSlack = 1.02;     // gate (a): per-cell tolerance
constexpr double kMedianErrorBudget = 0.15; // gate (c)

const protocol_workload kWorkloads[] = {
    protocol_workload::small_edits,
    protocol_workload::fresh_rewrites,
    protocol_workload::duplicate_copy,
};

struct net_env {
  const char* name;
  link_config link;
};

/// The canonical lab profile: every protocol eligible (incremental sync on,
/// content-defined dedup on), small delta blocks so 64 KiB files have a
/// meaningful signature grid.
service_profile lab_profile() {
  service_profile s = dropbox();
  s.name = "lab";
  s.delta_chunk_size = 4 * KiB;
  s.dedup = {dedup_granularity::content_defined, 4 * MiB,
             /*cross_user=*/false, cdc_params{}};
  return s;
}

/// Legacy branching lands on full_file: incremental sync and dedup both off.
service_profile lab_full_only() {
  service_profile s = lab_profile();
  s.name = "lab-full";
  s.method(access_method::pc_client).incremental_sync = false;
  s.method(access_method::pc_client).dedup_enabled = false;
  s.dedup = dedup_policy::disabled();
  return s;
}

/// Legacy branching lands on cdc_dedup: incremental sync off, dedup on.
service_profile lab_cdc_only() {
  service_profile s = lab_profile();
  s.name = "lab-cdc";
  s.method(access_method::pc_client).incremental_sync = false;
  return s;
}

enum profile_kind : std::size_t { canonical = 0, full_only = 1, cdc_only = 2 };

/// One selection configuration of the sweep. `identity_of` points at the
/// forced run this variant-profile run must match byte-for-byte (-1: none).
struct run_config {
  const char* name;
  profile_kind profile;
  protocol_mode mode;
  protocol_id forced;
  int identity_of;
};
const run_config kRuns[] = {
    {"legacy", canonical, protocol_mode::service_default,
     protocol_id::full_file, 2},  // canonical branching picks rsync
    {"forced-full", canonical, protocol_mode::forced, protocol_id::full_file,
     -1},
    {"forced-rsync", canonical, protocol_mode::forced, protocol_id::rsync,
     -1},
    {"forced-cdc", canonical, protocol_mode::forced, protocol_id::cdc_dedup,
     -1},
    {"adaptive", canonical, protocol_mode::adaptive, protocol_id::full_file,
     -1},
    {"legacy-full", full_only, protocol_mode::service_default,
     protocol_id::full_file, 1},
    {"legacy-cdc", cdc_only, protocol_mode::service_default,
     protocol_id::full_file, 3},
};
constexpr std::size_t kNumRuns = std::size(kRuns);
constexpr std::size_t kForcedRuns[] = {1, 2, 3};  // gate (a) comparands
constexpr std::size_t kAdaptiveRun = 4;

experiment_config cfg_for(const run_config& rc, const link_config& link) {
  static const service_profile profiles[] = {lab_profile(), lab_full_only(),
                                             lab_cdc_only()};
  experiment_config cfg =
      make_config(profiles[rc.profile], access_method::pc_client);
  cfg.link = link;
  cfg.protocol.mode = rc.mode;
  cfg.protocol.forced = rc.forced;
  return cfg;
}

bool same_meter(const traffic_meter& a, const traffic_meter& b) {
  for (int d = 0; d < 2; ++d) {
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto dir = static_cast<direction>(d);
      const auto cat = static_cast<traffic_category>(c);
      if (a.get(dir, cat) != b.get(dir, cat)) return false;
    }
  }
  return true;
}

bool same(const protocol_run_result& a, const protocol_run_result& b) {
  return same_meter(a.meter, b.meter) && a.total_traffic == b.total_traffic &&
         a.data_update_bytes == b.data_update_bytes &&
         a.commits == b.commits && a.selector.picks == b.selector.picks &&
         a.selector.observations == b.selector.observations &&
         a.selector.error_hist == b.selector.error_hist;
}

using job = std::function<protocol_run_result()>;

std::vector<protocol_run_result> evaluate(const std::vector<job>& jobs,
                                          unsigned threads) {
  std::vector<protocol_run_result> out(jobs.size());
  parallel_runner pool(threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
  return out;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

std::string picks_str(const protocol_selector_stats& s) {
  return strfmt("%llu/%llu/%llu", (unsigned long long)s.picks[0],
                (unsigned long long)s.picks[1],
                (unsigned long long)s.picks[2]);
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else {
      out_path = argv[i];
    }
  }
  if (out_path == nullptr) out_path = "BENCH_protocol.json";
  print_section(small ? "Protocol selection (small grid)"
                      : "Protocol selection: adaptive vs pinned protocols");

  const std::size_t files = small ? 3 : 6;
  const std::vector<net_env> envs =
      small ? std::vector<net_env>{{"minnesota", link_config::minnesota()}}
            : std::vector<net_env>{{"minnesota", link_config::minnesota()},
                                   {"beijing", link_config::beijing()}};
  const std::size_t num_workloads = std::size(kWorkloads);
  const std::size_t num_envs = envs.size();

  // Grid layout: [workload][env][run].
  std::vector<job> jobs;
  for (const protocol_workload wl : kWorkloads) {
    for (const net_env& ne : envs) {
      for (const run_config& rc : kRuns) {
        jobs.push_back([cfg = cfg_for(rc, ne.link), wl, files] {
          return run_protocol_experiment(cfg, wl, files, kFileBytes);
        });
      }
    }
  }

  const unsigned threads = parallel_runner::default_thread_count();
  const std::vector<protocol_run_result> serial = evaluate(jobs, 1);
  const std::vector<protocol_run_result> parallel = evaluate(jobs, threads);

  bool deterministic = true;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    deterministic = deterministic && same(serial[i], parallel[i]);
  }

  auto cell_at = [&](std::size_t wl, std::size_t env,
                     std::size_t run) -> const protocol_run_result& {
    return serial[(wl * num_envs + env) * kNumRuns + run];
  };

  // Gate (b): every forced run is byte-identical per meter category to the
  // legacy engine branching that produces the same protocol.
  bool forced_identity = true;
  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t e = 0; e < num_envs; ++e) {
      for (std::size_t r = 0; r < kNumRuns; ++r) {
        if (kRuns[r].identity_of < 0) continue;
        const auto f = static_cast<std::size_t>(kRuns[r].identity_of);
        if (!same_meter(cell_at(w, e, r).meter, cell_at(w, e, f).meter)) {
          forced_identity = false;
          std::fprintf(stderr,
                       "identity violation: %s/%s %s vs %s meters differ\n",
                       to_string(kWorkloads[w]), envs[e].name, kRuns[r].name,
                       kRuns[f].name);
        }
      }
    }
  }

  // Gate (a): adaptive never loses to a pinned protocol by more than the
  // slack, and strictly beats at least one pinned protocol somewhere in
  // every workload.
  bool adaptive_bounded = true;
  std::vector<bool> strict_win(num_workloads, false);
  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t e = 0; e < num_envs; ++e) {
      const std::uint64_t ad = cell_at(w, e, kAdaptiveRun).total_traffic;
      for (const std::size_t f : kForcedRuns) {
        const std::uint64_t fx = cell_at(w, e, f).total_traffic;
        if (static_cast<double>(ad) > static_cast<double>(fx) * kAdaptiveSlack) {
          adaptive_bounded = false;
          std::fprintf(stderr,
                       "adaptive over budget: %s/%s adaptive=%llu %s=%llu\n",
                       to_string(kWorkloads[w]), envs[e].name,
                       (unsigned long long)ad, kRuns[f].name,
                       (unsigned long long)fx);
        }
        if (ad < fx) strict_win[w] = true;
      }
    }
  }
  bool adaptive_wins = true;
  for (std::size_t w = 0; w < num_workloads; ++w) {
    adaptive_wins = adaptive_wins && strict_win[w];
  }

  // Gate (c): pooled median calibrated prediction error.
  std::vector<double> pooled_errors;
  std::uint64_t pooled_obs = 0;
  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t e = 0; e < num_envs; ++e) {
      const protocol_selector_stats& s = cell_at(w, e, kAdaptiveRun).selector;
      pooled_errors.insert(pooled_errors.end(), s.abs_rel_errors.begin(),
                           s.abs_rel_errors.end());
      pooled_obs += s.observations;
    }
  }
  const double median_err = median_of(pooled_errors);
  const bool calibrated = pooled_obs > 0 && median_err < kMedianErrorBudget;

  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t e = 0; e < num_envs; ++e) {
      text_table t;
      t.header({"run", "total", "TUE", "payload up", "metadata up",
                "picks f/r/c", "median err"});
      for (std::size_t r = 0; r < kNumRuns; ++r) {
        const protocol_run_result& res = cell_at(w, e, r);
        const protocol_selector_stats& s = res.selector;
        t.row({kRuns[r].name, human(res.total_traffic),
               strfmt("%.3f", res.tue),
               human(res.meter.get(direction::up, traffic_category::payload)),
               human(res.meter.get(direction::up, traffic_category::metadata)),
               picks_str(s),
               s.observations == 0
                   ? std::string("-")
                   : strfmt("%.3f",
                            median_of(std::vector<double>(
                                s.abs_rel_errors)))});
      }
      std::printf("--- %s @ %s (%zu files x %s) ---\n%s\n",
                  to_string(kWorkloads[w]), envs[e].name, files,
                  human(kFileBytes).c_str(), t.str().c_str());
    }
  }

  std::printf(
      "checks: deterministic(1 vs %u threads)=%s, forced identity=%s, "
      "adaptive within %.0f%%=%s, strict win per workload=%s, "
      "median prediction error=%.3f (< %.2f)=%s\n",
      threads, deterministic ? "yes" : "NO", forced_identity ? "yes" : "NO",
      (kAdaptiveSlack - 1.0) * 100.0, adaptive_bounded ? "yes" : "NO",
      adaptive_wins ? "yes" : "NO", median_err, kMedianErrorBudget,
      calibrated ? "yes" : "NO");

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"protocol_selector\",\n"
      << "  \"small\": " << (small ? "true" : "false") << ",\n"
      << "  \"files\": " << files << ",\n"
      << "  \"file_bytes\": " << kFileBytes << ",\n"
      << "  \"adaptive_slack\": " << kAdaptiveSlack << ",\n"
      << "  \"median_error_budget\": " << kMedianErrorBudget << ",\n"
      << "  \"deterministic\": " << (deterministic ? "true" : "false")
      << ",\n"
      << "  \"forced_identity\": " << (forced_identity ? "true" : "false")
      << ",\n"
      << "  \"adaptive_bounded\": " << (adaptive_bounded ? "true" : "false")
      << ",\n"
      << "  \"adaptive_wins\": " << (adaptive_wins ? "true" : "false")
      << ",\n"
      << "  \"median_prediction_error\": " << median_err << ",\n"
      << "  \"observations\": " << pooled_obs << ",\n"
      << "  \"cells\": [";
  bool first_cell = true;
  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t e = 0; e < num_envs; ++e) {
      out << (first_cell ? "\n" : ",\n")
          << "    {\"workload\": \"" << to_string(kWorkloads[w])
          << "\", \"env\": \"" << envs[e].name << "\", \"runs\": {";
      first_cell = false;
      for (std::size_t r = 0; r < kNumRuns; ++r) {
        const protocol_run_result& res = cell_at(w, e, r);
        out << (r == 0 ? "\n" : ",\n") << "      \"" << kRuns[r].name
            << "\": {\"total\": " << res.total_traffic
            << ", \"tue\": " << res.tue << ", \"payload_up\": "
            << res.meter.get(direction::up, traffic_category::payload)
            << ", \"metadata_up\": "
            << res.meter.get(direction::up, traffic_category::metadata)
            << ", \"commits\": " << res.commits << ", \"picks\": ["
            << res.selector.picks[0] << ", " << res.selector.picks[1] << ", "
            << res.selector.picks[2] << "], \"observations\": "
            << res.selector.observations << ", \"median_err\": "
            << median_of(std::vector<double>(res.selector.abs_rel_errors))
            << "}";
      }
      out << "\n    }}";
    }
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);

  return deterministic && forced_identity && adaptive_bounded &&
                 adaptive_wins && calibrated
             ? 0
             : 1;
}
