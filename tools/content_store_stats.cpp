// content_store_stats: drive a small dedup-heavy sync scenario and dump the
// process-wide content store — chunk count, refcount histogram, and bytes
// shared vs. unique — in both store modes.
//
// The point of the tool is observability: "is sharing actually happening?"
// becomes a table instead of a heap profile. A duplicate file, a shadow
// copy, and a retained version history should all show up as refcounts > 1
// on the same chunks; flat mode shows the same workload with every layer
// holding private copies.
//
// Usage: content_store_stats [--files N] [--size BYTES] [--flat]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "fs/file_ops.hpp"
#include "store/content_store.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"

using namespace cloudsync;

namespace {

void dump_store(const char* heading) {
  const content_store::stats_snapshot st = content_store::global().stats();
  const content_store::table_profile prof =
      content_store::global().profile_table();

  std::printf("\n-- %s --\n", heading);
  std::printf("chunks: %llu (%llu interned), live bytes %s (peak %s)\n",
              (unsigned long long)st.chunks,
              (unsigned long long)st.interned_chunks,
              format_bytes(static_cast<double>(st.live_bytes)).c_str(),
              format_bytes(static_cast<double>(st.peak_live_bytes)).c_str());
  std::printf("intern hits/misses: %llu / %llu\n",
              (unsigned long long)st.intern_hits,
              (unsigned long long)st.intern_misses);
  std::printf("interned table: unique %s backing logical %s (sharing saves "
              "%s)\n",
              format_bytes(static_cast<double>(prof.unique_bytes)).c_str(),
              format_bytes(static_cast<double>(prof.logical_bytes)).c_str(),
              format_bytes(static_cast<double>(
                  prof.logical_bytes - prof.unique_bytes)).c_str());

  text_table table;
  table.header({"refcount", "chunks"});
  for (const auto& [refs, count] : prof.refcount_histogram) {
    table.row({std::to_string(refs), std::to_string(count)});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t files = 20;
  std::size_t size = 256 * 1024;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--files") == 0) {
      files = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--size") == 0) {
      size = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--flat") == 0) {
      content_store::global().set_mode(content_mode::flat);
    } else {
      std::fprintf(stderr,
                   "usage: content_store_stats [--files N] [--size BYTES] "
                   "[--flat]\n");
      return 2;
    }
  }

  const bool flat = content_store::global().mode() == content_mode::flat;
  std::printf("content store mode: %s\n", flat ? "flat" : "cow");
  std::printf("workload: %zu files x %s, half exact duplicates, one edit "
              "each\n",
              files, format_bytes(static_cast<double>(size)).c_str());

  {
    experiment_config cfg{dropbox()};
    experiment_env env(cfg);
    station& st = env.primary();
    rng content_rng(42);
    const byte_buffer original = random_bytes(content_rng, size);
    for (std::size_t i = 0; i < files; ++i) {
      // Odd indices re-create the same bytes: whole-file duplicates that
      // CoW interning should collapse onto the same chunks.
      const byte_buffer content =
          i % 2 == 0 ? random_bytes(content_rng, size) : original;
      st.fs.create("f" + std::to_string(i), content, env.clock().now());
    }
    env.settle();
    for (std::size_t i = 0; i < files; ++i) {
      env.clock().advance_to(env.clock().now() + sim_time::from_sec(30));
      modify_random_byte(st.fs, "f" + std::to_string(i), env.random(),
                         env.clock().now());
    }
    env.settle();

    dump_store("after replay (filesystem + shadows + cloud history live)");
  }
  dump_store("after teardown (every layer destroyed)");
  if (!content_store::global().empty()) {
    // The generation memo in file_ops may legitimately pin buffers, but this
    // tool generates content directly — anything left is a leaked handle.
    std::printf("WARNING: store not empty after teardown\n");
    return 1;
  }
  std::printf("\nstore empty after teardown: refcounting is exact.\n");
  return 0;
}
