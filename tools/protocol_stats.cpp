// protocol_stats: replay one protocol-selection trace workload under a
// chosen selection mode and dump what the selector actually did — per-
// protocol pick counts, the calibrated correction factors, the predicted-
// vs-actual relative-error histogram, and the traffic split. The
// observability companion to bench/protocol_selector_report (DESIGN.md,
// "Protocol selection & cost model"). Exits nonzero if the replay commits
// nothing or an adaptive run records no calibration observations.
//
// Usage: protocol_stats [--workload W] [--mode M] [--forced P] [--files N]
//                       [--size BYTES] [--env E] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"

using namespace cloudsync;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload W] [--mode M] [--forced P] [--files N]\n"
      "          [--size BYTES] [--env E] [--json]\n"
      "  --workload W  small_edits | fresh_rewrites | duplicate_copy\n"
      "                (default small_edits)\n"
      "  --mode M      service_default | forced | adaptive (default "
      "adaptive)\n"
      "  --forced P    full_file | rsync | cdc_dedup (with --mode forced)\n"
      "  --env E       minnesota | beijing (default minnesota)\n",
      argv0);
  return 2;
}

const char* kErrorBucketLabels[protocol_selector_stats::kErrorBuckets] = {
    "<5%", "<10%", "<15%", "<25%", "<50%", "<100%", ">=100%"};

/// The same every-protocol-eligible lab profile the bench sweeps.
service_profile lab_profile() {
  service_profile s = dropbox();
  s.name = "lab";
  s.delta_chunk_size = 4 * KiB;
  s.dedup = {dedup_granularity::content_defined, 4 * MiB,
             /*cross_user=*/false, cdc_params{}};
  return s;
}

void print_json(protocol_workload wl, const experiment_config& cfg,
                std::size_t files, std::uint64_t file_bytes,
                const protocol_run_result& r) {
  const protocol_selector_stats& s = r.selector;
  std::printf("{\n");
  std::printf("  \"workload\": \"%s\",\n", to_string(wl));
  std::printf("  \"mode\": \"%s\",\n", to_string(cfg.protocol.mode));
  std::printf("  \"files\": %zu,\n", files);
  std::printf("  \"file_bytes\": %llu,\n",
              static_cast<unsigned long long>(file_bytes));
  std::printf("  \"commits\": %llu,\n",
              static_cast<unsigned long long>(r.commits));
  std::printf("  \"total_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.total_traffic));
  std::printf("  \"tue\": %g,\n", r.tue);
  std::printf("  \"picks\": {");
  for (std::size_t p = 0; p < protocol_registry::instance().size(); ++p) {
    std::printf("%s\"%s\": %llu", p ? ", " : "",
                to_string(static_cast<protocol_id>(p)),
                static_cast<unsigned long long>(s.picks[p]));
  }
  std::printf("},\n");
  std::printf("  \"correction\": {");
  for (std::size_t p = 0; p < protocol_registry::instance().size(); ++p) {
    std::printf("%s\"%s\": %g", p ? ", " : "",
                to_string(static_cast<protocol_id>(p)), s.correction[p]);
  }
  std::printf("},\n");
  std::printf("  \"observations\": %llu,\n",
              static_cast<unsigned long long>(s.observations));
  std::printf("  \"mean_abs_rel_error\": %g,\n", s.mean_abs_rel_error());
  std::printf("  \"median_abs_rel_error\": %g,\n", s.median_abs_rel_error());
  std::printf("  \"error_hist\": [");
  for (std::size_t b = 0; b < protocol_selector_stats::kErrorBuckets; ++b) {
    std::printf("%s%llu", b ? ", " : "",
                static_cast<unsigned long long>(s.error_hist[b]));
  }
  std::printf("]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  protocol_workload wl = protocol_workload::small_edits;
  protocol_mode mode = protocol_mode::adaptive;
  protocol_id forced = protocol_id::full_file;
  std::size_t files = 6;
  std::uint64_t file_bytes = 64 * KiB;
  link_config link = link_config::minnesota();
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--workload") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "small_edits") == 0) {
        wl = protocol_workload::small_edits;
      } else if (std::strcmp(v, "fresh_rewrites") == 0) {
        wl = protocol_workload::fresh_rewrites;
      } else if (std::strcmp(v, "duplicate_copy") == 0) {
        wl = protocol_workload::duplicate_copy;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--mode") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "service_default") == 0) {
        mode = protocol_mode::service_default;
      } else if (std::strcmp(v, "forced") == 0) {
        mode = protocol_mode::forced;
      } else if (std::strcmp(v, "adaptive") == 0) {
        mode = protocol_mode::adaptive;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--forced") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "full_file") == 0) {
        forced = protocol_id::full_file;
      } else if (std::strcmp(v, "rsync") == 0) {
        forced = protocol_id::rsync;
      } else if (std::strcmp(v, "cdc_dedup") == 0) {
        forced = protocol_id::cdc_dedup;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--files") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      files = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--size") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      file_bytes = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--env") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "minnesota") == 0) {
        link = link_config::minnesota();
      } else if (std::strcmp(v, "beijing") == 0) {
        link = link_config::beijing();
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (files == 0 || file_bytes == 0) return usage(argv[0]);

  experiment_config cfg{lab_profile()};
  cfg.method = access_method::pc_client;
  cfg.link = link;
  cfg.protocol.mode = mode;
  cfg.protocol.forced = forced;

  const protocol_run_result r =
      run_protocol_experiment(cfg, wl, files, file_bytes);
  const protocol_selector_stats& s = r.selector;

  if (json) {
    print_json(wl, cfg, files, file_bytes, r);
  } else {
    std::printf("protocol_stats: %s, mode %s%s%s, %zu files x %llu B\n\n",
                to_string(wl), to_string(mode),
                mode == protocol_mode::forced ? " " : "",
                mode == protocol_mode::forced ? to_string(forced) : "",
                files, static_cast<unsigned long long>(file_bytes));
    std::printf("traffic: %llu B total (TUE %.3f), %llu commits\n",
                static_cast<unsigned long long>(r.total_traffic), r.tue,
                static_cast<unsigned long long>(r.commits));
    std::printf("picks / correction:\n");
    for (std::size_t p = 0; p < protocol_registry::instance().size(); ++p) {
      std::printf("  %-10s %6llu  x%.3f\n",
                  to_string(static_cast<protocol_id>(p)),
                  static_cast<unsigned long long>(s.picks[p]),
                  s.correction[p]);
    }
    std::printf("calibration: %llu observations, mean |err| %.3f, "
                "median |err| %.3f\n",
                static_cast<unsigned long long>(s.observations),
                s.mean_abs_rel_error(), s.median_abs_rel_error());
    std::printf("error histogram:\n");
    for (std::size_t b = 0; b < protocol_selector_stats::kErrorBuckets; ++b) {
      std::printf("  %-7s %llu\n", kErrorBucketLabels[b],
                  static_cast<unsigned long long>(s.error_hist[b]));
    }
  }

  // Smoke-test teeth: the replay must commit, and an adaptive run that never
  // calibrated means the feedback loop is disconnected.
  if (r.commits == 0) return 1;
  if (mode == protocol_mode::adaptive && s.observations == 0) return 1;
  return 0;
}
