// cloudsync — command-line driver for the library.
//
//   cloudsync services                      list the calibrated profiles
//   cloudsync probe --service Dropbox       black-box fingerprint
//   cloudsync creation --service Box --size 1M
//   cloudsync modify   --service Dropbox --size 10M
//   cloudsync append   --service "Google Drive" --kb 2 --period 2 --total 1M
//   cloudsync trace    --scale 0.02 [--csv trace.csv]
//   cloudsync replay   --scale 0.01
//
// Common options: --method pc|web|mobile, --link mn|bj, --seed N.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr, "%s",
               "usage: cloudsync <command> [options]\n"
               "\n"
               "commands:\n"
               "  services              list service profiles and design "
               "choices\n"
               "  probe                 fingerprint a service from traffic "
               "alone\n"
               "  creation              Experiment 1: file-creation traffic\n"
               "  modify                Experiment 3: one-byte modification\n"
               "  append                Experiment 6: 'X KB / X sec' stream\n"
               "  trace                 generate + summarise the synthetic "
               "trace\n"
               "  replay                macro fleet replay of the trace\n"
               "\n"
               "options:\n"
               "  --service <name>      Google Drive | OneDrive | Dropbox | "
               "Box | Ubuntu One | SugarSync\n"
               "  --method pc|web|mobile   access method (default pc)\n"
               "  --link mn|bj          vantage point (default mn)\n"
               "  --size <n[K|M|G]>     file size for creation/modify\n"
               "  --kb / --period / --total   append-stream parameters\n"
               "  --scale <f>           trace scale fraction\n"
               "  --csv <path>          write the generated trace as CSV\n"
               "  --seed <n>            RNG seed\n");
  std::exit(2);
}

std::uint64_t parse_size(const std::string& s) {
  if (s.empty()) usage("empty size");
  char suffix = s.back();
  std::uint64_t mult = 1;
  std::string digits = s;
  if (suffix == 'K' || suffix == 'k') mult = KiB;
  if (suffix == 'M' || suffix == 'm') mult = MiB;
  if (suffix == 'G' || suffix == 'g') mult = GiB;
  if (mult != 1) digits = s.substr(0, s.size() - 1);
  try {
    return std::stoull(digits) * mult;
  } catch (const std::exception&) {
    usage("bad size value");
  }
}

struct cli_options {
  std::string command;
  std::string service = "Dropbox";
  access_method method = access_method::pc_client;
  link_config link = link_config::minnesota();
  std::uint64_t size = 1 * MiB;
  double kb = 1.0;
  double period = 1.0;
  std::uint64_t total = 1 * MiB;
  double scale = 0.02;
  std::string csv_path;
  std::uint64_t seed = 1234;
};

cli_options parse(int argc, char** argv) {
  if (argc < 2) usage();
  cli_options opt;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--service") {
      opt.service = value();
    } else if (arg == "--method") {
      const std::string m = value();
      if (m == "pc") opt.method = access_method::pc_client;
      else if (m == "web") opt.method = access_method::web_browser;
      else if (m == "mobile") opt.method = access_method::mobile_app;
      else usage("unknown method");
    } else if (arg == "--link") {
      const std::string l = value();
      if (l == "mn") opt.link = link_config::minnesota();
      else if (l == "bj") opt.link = link_config::beijing();
      else usage("unknown link");
    } else if (arg == "--size") {
      opt.size = parse_size(value());
    } else if (arg == "--kb") {
      opt.kb = std::stod(value());
    } else if (arg == "--period") {
      opt.period = std::stod(value());
    } else if (arg == "--total") {
      opt.total = parse_size(value());
    } else if (arg == "--scale") {
      opt.scale = std::stod(value());
    } else if (arg == "--csv") {
      opt.csv_path = value();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return opt;
}

experiment_config config_for(const cli_options& opt) {
  const auto profile = find_service(opt.service);
  if (!profile) usage(("unknown service: " + opt.service).c_str());
  experiment_config cfg{*profile};
  cfg.method = opt.method;
  cfg.link = opt.link;
  cfg.seed = opt.seed;
  return cfg;
}

int cmd_services() {
  text_table t;
  t.header({"Service", "IDS (PC)", "BDS (PC)", "compress UP (PC)",
            "dedup", "defer"});
  for (const service_profile& s : all_services()) {
    const method_profile& pc = s.method(access_method::pc_client);
    std::string dedup = "no";
    if (s.dedup.granularity == dedup_granularity::full_file) {
      dedup = s.dedup.cross_user ? "full-file (cross-user)" : "full-file";
    } else if (s.dedup.granularity == dedup_granularity::fixed_block) {
      dedup = strfmt("%s blocks",
                     format_bytes(static_cast<double>(s.dedup.block_size))
                         .c_str());
    }
    std::string defer = "none";
    if (s.defer.policy == defer_config::kind::fixed) {
      defer = strfmt("fixed %.1f s", s.defer.fixed_deferment.sec());
    } else if (s.defer.policy == defer_config::kind::adaptive) {
      defer = "ASD";
    }
    t.row({s.name, pc.incremental_sync ? "yes" : "no",
           pc.batched_sync ? "yes" : "no",
           pc.upload_compression_level > 0
               ? strfmt("level %d", pc.upload_compression_level)
               : "no",
           dedup, defer});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

int cmd_probe(const cli_options& opt) {
  std::printf("fingerprinting %s via %s...\n\n", opt.service.c_str(),
              to_string(opt.method));
  const probed_characteristics p = probe_service(config_for(opt));
  std::printf("%s", p.summary().c_str());
  return 0;
}

int cmd_creation(const cli_options& opt) {
  const std::uint64_t traffic =
      measure_creation_traffic(config_for(opt), opt.size);
  std::printf("creating a %s file on %s (%s): %s of sync traffic, TUE %.2f\n",
              format_bytes(static_cast<double>(opt.size)).c_str(),
              opt.service.c_str(), to_string(opt.method),
              format_bytes(static_cast<double>(traffic)).c_str(),
              tue(traffic, opt.size));
  return 0;
}

int cmd_modify(const cli_options& opt) {
  const std::uint64_t traffic =
      measure_modification_traffic(config_for(opt), opt.size);
  std::printf(
      "modifying 1 byte of a %s file on %s (%s): %s of sync traffic\n",
      format_bytes(static_cast<double>(opt.size)).c_str(),
      opt.service.c_str(), to_string(opt.method),
      format_bytes(static_cast<double>(traffic)).c_str());
  return 0;
}

int cmd_append(const cli_options& opt) {
  const auto res = run_append_experiment(config_for(opt), opt.kb, opt.period,
                                         opt.total);
  std::printf(
      "'%.1f KB / %.1f sec' stream to %s on %s: traffic %s, TUE %.1f, "
      "%llu commits\n",
      opt.kb, opt.period, format_bytes(static_cast<double>(opt.total)).c_str(),
      opt.service.c_str(),
      format_bytes(static_cast<double>(res.total_traffic)).c_str(), res.tue,
      static_cast<unsigned long long>(res.commits));
  return 0;
}

int cmd_trace(const cli_options& opt) {
  trace_params params;
  params.scale = opt.scale;
  params.seed = opt.seed;
  const trace_dataset ds = generate_trace(params);
  const trace_summary s = summarize(ds);
  std::printf("generated %zu files (scale %.3f)\n", s.file_count, opt.scale);
  std::printf("median %s, mean %s, <100 KB %.1f%%, modified %.1f%%, "
              "compressible %.1f%%, compression ratio %.2f, duplicates "
              "%.1f%% of bytes\n",
              format_bytes(s.median_size).c_str(),
              format_bytes(s.mean_size).c_str(), s.fraction_small * 100.0,
              s.fraction_modified * 100.0,
              s.fraction_effectively_compressible * 100.0,
              s.overall_compression_ratio,
              full_file_duplicate_fraction(ds) * 100.0);
  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.csv_path.c_str());
      return 1;
    }
    write_trace_csv(ds, out);
    std::printf("wrote %s\n", opt.csv_path.c_str());
  }
  return 0;
}

int cmd_replay(const cli_options& opt) {
  fleet_config cfg;
  cfg.trace.scale = opt.scale;
  cfg.trace.seed = opt.seed;
  cfg.method = opt.method;
  cfg.link = opt.link;
  text_table t;
  t.header({"Service", "files", "sync traffic", "TUE", "mean sync delay"});
  for (const fleet_service_report& r : replay_trace_fleet(cfg)) {
    t.row({r.service, strfmt("%zu", r.files),
           format_bytes(static_cast<double>(r.sync_traffic)),
           strfmt("%.2f", r.tue()), strfmt("%.1f s", r.mean_staleness_sec)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_options opt = parse(argc, argv);
  if (opt.command == "services") return cmd_services();
  if (opt.command == "probe") return cmd_probe(opt);
  if (opt.command == "creation") return cmd_creation(opt);
  if (opt.command == "modify") return cmd_modify(opt);
  if (opt.command == "append") return cmd_append(opt);
  if (opt.command == "trace") return cmd_trace(opt);
  if (opt.command == "replay") return cmd_replay(opt);
  usage(("unknown command " + opt.command).c_str());
}
