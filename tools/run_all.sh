#!/usr/bin/env bash
# Build, test, and regenerate every reproduction artifact.
#
#   tools/run_all.sh [--sanitize] [build-dir]
#
# Produces test_output.txt and bench_output.txt in the repo root.
# With --sanitize, first runs the tier-1 test suite under the asan, ubsan,
# and tsan CMake presets (see CMakePresets.json), then does the normal build.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

sanitize=0
if [ "${1:-}" = "--sanitize" ]; then
  sanitize=1
  shift
fi
build_dir="${1:-$repo_root/build}"

if [ "$sanitize" -eq 1 ]; then
  for preset in asan ubsan tsan; do
    echo "=== sanitizer pass: $preset ==="
    (cd "$repo_root" \
       && cmake --preset "$preset" \
       && cmake --build --preset "$preset" \
       && ctest --preset "$preset")
  done
fi

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

: > "$repo_root/bench_output.txt"
for b in "$build_dir"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$repo_root/bench_output.txt"
  "$b" 2>&1 | tee -a "$repo_root/bench_output.txt"
done

# Selector observability: one adaptive and one forced replay through
# tools/protocol_stats, appended to the bench log. (protocol_selector_report
# itself already ran in the bench/* loop above and wrote BENCH_protocol.json.)
for args in "--workload small_edits --mode adaptive" \
            "--workload duplicate_copy --mode forced --forced cdc_dedup"; do
  echo "### protocol_stats $args" | tee -a "$repo_root/bench_output.txt"
  # shellcheck disable=SC2086
  "$build_dir/tools/protocol_stats" $args 2>&1 \
    | tee -a "$repo_root/bench_output.txt"
done

# Cache-tier observability: one capacity-pressured scan and one write-back
# replay through tools/cache_stats, appended to the bench log.
# (cache_tier_report already ran above and wrote BENCH_cache.json.)
for args in "--workload scan --capacity 262144 --policy arc --files 8" \
            "--workload mods --mode wb --window 5 --files 4"; do
  echo "### cache_stats $args" | tee -a "$repo_root/bench_output.txt"
  # shellcheck disable=SC2086
  "$build_dir/tools/cache_stats" $args 2>&1 \
    | tee -a "$repo_root/bench_output.txt"
done

echo "done: test_output.txt and bench_output.txt written."
