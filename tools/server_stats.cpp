// server_stats: run a synthetic session wave against the sharded sync server
// and dump the per-shard gauges the bench aggregates away — occupancy, queue
// depths, lock contention, and the session-state histogram. The
// observability companion to bench/server_scale_report (DESIGN.md, "Sharded
// server & session lifecycle").
//
// Usage: server_stats [--shards N] [--sessions N] [--threads N]
//                     [--admission N] [--chunk-store] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/parallel_runner.hpp"
#include "server/session.hpp"
#include "server/sync_server.hpp"

using namespace cloudsync;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--shards N] [--sessions N] [--threads N]\n"
               "          [--admission N] [--chunk-store] [--json]\n",
               argv0);
  return 2;
}

void print_histogram(const char* label,
                     const std::array<std::uint64_t, kSessionStateCount>& h) {
  std::printf("  %s:", label);
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    std::printf(" %s=%llu", to_string(static_cast<session_state>(i)),
                static_cast<unsigned long long>(h[i]));
  }
  std::printf("\n");
}

void json_histogram(const char* key,
                    const std::array<std::uint64_t, kSessionStateCount>& h,
                    bool last) {
  std::printf("      \"%s\": {", key);
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    std::printf("\"%s\": %llu%s", to_string(static_cast<session_state>(i)),
                static_cast<unsigned long long>(h[i]),
                i + 1 < kSessionStateCount ? ", " : "");
  }
  std::printf("}%s\n", last ? "" : ",");
}

void dump_shard_json(std::uint32_t idx, const shard_stats& s, bool last) {
  std::printf("    {\n      \"shard\": %u,\n", idx);
  std::printf("      \"users\": %llu,\n",
              static_cast<unsigned long long>(s.users));
  std::printf("      \"objects\": %llu,\n",
              static_cast<unsigned long long>(s.objects));
  std::printf("      \"manifests\": %llu,\n",
              static_cast<unsigned long long>(s.manifests));
  std::printf("      \"live_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.live_bytes));
  std::printf("      \"sessions_admitted\": %llu,\n",
              static_cast<unsigned long long>(s.sessions_admitted));
  std::printf("      \"admission_waits\": %llu,\n",
              static_cast<unsigned long long>(s.admission_waits));
  std::printf("      \"queue_depth_peak\": %u,\n", s.queue_depth_peak);
  std::printf("      \"in_flight_peak\": %u,\n", s.in_flight_peak);
  std::printf("      \"lock_acquisitions\": %llu,\n",
              static_cast<unsigned long long>(s.lock_acquisitions));
  std::printf("      \"lock_contentions\": %llu,\n",
              static_cast<unsigned long long>(s.lock_contentions));
  std::printf("      \"busy_ns\": %llu,\n",
              static_cast<unsigned long long>(s.busy_ns));
  std::printf("      \"dedup_probes\": %llu,\n",
              static_cast<unsigned long long>(s.dedup_probes));
  std::printf("      \"dedup_hits\": %llu,\n",
              static_cast<unsigned long long>(s.dedup_hits));
  std::printf("      \"uploads\": %llu,\n",
              static_cast<unsigned long long>(s.uploads));
  std::printf("      \"upload_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.upload_bytes));
  std::printf("      \"commits\": %llu,\n",
              static_cast<unsigned long long>(s.commits));
  json_histogram("state_entered", s.state_entered, false);
  json_histogram("state_live", s.state_live, true);
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t shards = 4;
  std::uint32_t sessions = 400;
  unsigned threads = 2;
  std::uint32_t admission = 8;
  bool chunk_store = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const auto next_u32 = [&](std::uint32_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      return out != 0;
    };
    if (std::strcmp(argv[i], "--shards") == 0) {
      if (!next_u32(shards)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      if (!next_u32(sessions)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      std::uint32_t t = 0;
      if (!next_u32(t)) return usage(argv[0]);
      threads = t;
    } else if (std::strcmp(argv[i], "--admission") == 0) {
      if (!next_u32(admission)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--chunk-store") == 0) {
      chunk_store = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }

  workload_params wp;
  wp.seed = 42;
  wp.user_population = sessions * 10;
  wp.sessions = sessions;
  wp.files_per_session = 4;
  wp.mean_file_bytes = 2048;
  wp.identity_pool = 64;
  const auto work = make_session_workloads(wp);

  server_config cfg;
  cfg.shards = shards;
  cfg.admission_limit = admission;
  cfg.use_chunk_store = chunk_store;
  cfg.chunk_store_chunk_size = 1024;
  sync_server srv(cfg);

  parallel_runner pool(threads);
  const auto results = parallel_map_n<session_result>(
      pool, work.size(),
      [&](std::size_t i) { return run_session(srv, work[i]); });

  std::size_t failed = 0;
  for (const auto& r : results) failed += r.failed ? 1 : 0;

  const server_stats st = srv.stats();
  if (json) {
    std::printf("{\n  \"shards\": [\n");
    for (std::uint32_t i = 0; i < st.shards.size(); ++i) {
      dump_shard_json(i, st.shards[i], i + 1 == st.shards.size());
    }
    std::printf("  ],\n  \"failed_sessions\": %zu\n}\n", failed);
  } else {
    std::printf("sharded sync server: %u shards, %zu sessions, %u threads\n",
                srv.shard_count(), results.size(), pool.thread_count());
    for (std::uint32_t i = 0; i < st.shards.size(); ++i) {
      const shard_stats& s = st.shards[i];
      std::printf(
          "shard %u: users=%llu objects=%llu live=%llu B  admitted=%llu "
          "waits=%llu depth_peak=%u inflight_peak=%u  locks=%llu "
          "contested=%llu  dedup=%llu/%llu  uploads=%llu (%llu B)\n",
          i, static_cast<unsigned long long>(s.users),
          static_cast<unsigned long long>(s.objects),
          static_cast<unsigned long long>(s.live_bytes),
          static_cast<unsigned long long>(s.sessions_admitted),
          static_cast<unsigned long long>(s.admission_waits),
          s.queue_depth_peak, s.in_flight_peak,
          static_cast<unsigned long long>(s.lock_acquisitions),
          static_cast<unsigned long long>(s.lock_contentions),
          static_cast<unsigned long long>(s.dedup_hits),
          static_cast<unsigned long long>(s.dedup_probes),
          static_cast<unsigned long long>(s.uploads),
          static_cast<unsigned long long>(s.upload_bytes));
      print_histogram("entered", s.state_entered);
      print_histogram("live   ", s.state_live);
    }
    const shard_stats agg = st.aggregate();
    std::printf(
        "total: users=%llu sessions=%llu dedup_hits=%llu uploads=%llu "
        "failed=%zu\n",
        static_cast<unsigned long long>(agg.users),
        static_cast<unsigned long long>(agg.sessions_admitted),
        static_cast<unsigned long long>(agg.dedup_hits),
        static_cast<unsigned long long>(agg.uploads), failed);
  }

  // Self-check: the wave must drain (nothing live, everything admitted).
  const shard_stats agg = st.aggregate();
  bool ok = failed == 0 && agg.sessions_admitted == results.size();
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    if (agg.state_live[i] != 0) ok = false;
  }
  return ok ? 0 : 1;
}
