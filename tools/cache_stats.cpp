// cache_stats: run one cache-tier workload through a station with a client
// block cache and dump what the cache actually did — hit/miss/eviction
// counters, pin and dirty-queue depths, rehydration traffic, and the
// end-of-run residency gauges. The observability companion to
// bench/cache_tier_report (DESIGN.md §11, "Client cache tier"). Exits
// nonzero if the replay commits nothing, or a cold-start run rehydrates
// nothing (the purge-then-read path would be disconnected).
//
// Usage: cache_stats [--workload W] [--capacity BYTES] [--policy P]
//                    [--mode M] [--window SEC] [--files N] [--size BYTES]
//                    [--pin K] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/experiment.hpp"

using namespace cloudsync;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload W] [--capacity BYTES] [--policy P] [--mode M]\n"
      "          [--window SEC] [--files N] [--size BYTES] [--pin K]\n"
      "          [--json]\n"
      "  --workload W  scan | mods | cold (default scan)\n"
      "  --capacity B  resident-byte budget, 0 = unbounded (default 0)\n"
      "  --policy P    lru | arc (default lru)\n"
      "  --mode M      wt | wb (write-through | write-back, default wt)\n"
      "  --window SEC  write-back coalescing window (default 8)\n"
      "  --pin K       pin the first K paths after creation (default 0)\n",
      argv0);
  return 2;
}

void print_json(cache_workload wl, const cache_config& cc, std::size_t files,
                std::uint64_t file_bytes, std::size_t pin,
                const cache_run_result& r) {
  const block_cache_stats& s = r.cache;
  std::printf("{\n");
  std::printf("  \"workload\": \"%s\",\n", to_string(wl));
  std::printf("  \"capacity_bytes\": %llu,\n",
              static_cast<unsigned long long>(cc.capacity_bytes));
  std::printf("  \"block_bytes\": %zu,\n", cc.block_bytes);
  std::printf("  \"policy\": \"%s\",\n", to_string(cc.policy));
  std::printf("  \"write_mode\": \"%s\",\n", to_string(cc.write_mode));
  std::printf("  \"coalesce_window_sec\": %g,\n", cc.coalesce_window.sec());
  std::printf("  \"files\": %zu,\n", files);
  std::printf("  \"file_bytes\": %llu,\n",
              static_cast<unsigned long long>(file_bytes));
  std::printf("  \"pinned\": %zu,\n", pin);
  std::printf("  \"commits\": %llu,\n",
              static_cast<unsigned long long>(r.commits));
  std::printf("  \"total_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.total_traffic));
  std::printf("  \"rehydrate_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.rehydrate_traffic));
  std::printf("  \"tue\": %g,\n", r.tue);
  std::printf("  \"hit_ratio\": %g,\n", r.hit_ratio);
  std::printf("  \"hits\": %llu,\n", static_cast<unsigned long long>(s.hits));
  std::printf("  \"misses\": %llu,\n",
              static_cast<unsigned long long>(s.misses));
  std::printf("  \"insertions\": %llu,\n",
              static_cast<unsigned long long>(s.insertions));
  std::printf("  \"evictions\": %llu,\n",
              static_cast<unsigned long long>(s.evictions));
  std::printf("  \"eviction_stalls\": %llu,\n",
              static_cast<unsigned long long>(s.eviction_stalls));
  std::printf("  \"rehydrated_blocks\": %llu,\n",
              static_cast<unsigned long long>(s.rehydrated_blocks));
  std::printf("  \"rehydrated_bytes\": %llu,\n",
              static_cast<unsigned long long>(s.rehydrated_bytes));
  std::printf("  \"dirty_marked\": %llu,\n",
              static_cast<unsigned long long>(s.dirty_marked));
  std::printf("  \"dirty_coalesced\": %llu,\n",
              static_cast<unsigned long long>(s.dirty_coalesced));
  std::printf("  \"flushes\": %llu,\n",
              static_cast<unsigned long long>(s.flushes));
  std::printf("  \"plan_fallbacks\": %llu,\n",
              static_cast<unsigned long long>(s.plan_fallbacks));
  std::printf("  \"resident_blocks\": %llu,\n",
              static_cast<unsigned long long>(r.resident_blocks));
  std::printf("  \"resident_bytes\": %llu,\n",
              static_cast<unsigned long long>(r.resident_bytes));
  std::printf("  \"pinned_paths\": %llu,\n",
              static_cast<unsigned long long>(r.pinned_paths));
  std::printf("  \"tracked_paths\": %llu\n",
              static_cast<unsigned long long>(r.tracked_paths));
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  cache_workload wl = cache_workload::looping_scan;
  cache_config cc;
  cc.block_bytes = 8 * KiB;
  std::size_t files = 8;
  std::uint64_t file_bytes = 64 * KiB;
  std::size_t pin = 0;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--workload") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "scan") == 0) {
        wl = cache_workload::looping_scan;
      } else if (std::strcmp(v, "mods") == 0) {
        wl = cache_workload::frequent_mods;
      } else if (std::strcmp(v, "cold") == 0) {
        wl = cache_workload::cold_start;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--capacity") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cc.capacity_bytes = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--policy") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "lru") == 0) {
        cc.policy = cache_eviction::lru;
      } else if (std::strcmp(v, "arc") == 0) {
        cc.policy = cache_eviction::arc;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--mode") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "wt") == 0) {
        cc.write_mode = cache_write_mode::write_through;
      } else if (std::strcmp(v, "wb") == 0) {
        cc.write_mode = cache_write_mode::write_back;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(a, "--window") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cc.coalesce_window = sim_time::from_sec(std::atof(v));
    } else if (std::strcmp(a, "--files") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      files = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--size") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      file_bytes = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--pin") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      pin = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (files == 0 || file_bytes == 0 || pin > files) return usage(argv[0]);

  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.cache_tier = true;
  cfg.cache = cc;

  const cache_run_result r =
      run_cache_experiment(cfg, wl, files, file_bytes, pin);
  const block_cache_stats& s = r.cache;

  if (json) {
    print_json(wl, cc, files, file_bytes, pin, r);
  } else {
    std::printf("cache_stats: %s, %s/%s, capacity %llu B, %zu files x %llu "
                "B, %zu pinned\n\n",
                to_string(wl), to_string(cc.policy),
                to_string(cc.write_mode),
                static_cast<unsigned long long>(cc.capacity_bytes), files,
                static_cast<unsigned long long>(file_bytes), pin);
    std::printf("traffic: %llu B total (TUE %.3f), %llu B rehydrate, "
                "%llu commits\n",
                static_cast<unsigned long long>(r.total_traffic), r.tue,
                static_cast<unsigned long long>(r.rehydrate_traffic),
                static_cast<unsigned long long>(r.commits));
    std::printf("blocks: %llu hits / %llu misses (hit ratio %.4f), "
                "%llu inserted, %llu evicted, %llu stalls\n",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses), r.hit_ratio,
                static_cast<unsigned long long>(s.insertions),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.eviction_stalls));
    std::printf("rehydration: %llu blocks, %llu B\n",
                static_cast<unsigned long long>(s.rehydrated_blocks),
                static_cast<unsigned long long>(s.rehydrated_bytes));
    std::printf("dirty queue: %llu marked, %llu coalesced, %llu flushes, "
                "%llu plan fallbacks\n",
                static_cast<unsigned long long>(s.dirty_marked),
                static_cast<unsigned long long>(s.dirty_coalesced),
                static_cast<unsigned long long>(s.flushes),
                static_cast<unsigned long long>(s.plan_fallbacks));
    std::printf("gauges: %llu resident blocks (%llu B), %llu pinned paths, "
                "%llu tracked paths\n",
                static_cast<unsigned long long>(r.resident_blocks),
                static_cast<unsigned long long>(r.resident_bytes),
                static_cast<unsigned long long>(r.pinned_paths),
                static_cast<unsigned long long>(r.tracked_paths));
  }

  // Smoke-test teeth: the replay must commit, and a cold-start run that
  // never rehydrated means the miss-driven fetch path is disconnected.
  if (r.commits == 0) return 1;
  if (wl == cache_workload::cold_start && s.rehydrated_blocks == 0) return 1;
  return 0;
}
