// transfer_stats: run the serialized create+rewrite transfer workload under
// a chosen fault intensity and scheduler configuration, then dump what the
// fault-adaptive parallel transfer scheduler actually did — per-connection
// RTT/loss estimates, the chosen (K, R, hedge timeout), hedge fire/win
// counts, and FEC reconstruction events. The observability companion to
// bench/transfer_frontier_report (DESIGN.md, "Parallel transfer &
// redundancy"). Exits nonzero if any transaction failed to complete.
//
// Usage: transfer_stats [--intensity F] [--files N] [--size BYTES]
//                       [--chunk BYTES] [--pin KxR] [--seed N] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"

using namespace cloudsync;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--intensity F] [--files N] [--size BYTES]\n"
               "          [--chunk BYTES] [--pin KxR] [--seed N] [--json]\n"
               "  --intensity F   fault_plan::degraded intensity (default 0.5)\n"
               "  --pin KxR       pin the lattice point, e.g. --pin 4x2\n"
               "                  (default: adaptive controller)\n",
               argv0);
  return 2;
}

void print_connections(const std::vector<connection_stats>& conns) {
  for (std::size_t i = 0; i < conns.size(); ++i) {
    const connection_stats& cs = conns[i];
    std::printf("  c%zu: dispatches=%llu faults=%llu loss=%.3f rtt=%s\n", i,
                static_cast<unsigned long long>(cs.dispatches),
                static_cast<unsigned long long>(cs.faults),
                cs.loss_estimate(), cs.rtt_estimate().str().c_str());
  }
}

void print_json(const experiment_config& cfg, std::size_t files,
                std::uint64_t file_bytes, const transfer_run_result& r) {
  std::printf("{\n");
  std::printf("  \"intensity\": %g,\n",
              cfg.faults.outages_per_hour /
                  fault_plan::degraded(1.0).outages_per_hour);
  std::printf("  \"files\": %zu,\n", files);
  std::printf("  \"file_bytes\": %llu,\n",
              static_cast<unsigned long long>(file_bytes));
  std::printf("  \"chunk_bytes\": %zu,\n", cfg.recovery.chunk_bytes);
  std::printf("  \"pinned\": %s,\n", cfg.transfer.pinned ? "true" : "false");
  std::printf("  \"decision\": {\"connections\": %d, \"parity\": %d, "
              "\"hedge_timeout_sec\": %g},\n",
              r.sched.last_connections, r.sched.last_parity,
              r.sched.last_hedge_timeout.sec());
  std::printf("  \"stripes\": %llu,\n",
              static_cast<unsigned long long>(r.sched.stripes));
  std::printf("  \"data_shards\": %llu,\n",
              static_cast<unsigned long long>(r.sched.data_shards));
  std::printf("  \"parity_shards\": %llu,\n",
              static_cast<unsigned long long>(r.sched.parity_shards));
  std::printf("  \"shard_faults\": %llu,\n",
              static_cast<unsigned long long>(r.sched.shard_faults));
  std::printf("  \"hedges_fired\": %llu,\n",
              static_cast<unsigned long long>(r.sched.hedges_fired));
  std::printf("  \"hedges_won\": %llu,\n",
              static_cast<unsigned long long>(r.sched.hedges_won));
  std::printf("  \"hedges_cancelled\": %llu,\n",
              static_cast<unsigned long long>(r.sched.hedges_cancelled));
  std::printf("  \"reconstructions\": %llu,\n",
              static_cast<unsigned long long>(r.sched.reconstructions));
  std::printf("  \"recovery_rounds\": %llu,\n",
              static_cast<unsigned long long>(r.sched.recovery_rounds));
  std::printf("  \"payload_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.payload_traffic));
  std::printf("  \"redundancy_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.redundancy_traffic));
  std::printf("  \"retry_traffic\": %llu,\n",
              static_cast<unsigned long long>(r.retry_traffic));
  std::printf("  \"tue\": %g,\n", r.tue);
  std::printf("  \"gave_up\": %llu,\n",
              static_cast<unsigned long long>(r.requeues));
  std::printf("  \"connections\": [");
  for (std::size_t i = 0; i < r.per_connection.size(); ++i) {
    const connection_stats& cs = r.per_connection[i];
    std::printf("%s\n    {\"conn\": %zu, \"dispatches\": %llu, "
                "\"faults\": %llu, \"loss\": %g, \"rtt_sec\": %g}",
                i ? "," : "", i,
                static_cast<unsigned long long>(cs.dispatches),
                static_cast<unsigned long long>(cs.faults),
                cs.loss_estimate(), cs.rtt_estimate().sec());
  }
  std::printf("\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  double intensity = 0.5;
  std::size_t files = 6;
  std::uint64_t file_bytes = 96 * KiB;
  std::size_t chunk_bytes = 8 * KiB;
  std::uint64_t seed = 1234;
  int pin_k = 0, pin_r = 0;
  bool pinned = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--intensity") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      intensity = std::atof(v);
    } else if (std::strcmp(a, "--files") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      files = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--size") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      file_bytes = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--chunk") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      chunk_bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (std::strcmp(a, "--seed") == 0) {
      const char* v = next();
      if (!v) return usage(argv[0]);
      seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--pin") == 0) {
      const char* v = next();
      if (!v || std::sscanf(v, "%dx%d", &pin_k, &pin_r) != 2 || pin_k < 1 ||
          pin_r < 0) {
        return usage(argv[0]);
      }
      pinned = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (files == 0 || file_bytes == 0 || chunk_bytes == 0) {
    return usage(argv[0]);
  }

  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  cfg.link = link_config::beijing();
  cfg.seed = seed;
  cfg.journal = true;
  cfg.recovery.chunk_bytes = chunk_bytes;
  if (intensity > 0) cfg.faults = fault_plan::degraded(intensity);
  cfg.transfer.enabled = true;
  if (pinned) {
    cfg.transfer.pinned = true;
    cfg.transfer.pin = {pin_k, pin_r, sim_time::from_sec(2)};
  }

  const transfer_run_result r =
      run_transfer_experiment(cfg, files, file_bytes);

  if (json) {
    print_json(cfg, files, file_bytes, r);
  } else {
    std::printf("transfer_stats: intensity %.2f, %zu files x %llu B, "
                "%zu B chunks, %s\n\n",
                intensity, files,
                static_cast<unsigned long long>(file_bytes), chunk_bytes,
                pinned ? "pinned" : "adaptive");
    std::printf("decision: K=%d R=%d hedge=%s\n", r.sched.last_connections,
                r.sched.last_parity, r.sched.last_hedge_timeout.str().c_str());
    std::printf("observed: %llu ok / %llu faulted, %llu decisions "
                "(%llu striped)\n",
                static_cast<unsigned long long>(r.sched.observed_success),
                static_cast<unsigned long long>(r.sched.observed_faults),
                static_cast<unsigned long long>(r.sched.decisions),
                static_cast<unsigned long long>(r.sched.escalations));
    std::printf("stripes: %llu (%llu data + %llu parity shards, %llu shard "
                "faults)\n",
                static_cast<unsigned long long>(r.sched.stripes),
                static_cast<unsigned long long>(r.sched.data_shards),
                static_cast<unsigned long long>(r.sched.parity_shards),
                static_cast<unsigned long long>(r.sched.shard_faults));
    std::printf("hedges: %llu fired, %llu won, %llu cancelled\n",
                static_cast<unsigned long long>(r.sched.hedges_fired),
                static_cast<unsigned long long>(r.sched.hedges_won),
                static_cast<unsigned long long>(r.sched.hedges_cancelled));
    std::printf("reconstructions: %llu, recovery rounds: %llu\n",
                static_cast<unsigned long long>(r.sched.reconstructions),
                static_cast<unsigned long long>(r.sched.recovery_rounds));
    std::printf("traffic: payload %llu B, redundancy %llu B, retry %llu B "
                "(TUE %.3f)\n",
                static_cast<unsigned long long>(r.payload_traffic),
                static_cast<unsigned long long>(r.redundancy_traffic),
                static_cast<unsigned long long>(r.retry_traffic), r.tue);
    std::printf("per-connection estimates:\n");
    print_connections(r.per_connection);
  }

  // A transaction that exhausted every recovery avenue re-queued; report it
  // as failure so smoke tests catch regressions in convergence.
  return r.requeues == 0 ? 0 : 1;
}
