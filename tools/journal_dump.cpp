// journal_dump — pretty-print a sync journal through a crash and recovery.
//
// Runs a single-client scenario with the write-ahead journal and a forced
// client crash at a chosen kill site, then prints the journal three times:
// before the crash fires (transactions committing normally), at the instant
// of death (the state a restarted client actually finds on disk), and after
// the recovery pass reconverged. With --trace, every journal transition is
// logged as it happens.
//
//   journal_dump [--site after_plan|mid_chunk|before_commit] [--skip N]
//                [--no-resume] [--size n[K|M]] [--chunk n[K|M]] [--trace]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr, "%s",
               "usage: journal_dump [options]\n"
               "\n"
               "options:\n"
               "  --site after_plan|mid_chunk|before_commit   kill site "
               "(default mid_chunk)\n"
               "  --skip <n>            skip the first n opportunities at the "
               "site (default: 2 for mid_chunk, else 0)\n"
               "  --no-resume           discard in-flight sessions on "
               "recovery instead of resuming\n"
               "  --size <n[K|M]>       file size (default 256K)\n"
               "  --chunk <n[K|M]>      resumable-upload chunk size (default "
               "64K)\n"
               "  --trace               log every journal transition\n");
  std::exit(2);
}

std::uint64_t parse_size(const std::string& s) {
  if (s.empty()) usage("empty size");
  char suffix = s.back();
  std::uint64_t mult = 1;
  std::string digits = s;
  if (suffix == 'K' || suffix == 'k') mult = KiB;
  if (suffix == 'M' || suffix == 'm') mult = MiB;
  if (mult != 1) digits = s.substr(0, s.size() - 1);
  try {
    return std::stoull(digits) * mult;
  } catch (const std::exception&) {
    usage("bad size value");
  }
}

struct options {
  crash_site site = crash_site::mid_chunk;
  int skip = -1;  ///< default depends on the site (see parse)
  bool resume = true;
  std::uint64_t size = 256 * KiB;
  std::size_t chunk_bytes = 64 * KiB;
  bool trace = false;
};

options parse(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--site") {
      const std::string s = value();
      if (s == "after_plan") {
        opt.site = crash_site::after_plan;
      } else if (s == "mid_chunk") {
        opt.site = crash_site::mid_chunk;
      } else if (s == "before_commit") {
        opt.site = crash_site::before_commit;
      } else {
        usage("unknown kill site");
      }
    } else if (arg == "--skip") {
      opt.skip = std::atoi(value().c_str());
    } else if (arg == "--no-resume") {
      opt.resume = false;
    } else if (arg == "--size") {
      opt.size = parse_size(value());
    } else if (arg == "--chunk") {
      opt.chunk_bytes = parse_size(value());
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option");
    }
  }
  if (opt.skip < 0) {
    // mid_chunk offers one opportunity per chunk — skip past the first two
    // so the dump shows partial progress; the other sites offer exactly one
    // per transaction.
    opt.skip = opt.site == crash_site::mid_chunk ? 2 : 0;
  }
  return opt;
}

/// The durable half of a client machine, wired by hand so the tool can catch
/// the crash itself and dump the journal at the exact instant of death.
struct rig {
  sim_clock clock;
  cloud cl{cloud_config{}};
  memfs fs;
  sync_journal journal;
  fault_injector faults{fault_plan::none()};
  std::unique_ptr<sync_client> client;
  device_id device = 0;

  explicit rig(const options& opt) {
    cl.set_fault_injector(&faults);
    journal.set_trace(opt.trace);
    build(opt);
  }

  void build(const options& opt) {
    sync_options so;
    so.profile = dropbox();
    so.method = access_method::pc_client;
    so.faults = &faults;
    so.journal = &journal;
    so.recovery.resume = opt.resume;
    so.recovery.chunk_bytes = opt.chunk_bytes;
    so.reuse_device = device;
    client = std::make_unique<sync_client>(clock, fs, cl, 0, std::move(so));
    device = client->device();
  }

  /// Drain the event queue; returns false if a crash unwound it.
  bool settle() {
    for (int guard = 0; guard < 100; ++guard) {
      try {
        clock.run_all();
      } catch (const client_crash&) {
        return false;
      }
      clock.advance_to(std::max(clock.now(), client->busy_until()));
      if (!client->has_pending() && clock.pending() == 0) return true;
    }
    return true;
  }
};

void print_journal(const rig& r, const char* heading) {
  std::printf("=== %s (t=%.1fs) ===\n%s\n", heading, r.clock.now().sec(),
              r.journal.dump().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse(argc, argv);

  rig r(opt);

  // A committed transaction first, so the dump shows the per-path commit
  // counters next to the crashed transaction's record.
  rng warmup_rng(1);
  r.fs.create("demo/warmup.bin", make_compressed_file(warmup_rng, 32 * KiB),
              r.clock.now());
  if (!r.settle()) {
    std::fprintf(stderr, "unexpected crash during warmup\n");
    return 1;
  }
  print_journal(r, "after a clean commit");

  r.faults.force_crash(opt.site, opt.skip);
  rng content_rng(2);
  r.fs.create("demo/victim.bin", make_compressed_file(content_rng, opt.size),
              r.clock.now());
  if (r.settle()) {
    std::fprintf(stderr,
                 "the forced crash never fired — site %s needs more "
                 "opportunities (try --skip 0 or a larger --size)\n",
                 to_string(opt.site));
    return 1;
  }
  std::printf("client crashed at kill site '%s'\n\n", to_string(opt.site));
  r.client.reset();  // the process is gone; journal + fs survive
  print_journal(r, "what the restarted client finds");

  r.build(opt);
  r.client->recover();
  if (!r.settle()) {
    std::fprintf(stderr, "unexpected second crash during recovery\n");
    return 1;
  }
  print_journal(r, "after recovery");

  std::printf("recovery: resumed=%llu restarted-from-scratch=%llu\n",
              (unsigned long long)r.client->resume_count(),
              (unsigned long long)r.client->recovery_restart_count());

  invariant_report report;
  check_convergence(r.fs, r.cl, 0, report);
  check_journal_quiescent(r.journal, r.cl, report);
  check_no_duplicate_commits(r.journal, r.cl, 0, report);
  std::printf("invariants: %s\n", report.summary().c_str());

  if (opt.trace) {
    std::printf("\n=== journal transition trace ===\n");
    for (const std::string& line : r.journal.trace()) {
      std::printf("%s\n", line.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
