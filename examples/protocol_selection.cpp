// Protocol selection: run the same workload with each sync protocol pinned,
// then let the adaptive selector pick per update from the analytical cost
// model (DESIGN.md, "Protocol selection & cost model"). The adaptive run
// should match or beat every pinned protocol — it full-files fresh creates
// where a pinned delta/dedup protocol would pay fingerprint rounds for
// nothing, and deltas the edits where full-file would reship the file.
//
//   $ ./protocol_selection
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

// Every mechanism eligible so each protocol is a real contender: incremental
// sync on, content-defined dedup, 4 KiB delta blocks.
service_profile lab_profile() {
  service_profile s = dropbox();
  s.name = "lab";
  s.delta_chunk_size = 4 * KiB;
  s.dedup = {dedup_granularity::content_defined, 4 * MiB,
             /*cross_user=*/false, cdc_params{}};
  return s;
}

protocol_run_result run(protocol_mode mode, protocol_id forced) {
  experiment_config cfg{lab_profile()};
  cfg.method = access_method::pc_client;
  cfg.protocol.mode = mode;
  cfg.protocol.forced = forced;
  return run_protocol_experiment(cfg, protocol_workload::small_edits,
                                 /*files=*/6, /*file_bytes=*/64 * KiB);
}

}  // namespace

int main() {
  // 1. Pin each protocol in turn on a create-then-edit workload: 6 text
  //    files of 64 KiB, each modified twice after the initial sync.
  std::printf("small_edits workload, 6 files x 64 KiB, 2 edit rounds\n\n");
  const protocol_id pins[] = {protocol_id::full_file, protocol_id::rsync,
                              protocol_id::cdc_dedup};
  std::uint64_t best_pinned = ~0ull;
  for (const protocol_id id : pins) {
    const protocol_run_result r = run(protocol_mode::forced, id);
    std::printf("  forced %-10s %10s total  (TUE %.3f)\n", to_string(id),
                format_bytes(static_cast<double>(r.total_traffic)).c_str(),
                r.tue);
    if (r.total_traffic < best_pinned) best_pinned = r.total_traffic;
  }

  // 2. Adaptive: the selector predicts each protocol's wire cost from a
  //    one-pass scan of the update and picks the cheapest, then calibrates
  //    its model against the bytes actually metered.
  const protocol_run_result ad = run(protocol_mode::adaptive, {});
  std::printf("  adaptive          %10s total  (TUE %.3f)\n\n",
              format_bytes(static_cast<double>(ad.total_traffic)).c_str(),
              ad.tue);

  std::printf("adaptive picks:\n");
  for (std::size_t p = 0; p < protocol_registry::instance().size(); ++p) {
    std::printf("  %-10s %llu updates\n",
                to_string(static_cast<protocol_id>(p)),
                static_cast<unsigned long long>(ad.selector.picks[p]));
  }
  std::printf(
      "\ncalibration: %llu observations, median prediction error %.1f%%\n",
      static_cast<unsigned long long>(ad.selector.observations),
      100.0 * ad.selector.median_abs_rel_error());
  std::printf("adaptive vs best pinned: %s vs %s\n",
              format_bytes(static_cast<double>(ad.total_traffic)).c_str(),
              format_bytes(static_cast<double>(best_pinned)).c_str());

  // A pinned protocol should never beat the selector here.
  return ad.total_traffic <= best_pinned ? 0 : 1;
}
