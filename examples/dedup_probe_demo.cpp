// Black-box probing demo: run the paper's Algorithm 1 against a service
// whose dedup policy you pretend not to know, and watch it infer the
// granularity from traffic alone.
//
//   $ ./dedup_probe_demo
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

int main() {
  // A "mystery" service: block-level dedup at a non-default 2 MB block.
  service_profile mystery = dropbox();
  mystery.name = "MysteryCloud";
  mystery.dedup.block_size = 2 * MiB;

  std::printf("probing MysteryCloud (actual policy hidden from the probe)\n\n");

  experiment_config cfg{mystery};
  const dedup_probe_result res = probe_dedup_granularity(cfg, false);

  for (const std::string& line : res.log) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nverdict: %s dedup", res.granularity_string().c_str());
  if (res.block_dedup) {
    std::printf(" at %s blocks", format_bytes(
        static_cast<double>(res.block_size)).c_str());
  }
  std::printf(" (inferred in %d uploads)\n", res.upload_rounds);
  std::printf("ground truth: fixed 2 MB blocks, same-account scope\n");
  return 0;
}
