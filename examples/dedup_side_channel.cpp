// Why most providers avoid cross-user deduplication (paper §5.2: "perhaps
// for privacy and security concerns", citing Harnik et al.'s side-channel
// work): with cross-user dedup, the *traffic* of an upload reveals whether
// ANY other user already stored that exact content — a confirmation oracle.
//
//   $ ./dedup_side_channel
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

std::uint64_t upload_cost(experiment_env& env, station& st,
                          const std::string& name, const byte_buffer& data) {
  const auto snap = st.client->meter().snap();
  st.fs.create(name, data, env.clock().now());
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

}  // namespace

int main() {
  // Ubuntu One: full-file dedup across users (Table 9).
  experiment_config cfg{ubuntu_one()};
  experiment_env env(cfg);
  station& victim = env.primary();
  station& attacker = env.add_station(1);

  // The victim stores a sensitive document.
  rng doc_rng(2024);
  const byte_buffer leaked_memo = random_bytes(doc_rng, 600 * KiB);
  upload_cost(env, victim, "secrets/memo.pdf", leaked_memo);

  // The attacker has two candidate documents and wants to know which one
  // the victim possesses. They upload both and compare their own traffic.
  rng other_rng(999);
  const byte_buffer innocent = random_bytes(other_rng, 600 * KiB);

  const std::uint64_t cost_guess_right =
      upload_cost(env, attacker, "probe/a.pdf", leaked_memo);
  const std::uint64_t cost_guess_wrong =
      upload_cost(env, attacker, "probe/b.pdf", innocent);

  std::printf("attacker uploads candidate A (the memo):   %s\n",
              format_bytes(static_cast<double>(cost_guess_right)).c_str());
  std::printf("attacker uploads candidate B (innocent):   %s\n",
              format_bytes(static_cast<double>(cost_guess_wrong)).c_str());
  std::printf(
      "\n-> candidate A cost %.1fx less traffic: someone on this service "
      "already has it.\n",
      static_cast<double>(cost_guess_wrong) /
          static_cast<double>(cost_guess_right));

  // Same attack against Dropbox (dedup scoped to the account) fails.
  experiment_config db_cfg{dropbox()};
  experiment_env db_env(db_cfg);
  station& db_victim = db_env.primary();
  station& db_attacker = db_env.add_station(1);
  upload_cost(db_env, db_victim, "secrets/memo.pdf", leaked_memo);
  const std::uint64_t db_cost =
      upload_cost(db_env, db_attacker, "probe/a.pdf", leaked_memo);
  std::printf(
      "\non Dropbox (same-account dedup only) the same probe costs %s — "
      "no signal.\n",
      format_bytes(static_cast<double>(db_cost)).c_str());
  std::printf(
      "This is the privacy cost that makes providers scope dedup per "
      "account, trading away the 18.8%% cross-user duplicate savings.\n");
  return 0;
}
