// Backup & restore scenario: "fake deletion" (paper §4.2) in action. Deleting
// a synced file costs almost no traffic because the cloud only flips an
// attribute — which is also exactly what makes restore possible.
//
//   $ ./backup_restore
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

int main() {
  experiment_config cfg{google_drive()};
  experiment_env env(cfg);
  station& pc = env.primary();
  cloud& cl = env.the_cloud();

  // Work on a document through several versions.
  pc.fs.create("thesis.tex", to_buffer("v1: introduction"), env.clock().now());
  env.settle();
  pc.fs.write("thesis.tex", to_buffer("v2: introduction + evaluation"),
              env.clock().now());
  env.settle();
  pc.fs.write("thesis.tex",
              to_buffer("v3: introduction + evaluation + conclusion"),
              env.clock().now());
  env.settle();

  const file_manifest* man = cl.manifest(0, "thesis.tex");
  std::printf("synced 3 versions; cloud is at v%llu, object '%s'\n",
              static_cast<unsigned long long>(man->version),
              man->object_key.c_str());
  std::printf("version history retained in the object store: %zu copies\n",
              [&] {
                std::size_t total = 0;
                for (std::uint64_t v = 1; v <= man->version; ++v) {
                  const std::string key =
                      "u0/thesis.tex/v" + std::to_string(v);
                  total += cl.store().version_count(key);
                }
                return total;
              }());

  // Accidental deletion.
  const auto before_delete = pc.client->meter().snap();
  pc.fs.remove("thesis.tex", env.clock().now());
  env.settle();
  std::printf(
      "\ndeleted locally -> cloud marks it deleted; traffic: %s "
      "(fake deletion, §4.2)\n",
      format_bytes(static_cast<double>(
                       pc.client->meter().total_since(before_delete)))
          .c_str());
  std::printf("cloud live view: %s\n",
              cl.file_content(0, "thesis.tex") ? "still present (bug!)"
                                               : "gone (tombstoned)");

  // Restore: the content never left the object store. Undelete the backing
  // object and re-download it.
  const std::string latest_key = man->object_key;
  cl.store().undelete(latest_key);
  const auto restored = cl.store().get(latest_key);
  pc.fs.create("thesis_restored.tex",
               restored->retain(),
               env.clock().now());
  env.settle();
  std::printf("\nrestored from retained version: \"%s\"\n",
              to_string(*restored).c_str());

  // Roll back to an earlier version, too.
  const auto v1 = cl.store().get_version("u0/thesis.tex/v1", 0);
  if (v1) {
    std::printf("rollback candidate (v1): \"%s\"\n", to_string(*v1).c_str());
  }
  return 0;
}
