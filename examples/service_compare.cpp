// Service comparison: runs a small mixed workload against all six profiles
// and prints a buying-guide style summary — the paper's stated goal of
// "helping users pick appropriate services".
//
//   $ ./service_compare
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

struct scores {
  double create_tue;    // many small files
  double modify_tue;    // edit a large file
  double frequent_tue;  // steady small appends
  std::uint64_t text_upload;  // compressible content
};

scores evaluate(const service_profile& s) {
  scores sc{};
  experiment_config cfg{s};

  sc.create_tue = tue(measure_batch_creation_traffic(cfg, 50, 2 * KiB),
                      50 * 2 * KiB);
  sc.modify_tue =
      tue(measure_modification_traffic(cfg, 4 * MiB), 1);  // per byte
  sc.frequent_tue = run_append_experiment(cfg, 4.0, 4.0, 512 * KiB).tue;
  sc.text_upload = measure_text_upload_traffic(cfg, 4 * MiB);
  return sc;
}

}  // namespace

int main() {
  std::printf("service comparison on four workloads (PC client @ MN)\n\n");

  text_table table;
  table.header({"Service", "50 small creates (TUE)", "1-byte edit of 4 MB",
                "4 KB/4 s appends (TUE)", "4 MB text upload"});
  for (const service_profile& s : all_services()) {
    const scores sc = evaluate(s);
    table.row({s.name, strfmt("%.1f", sc.create_tue),
               format_bytes(sc.modify_tue),  // traffic per 1-byte update
               strfmt("%.1f", sc.frequent_tue),
               format_bytes(static_cast<double>(sc.text_upload))});
  }
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Guidance (mirrors the paper's findings):\n"
      "  - many small files      -> prefer a BDS service (Dropbox, Ubuntu One)\n"
      "  - frequently edited data -> prefer IDS (Dropbox, SugarSync PC)\n"
      "  - compressible data      -> prefer compressing uploads (Dropbox, "
      "Ubuntu One)\n"
      "  - media libraries        -> full-file services are fine; files are "
      "rarely modified\n");
  return 0;
}
