// Fingerprint an undocumented cloud storage service from traffic alone —
// the paper's methodology (and its stated plan for iCloud Drive) as a
// single API call.
//
//   $ ./service_fingerprint
#include <cstdio>

#include "cloudsync.hpp"
#include "core/service_probe.hpp"

using namespace cloudsync;

int main() {
  // Build a fictional service with a design-choice mix none of the six
  // studied services has: IDS with 32 KB chunks, CDC dedup, UDS-style
  // deferment, moderate upload compression.
  service_profile mystery = box();
  mystery.name = "NimbusSync (unknown)";
  mystery.commit_processing = sim_time::from_msec(250);
  mystery.delta_chunk_size = 32 * KiB;
  mystery.dedup.granularity = dedup_granularity::full_file;
  mystery.dedup.cross_user = false;
  mystery.defer = defer_config::fixed(sim_time::from_sec(8));
  method_profile& pc = mystery.method(access_method::pc_client);
  pc.incremental_sync = true;
  pc.dedup_enabled = true;
  pc.upload_compression_level = 5;
  pc.batched_sync = true;
  pc.bds_batch_overhead_up = 6'000;
  pc.bds_batch_overhead_down = 2'000;
  pc.bds_per_file_bytes = 200;

  std::printf("probing %s (pretend we know nothing about it)...\n\n",
              mystery.name.c_str());

  experiment_config cfg{mystery};
  const probed_characteristics p = probe_service(cfg);
  std::printf("%s\n", p.summary().c_str());

  std::printf(
      "ground truth: IDS 32 KB, full-file same-user dedup, fixed 8 s defer, "
      "level-5 upload compression, BDS.\n");
  return 0;
}
