// Quickstart: wire up a simulated cloud + sync client, sync a file, and read
// the traffic meter — the minimal end-to-end use of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

int main() {
  // 1. Pick a service profile (design choices calibrated from the paper)
  //    and an experiment environment: virtual clock, local sync folder,
  //    cloud backend, and a sync client on a Minnesota-class link.
  experiment_config cfg{dropbox()};
  cfg.method = access_method::pc_client;
  experiment_env env(cfg);
  station& machine = env.primary();

  // 2. Drop a 1 MB file into the sync folder.
  const byte_buffer photo = make_compressed_file(env.random(), 1 * MiB);
  machine.fs.create("photos/holiday.jpg", photo, env.clock().now());

  // 3. Let the simulation run until the sync completes.
  env.settle();

  // 4. Inspect what happened on the wire.
  std::printf("synced 1 MB file with %s in %s of simulated time\n",
              cfg.profile.name.c_str(), env.clock().now().str().c_str());
  std::printf("%s\n", machine.client->meter().summary().c_str());
  std::printf("TUE = %.3f (1.0 would be perfectly efficient)\n",
              tue(machine.client->meter().total(), photo.size()));

  // 5. Modify one byte — Dropbox's PC client delta-syncs, so the traffic is
  //    a ~10 KB chunk plus overhead, not another megabyte.
  const auto before = machine.client->meter().snap();
  modify_random_byte(machine.fs, "photos/holiday.jpg", env.random(),
                     env.clock().now());
  env.settle();
  std::printf("one-byte modification cost %s of sync traffic\n",
              format_bytes(static_cast<double>(
                               machine.client->meter().total_since(before)))
                  .c_str());
  return 0;
}
