// Collaborative-editing scenario (paper §6): a document receives a steady
// stream of small appends — the "frequent modifications" workload that causes
// the traffic overuse problem. Compares the six services, then shows what
// the paper's ASD proposal would change.
//
//   $ ./collab_editing
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

void run(const service_profile& profile, const char* label) {
  experiment_config cfg{profile};
  // An editor writing ~2 KB every 5 seconds for ~40 minutes.
  const auto res = run_append_experiment(cfg, 2.0, 5.0, 1 * MiB);
  std::printf("  %-28s traffic %-10s TUE %-8.1f commits %llu\n", label,
              format_bytes(static_cast<double>(res.total_traffic)).c_str(),
              res.tue, static_cast<unsigned long long>(res.commits));
}

}  // namespace

int main() {
  std::printf("collaborative editing: 2 KB appended every 5 s until 1 MB\n\n");

  std::printf("as shipped:\n");
  for (const service_profile& s : all_services()) {
    run(s, s.name.c_str());
  }

  std::printf("\nwith the paper's adaptive sync defer (ASD) retrofitted:\n");
  for (const service_profile& s : all_services()) {
    const service_profile asd = with_defer(s, defer_config::asd());
    run(asd, (s.name + " + ASD").c_str());
  }

  std::printf(
      "\nReading: without deferment, every append pays the full per-sync "
      "overhead (and full-file services re-upload the whole growing "
      "document). ASD batches the stream for every service, pushing TUE "
      "toward 1.\n");
  return 0;
}
