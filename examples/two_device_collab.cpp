// Two devices, one account: the full §6 collaboration story — uploads,
// change notifications, periodic polling, download materialisation, and a
// conflicted copy when both sides edit the same file.
//
//   $ ./two_device_collab
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

int main() {
  experiment_config cfg{dropbox()};
  experiment_env env(cfg);
  station& laptop = env.primary();
  station& tablet = env.add_station(0);  // same account, second device

  // Both devices keep themselves fresh by polling every 30 s for 20 minutes.
  tablet.client->enable_periodic_poll(sim_time::from_sec(30),
                                      sim_time::from_sec(1200));
  laptop.client->enable_periodic_poll(sim_time::from_sec(30),
                                      sim_time::from_sec(1200));

  // A working session on the laptop.
  env.clock().schedule_at(sim_time::from_sec(10), [&] {
    laptop.fs.create("draft.md", to_buffer("# Draft\n\nIntro."),
                     env.clock().now());
  });
  env.clock().schedule_at(sim_time::from_sec(120), [&] {
    laptop.fs.append("draft.md", as_bytes("\nMore laptop text."),
                     env.clock().now());
  });
  // Meanwhile the tablet edits the same file between polls…
  env.clock().schedule_at(sim_time::from_sec(130), [&] {
    if (tablet.fs.exists("draft.md")) {
      tablet.fs.append("draft.md", as_bytes("\nTablet note."),
                       env.clock().now());
    }
  });
  env.settle();

  std::printf("after the session:\n");
  const auto cloud_doc = env.the_cloud().file_content(0, "draft.md");
  std::printf("  cloud draft.md : %llu bytes\n",
              static_cast<unsigned long long>(cloud_doc->size()));
  std::printf("  laptop draft.md: %llu bytes (converged: %s)\n",
              static_cast<unsigned long long>(laptop.fs.size("draft.md")),
              to_string(laptop.fs.read("draft.md")) ==
                      to_string(*cloud_doc)
                  ? "yes"
                  : "no");
  std::printf("  tablet draft.md: %llu bytes (converged: %s)\n",
              static_cast<unsigned long long>(tablet.fs.size("draft.md")),
              to_string(tablet.fs.read("draft.md")) ==
                      to_string(*cloud_doc)
                  ? "yes"
                  : "no");
  std::printf("  conflicted copies: laptop %llu, tablet %llu\n",
              static_cast<unsigned long long>(
                  laptop.client->conflict_count()),
              static_cast<unsigned long long>(
                  tablet.client->conflict_count()));
  std::printf("\ntraffic: laptop %s (up %s), tablet %s (down %s)\n",
              format_bytes(static_cast<double>(
                               laptop.client->meter().total()))
                  .c_str(),
              format_bytes(static_cast<double>(
                               laptop.client->meter().total(direction::up)))
                  .c_str(),
              format_bytes(static_cast<double>(
                               tablet.client->meter().total()))
                  .c_str(),
              format_bytes(static_cast<double>(
                               tablet.client->meter().total(direction::down)))
                  .c_str());
  std::printf(
      "\nNote the tablet's polling overhead: every 30 s exchange costs "
      "headers and acks even when nothing changed — exactly the class of "
      "overhead traffic the paper's TUE metric exposes.\n");
  return 0;
}
