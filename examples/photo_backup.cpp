// Photo-backup scenario (paper §4.1 motivation): a user dumps a folder of
// small-to-medium files into the sync folder at once. Shows how batched data
// sync (BDS), dedup, and compression each change the bill, and why mobile
// uploads cost more.
//
//   $ ./photo_backup
#include <cstdio>

#include "cloudsync.hpp"

using namespace cloudsync;

namespace {

struct workload_result {
  std::uint64_t traffic = 0;
  std::uint64_t update = 0;
};

/// 60 x 40 KB "thumbnails" (incompressible), 6 x 2 MB "RAW exports" (mildly
/// compressible), and 10 exact duplicates of earlier thumbnails — a typical
/// camera-roll import.
workload_result import_camera_roll(const service_profile& s,
                                   access_method method) {
  experiment_config cfg{s};
  cfg.method = method;
  experiment_env env(cfg);
  station& st = env.primary();
  const auto snap = st.client->meter().snap();

  std::uint64_t update = 0;
  std::vector<byte_buffer> thumbs;
  for (int i = 0; i < 60; ++i) {
    thumbs.push_back(make_compressed_file(env.random(), 40 * KiB));
    st.fs.create(strfmt("roll/thumb_%02d.jpg", i), thumbs.back(),
                 env.clock().now());
    update += 40 * KiB;
  }
  for (int i = 0; i < 6; ++i) {
    const byte_buffer raw =
        synthetic_payload(env.random(), 2 * MiB, 1.4);  // mildly compressible
    st.fs.create(strfmt("roll/raw_%d.dng", i), raw, env.clock().now());
    update += 2 * MiB;
  }
  for (int i = 0; i < 10; ++i) {
    st.fs.create(strfmt("roll/copy_%d.jpg", i), thumbs[i * 3],
                 env.clock().now());
    update += 40 * KiB;
  }
  env.settle();
  return {experiment_env::traffic_since(st, snap), update};
}

}  // namespace

int main() {
  std::printf(
      "camera-roll import: 60 x 40 KB photos + 6 x 2 MB RAW + 10 duplicates "
      "(~14.9 MB of data)\n\n");

  for (access_method m :
       {access_method::pc_client, access_method::mobile_app}) {
    std::printf("-- via %s --\n", to_string(m));
    text_table table;
    table.header({"Service", "sync traffic", "TUE"});
    for (const service_profile& s : all_services()) {
      const workload_result res = import_camera_roll(s, m);
      table.row({s.name, format_bytes(static_cast<double>(res.traffic)),
                 strfmt("%.2f", tue(res.traffic, res.update))});
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf(
      "Reading: BDS (Dropbox/Ubuntu One) erases the per-photo overhead, "
      "dedup erases the duplicate copies, and compression trims the RAW "
      "exports; services with none of the three pay for all of it — "
      "especially on mobile, where per-event overhead is largest.\n");
  return 0;
}
