// Umbrella header: the public API of the cloudsync library.
//
// cloudsync reproduces "Towards Network-level Efficiency for Cloud Storage
// Services" (IMC 2014): a deterministic simulation framework for studying
// the Traffic Usage Efficiency (TUE) of cloud-storage data synchronisation.
//
// Typical usage (see examples/quickstart.cpp):
//
//   cloudsync::experiment_config cfg{cloudsync::dropbox()};
//   auto traffic = cloudsync::measure_creation_traffic(cfg, 1 * cloudsync::MiB);
//   double efficiency = cloudsync::tue(traffic, 1 * cloudsync::MiB);
#pragma once

#include "cache/block_cache.hpp"
#include "cache/eviction_policy.hpp"
#include "chunking/cdc.hpp"
#include "chunking/fixed_chunker.hpp"
#include "chunking/rsync.hpp"
#include "client/access_method.hpp"
#include "client/defer_policy.hpp"
#include "client/hardware.hpp"
#include "client/protocol_cost.hpp"
#include "client/service_profile.hpp"
#include "client/sync_protocol.hpp"
#include "client/sync_engine.hpp"
#include "client/sync_journal.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "core/cost_model.hpp"
#include "core/dedup_probe.hpp"
#include "core/experiment.hpp"
#include "core/fleet.hpp"
#include "core/invariants.hpp"
#include "core/parallel_runner.hpp"
#include "core/service_probe.hpp"
#include "core/tue.hpp"
#include "dedup/dedup_engine.hpp"
#include "fs/file_ops.hpp"
#include "fs/memfs.hpp"
#include "fs/watcher.hpp"
#include "net/fault_injector.hpp"
#include "net/link.hpp"
#include "net/sim_clock.hpp"
#include "net/tcp_model.hpp"
#include "net/traffic_meter.hpp"
#include "storage/chunk_backend.hpp"
#include "storage/cloud.hpp"
#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "trace/serialize.hpp"
#include "util/content_cache.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"
