#include "dedup/dedup_engine.hpp"

#include <algorithm>

#include "pipeline/byte_pipeline.hpp"

namespace cloudsync {

fingerprint_memo& global_fingerprint_cache() {
  static fingerprint_memo memo;
  return memo;
}

fingerprint dedup_engine::fp(byte_view data) const {
  if (memo_ == nullptr) return fingerprint_of(data);
  return memo_->get_or_compute(data, /*salt=*/0,
                               [&] { return fingerprint_of(data); });
}

std::vector<chunk_ref> dedup_engine::chunk_layout(byte_view data) const {
  return policy_.granularity == dedup_granularity::content_defined
             ? content_defined_chunks(data, policy_.cdc)
             : fixed_chunks(data, policy_.block_size);
}

fingerprint dedup_engine::fp_range(const content_ref& data, std::size_t off,
                                   std::size_t len) const {
  const auto compute = [&] {
    sha256_hasher h;
    data.walk_range(off, len, [&](byte_view v) { h.update(v); });
    return h.finish();
  };
  if (memo_ == nullptr) return compute();
  // hash64_range matches content_hash64 of the flat bytes, so rope and flat
  // paths share memo entries.
  return memo_->get_or_compute_keyed(data.hash64_range(off, len), len,
                                     /*salt=*/0, compute);
}

std::vector<chunk_ref> dedup_engine::chunk_layout(
    const content_ref& data) const {
  if (policy_.granularity == dedup_granularity::content_defined) {
    content_request req;
    req.cdc = policy_.cdc;
    return analyze_content(data, req).cdc_chunks;
  }
  // Fixed layout depends only on the size — same blocks as fixed_chunks().
  std::vector<chunk_ref> out;
  out.reserve(data.size() / policy_.block_size + 1);
  for (std::size_t off = 0; off < data.size(); off += policy_.block_size) {
    out.push_back({off, std::min(policy_.block_size, data.size() - off)});
  }
  return out;
}

std::uint64_t expected_fingerprint_count(const dedup_policy& policy,
                                         std::uint64_t size) {
  if (size == 0) return 0;
  switch (policy.granularity) {
    case dedup_granularity::none:
      return 0;
    case dedup_granularity::full_file:
      return 1;
    case dedup_granularity::fixed_block: {
      const std::uint64_t bs = std::max<std::uint64_t>(policy.block_size, 1);
      return (size + bs - 1) / bs;
    }
    case dedup_granularity::content_defined: {
      // Cut decisions start after the min-size skip and fire geometrically
      // with mean avg_size, so the expected chunk length is min + avg,
      // bounded by the hard max.
      const cdc_params& p = policy.cdc;
      const std::uint64_t expect = std::min<std::uint64_t>(
          p.max_size, static_cast<std::uint64_t>(p.min_size) + p.avg_size);
      return std::max<std::uint64_t>(1, size / std::max<std::uint64_t>(
                                               expect, 1));
    }
  }
  return 0;
}

dedup_result dedup_engine::analyze(user_id user, byte_view data) const {
  dedup_result res;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      res.new_bytes = data.size();
      if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      return res;

    case dedup_granularity::full_file: {
      res.fingerprints_sent = 1;
      if (!data.empty() &&
          index_.contains(scope_for(user), fp(data))) {
        res.duplicate_bytes = data.size();
        res.whole_file_duplicate = true;
      } else {
        res.new_bytes = data.size();
        if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      }
      return res;
    }

    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block: {
      const auto chunks = chunk_layout(data);
      res.fingerprints_sent = chunks.size();
      if (memo_ == nullptr) {
        // No fingerprint memo: fuse the per-chunk hashing into one walk of
        // the buffer instead of re-entering sha256 per lookup.
        const auto fps = chunk_digests(data, chunks);
        for (std::size_t i = 0; i < chunks.size(); ++i) {
          if (index_.contains(scope_for(user), fps[i])) {
            res.duplicate_bytes += chunks[i].size;
          } else {
            res.new_bytes += chunks[i].size;
            res.new_chunks.push_back(chunks[i]);
          }
        }
      } else {
        for (const chunk_ref& c : chunks) {
          if (index_.contains(scope_for(user), fp(slice(data, c)))) {
            res.duplicate_bytes += c.size;
          } else {
            res.new_bytes += c.size;
            res.new_chunks.push_back(c);
          }
        }
      }
      res.whole_file_duplicate = !data.empty() && res.new_bytes == 0;
      return res;
    }
  }
  return res;
}

void dedup_engine::commit(user_id user, byte_view data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.add(scope_for(user), fp(data));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.add(scope_for(user), fp(slice(data, c)));
      }
      return;
  }
}

dedup_result dedup_engine::analyze(user_id user,
                                   const content_ref& data) const {
  dedup_result res;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      res.new_bytes = data.size();
      if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      return res;

    case dedup_granularity::full_file: {
      res.fingerprints_sent = 1;
      if (!data.empty() &&
          index_.contains(scope_for(user), fp_range(data, 0, data.size()))) {
        res.duplicate_bytes = data.size();
        res.whole_file_duplicate = true;
      } else {
        res.new_bytes = data.size();
        if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      }
      return res;
    }

    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block: {
      const auto chunks = chunk_layout(data);
      res.fingerprints_sent = chunks.size();
      if (memo_ == nullptr) {
        const auto fps = chunk_digests(data, chunks);
        for (std::size_t i = 0; i < chunks.size(); ++i) {
          if (index_.contains(scope_for(user), fps[i])) {
            res.duplicate_bytes += chunks[i].size;
          } else {
            res.new_bytes += chunks[i].size;
            res.new_chunks.push_back(chunks[i]);
          }
        }
      } else {
        for (const chunk_ref& c : chunks) {
          if (index_.contains(scope_for(user),
                              fp_range(data, c.offset, c.size))) {
            res.duplicate_bytes += c.size;
          } else {
            res.new_bytes += c.size;
            res.new_chunks.push_back(c);
          }
        }
      }
      res.whole_file_duplicate = !data.empty() && res.new_bytes == 0;
      return res;
    }
  }
  return res;
}

void dedup_engine::commit(user_id user, const content_ref& data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.add(scope_for(user), fp_range(data, 0, data.size()));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.add(scope_for(user), fp_range(data, c.offset, c.size));
      }
      return;
  }
}

void dedup_engine::retract(user_id user, const content_ref& data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.remove(scope_for(user), fp_range(data, 0, data.size()));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.remove(scope_for(user), fp_range(data, c.offset, c.size));
      }
      return;
  }
}

void dedup_engine::retract(user_id user, byte_view data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.remove(scope_for(user), fp(data));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.remove(scope_for(user), fp(slice(data, c)));
      }
      return;
  }
}

}  // namespace cloudsync
