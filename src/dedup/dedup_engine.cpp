#include "dedup/dedup_engine.hpp"

#include "pipeline/byte_pipeline.hpp"

namespace cloudsync {

fingerprint_memo& global_fingerprint_cache() {
  static fingerprint_memo memo;
  return memo;
}

fingerprint dedup_engine::fp(byte_view data) const {
  if (memo_ == nullptr) return fingerprint_of(data);
  return memo_->get_or_compute(data, /*salt=*/0,
                               [&] { return fingerprint_of(data); });
}

std::vector<chunk_ref> dedup_engine::chunk_layout(byte_view data) const {
  return policy_.granularity == dedup_granularity::content_defined
             ? content_defined_chunks(data, policy_.cdc)
             : fixed_chunks(data, policy_.block_size);
}

dedup_result dedup_engine::analyze(user_id user, byte_view data) const {
  dedup_result res;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      res.new_bytes = data.size();
      if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      return res;

    case dedup_granularity::full_file: {
      res.fingerprints_sent = 1;
      if (!data.empty() &&
          index_.contains(scope_for(user), fp(data))) {
        res.duplicate_bytes = data.size();
        res.whole_file_duplicate = true;
      } else {
        res.new_bytes = data.size();
        if (!data.empty()) res.new_chunks.push_back({0, data.size()});
      }
      return res;
    }

    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block: {
      const auto chunks = chunk_layout(data);
      res.fingerprints_sent = chunks.size();
      if (memo_ == nullptr) {
        // No fingerprint memo: fuse the per-chunk hashing into one walk of
        // the buffer instead of re-entering sha256 per lookup.
        const auto fps = chunk_digests(data, chunks);
        for (std::size_t i = 0; i < chunks.size(); ++i) {
          if (index_.contains(scope_for(user), fps[i])) {
            res.duplicate_bytes += chunks[i].size;
          } else {
            res.new_bytes += chunks[i].size;
            res.new_chunks.push_back(chunks[i]);
          }
        }
      } else {
        for (const chunk_ref& c : chunks) {
          if (index_.contains(scope_for(user), fp(slice(data, c)))) {
            res.duplicate_bytes += c.size;
          } else {
            res.new_bytes += c.size;
            res.new_chunks.push_back(c);
          }
        }
      }
      res.whole_file_duplicate = !data.empty() && res.new_bytes == 0;
      return res;
    }
  }
  return res;
}

void dedup_engine::commit(user_id user, byte_view data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.add(scope_for(user), fp(data));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.add(scope_for(user), fp(slice(data, c)));
      }
      return;
  }
}

void dedup_engine::retract(user_id user, byte_view data) {
  if (data.empty()) return;
  switch (policy_.granularity) {
    case dedup_granularity::none:
      return;
    case dedup_granularity::full_file:
      index_.remove(scope_for(user), fp(data));
      return;
    case dedup_granularity::content_defined:
    case dedup_granularity::fixed_block:
      for (const chunk_ref& c : chunk_layout(data)) {
        index_.remove(scope_for(user), fp(slice(data, c)));
      }
      return;
  }
}

}  // namespace cloudsync
