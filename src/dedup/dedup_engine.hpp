// Deduplication engine: decides, for an upload, which bytes are already in
// the cloud and need not be transferred (paper §5.2, Table 9).
//
// Granularities mirror the paper's taxonomy, plus the "best possible manner"
// it cites but deliberately does not use:
//   none            — every byte uploaded (Google Drive, OneDrive, Box,
//                     SugarSync)
//   full_file       — whole-file fingerprint match   (Ubuntu One)
//   fixed_block     — head-anchored fixed blocks     (Dropbox, 4 MB)
//   content_defined — gear-CDC variable blocks (EndRE / Meyer-Bolosky style;
//                     robust to insertions, more CPU) — extension, exercised
//                     by the ablation bench
// Scope is per-user or cross-user (Ubuntu One is the only cross-user case).
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/cdc.hpp"
#include "dedup/dedup_index.hpp"
#include "store/content_ref.hpp"
#include "util/content_cache.hpp"

namespace cloudsync {

/// Process-wide SHA-256 fingerprint memo: the engine hashes the same bytes
/// on analyze and again on commit, and seeded experiments reproduce the same
/// contents across bench cells — memoizing by fast content hash removes the
/// repeated cryptographic work (see docs/PERFORMANCE.md).
using fingerprint_memo = content_memo<sha256_digest>;
fingerprint_memo& global_fingerprint_cache();

enum class dedup_granularity : std::uint8_t {
  none,
  full_file,
  fixed_block,
  content_defined
};

struct dedup_policy {
  dedup_granularity granularity = dedup_granularity::none;
  std::size_t block_size = 4 * 1024 * 1024;  ///< for fixed_block
  bool cross_user = false;
  cdc_params cdc{};  ///< for content_defined

  static dedup_policy disabled() { return {}; }
};

/// What an upload must actually transfer after dedup.
struct dedup_result {
  std::uint64_t duplicate_bytes = 0;  ///< matched in the index; not sent
  std::uint64_t new_bytes = 0;        ///< must be transferred
  std::vector<chunk_ref> new_chunks;  ///< the chunks to send (whole file when
                                      ///< granularity == none)
  std::size_t fingerprints_sent = 0;  ///< client→cloud fingerprint count
                                      ///< (charged as metadata traffic)
  bool whole_file_duplicate = false;
};

/// How many fingerprints analyze() would send for `size` bytes under
/// `policy`, without walking any content: the cost model's metadata term.
/// Exact for none/full_file/fixed_block; for content_defined it assumes the
/// expected gear-CDC chunk length (min + avg mask-geometric mean, capped at
/// max), which calibration refines.
std::uint64_t expected_fingerprint_count(const dedup_policy& policy,
                                         std::uint64_t size);

class dedup_engine {
 public:
  /// `memo` (optional, non-owning) caches chunk fingerprints across engines
  /// and threads; results are identical with or without it.
  explicit dedup_engine(dedup_policy policy, fingerprint_memo* memo = nullptr)
      : policy_(policy), memo_(memo) {}

  const dedup_policy& policy() const { return policy_; }

  /// Compare `data` against the index without modifying it.
  dedup_result analyze(user_id user, byte_view data) const;
  /// Rope entry point: chunk layout and fingerprints are computed by walking
  /// segments in place (no flatten); results and memo keys are identical to
  /// the flat overload on the same logical bytes.
  dedup_result analyze(user_id user, const content_ref& data) const;

  /// Register `data`'s fingerprints as stored (after a successful upload).
  void commit(user_id user, byte_view data);
  void commit(user_id user, const content_ref& data);

  /// Un-register (cloud-side garbage collection after a real deletion).
  void retract(user_id user, byte_view data);
  void retract(user_id user, const content_ref& data);

 private:
  /// Block layout under the active granularity (fixed or content-defined).
  std::vector<chunk_ref> chunk_layout(byte_view data) const;
  std::vector<chunk_ref> chunk_layout(const content_ref& data) const;

  /// fingerprint_of(), memoized when a cache is attached.
  fingerprint fp(byte_view data) const;
  /// Streaming fingerprint of a rope sub-range; memoized under the same key
  /// as fp() on the flat bytes.
  fingerprint fp_range(const content_ref& data, std::size_t off,
                       std::size_t len) const;

  user_id scope_for(user_id user) const {
    return policy_.cross_user ? 0 : user + 1;  // 0 is the global namespace
  }

  dedup_policy policy_;
  fingerprint_memo* memo_ = nullptr;
  dedup_index index_;
};

}  // namespace cloudsync
