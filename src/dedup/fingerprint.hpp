// Content fingerprints for deduplication.
//
// SHA-256 is collision-resistant enough that the engine treats fingerprint
// equality as content equality (the same assumption commercial services and
// the paper's Algorithm-1 probe rely on).
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/fixed_chunker.hpp"
#include "util/bytes.hpp"
#include "util/sha256.hpp"

namespace cloudsync {

using fingerprint = sha256_digest;

inline fingerprint fingerprint_of(byte_view data) { return sha256(data); }

/// Fingerprint each head-anchored fixed-size block of `data`.
std::vector<fingerprint> block_fingerprints(byte_view data,
                                            std::size_t block_size);

}  // namespace cloudsync
