// Reference-counted fingerprint index with per-user or global (cross-user)
// scoping — the cloud-side data structure behind "has this content been
// uploaded before?".
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dedup/fingerprint.hpp"

namespace cloudsync {

using user_id = std::uint32_t;

/// Flat open-addressed fingerprint → refcount table: one contiguous slot
/// array per scope (linear probing on the digest's uniform prefix64) instead
/// of a node-based unordered_map. A fleet replay performs millions of
/// containment probes against these shards; the flat layout keeps each probe
/// to one or two adjacent cache lines and the pre-sized capacity avoids
/// rehash storms while services churn commits.
class fingerprint_shard {
 public:
  explicit fingerprint_shard(std::size_t expected_unique = 1024) {
    rehash(slots_for(expected_unique));
  }

  bool contains(const fingerprint& fp) const {
    const slot* s = find(fp);
    return s != nullptr;
  }

  void add(const fingerprint& fp) {
    if ((live_ + dead_ + 1) * 8 >= slots_.size() * 7) grow();
    const std::uint64_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(fp.prefix64() & mask);
    std::size_t insert_at = slots_.size();
    for (;; i = (i + 1) & mask) {
      slot& s = slots_[i];
      if (s.state == kEmpty) {
        if (insert_at == slots_.size()) insert_at = i;
        break;
      }
      if (s.state == kDead) {
        if (insert_at == slots_.size()) insert_at = i;
        continue;
      }
      if (s.fp == fp) {
        ++s.count;
        return;
      }
    }
    slot& s = slots_[insert_at];
    if (s.state == kDead) --dead_;
    s.fp = fp;
    s.count = 1;
    s.state = kLive;
    ++live_;
  }

  /// Decrement; erases the entry when the count reaches zero. Removing an
  /// absent fingerprint is a no-op (delete of an unsynced file).
  void remove(const fingerprint& fp) {
    slot* s = find(fp);
    if (s == nullptr) return;
    if (--s->count == 0) {
      s->state = kDead;
      --live_;
      ++dead_;
    }
  }

  std::size_t unique_count() const { return live_; }

  /// Sizing hint: pre-allocate for `n` unique fingerprints.
  void reserve(std::size_t n) {
    const std::size_t want = slots_for(n);
    if (want > slots_.size()) rehash(want);
  }

 private:
  static constexpr std::uint8_t kEmpty = 0, kLive = 1, kDead = 2;

  struct slot {
    fingerprint fp;
    std::uint64_t count = 0;
    std::uint8_t state = kEmpty;
  };

  /// Power-of-two slot count keeping load under ~0.7 for n live entries.
  static std::size_t slots_for(std::size_t n) {
    std::size_t slots = 16;
    while (n * 8 >= slots * 7) slots <<= 1;
    return slots;
  }

  const slot* find(const fingerprint& fp) const {
    const std::uint64_t mask = slots_.size() - 1;
    for (std::size_t i = static_cast<std::size_t>(fp.prefix64() & mask);;
         i = (i + 1) & mask) {
      const slot& s = slots_[i];
      if (s.state == kEmpty) return nullptr;
      if (s.state == kLive && s.fp == fp) return &s;
    }
  }
  slot* find(const fingerprint& fp) {
    return const_cast<slot*>(std::as_const(*this).find(fp));
  }

  void grow() { rehash(slots_.size() * 2); }

  void rehash(std::size_t new_slots) {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(new_slots, slot{});
    dead_ = 0;
    const std::uint64_t mask = new_slots - 1;
    for (const slot& s : old) {
      if (s.state != kLive) continue;
      std::size_t i = static_cast<std::size_t>(s.fp.prefix64() & mask);
      while (slots_[i].state == kLive) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<slot> slots_;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;  ///< tombstones (re-usable on insert)
};

/// Scoped fingerprint set. Scope 0 is the global (cross-user) namespace;
/// per-user entries live under the user's own scope.
///
/// Concurrency contract (what the sharded sync server relies on): the scope
/// DIRECTORY is internally synchronized — scopes may be created, looked up,
/// and dropped from any thread — but each scope's fingerprint_shard is NOT:
/// all operations touching one scope (contains/add/remove/unique_count) must
/// be externally serialized per scope. The sync server satisfies this by
/// owning every user scope from exactly one server shard and running that
/// shard's work under its stripe lock; the single-threaded experiment envs
/// satisfy it trivially. Operations on DISTINCT scopes are safe concurrently
/// (scopes are held by pointer, so directory rehashes never move them).
class dedup_index {
 public:
  /// `scope_capacity_hint` pre-sizes each lazily-created scope. The default
  /// suits tens of heavily-used scopes (experiment replays); the multi-tenant
  /// server passes a small hint so a million thin user scopes stay thin.
  explicit dedup_index(std::size_t scope_capacity_hint = 1024);

  bool contains(user_id scope, const fingerprint& fp) const;

  /// Increment the reference count for fp in scope.
  void add(user_id scope, const fingerprint& fp);

  /// Decrement; erases the entry when the count reaches zero. Removing an
  /// absent fingerprint is a no-op (delete of an unsynced file).
  void remove(user_id scope, const fingerprint& fp);

  /// Pre-create `scope` sized for `expected_unique` fingerprints (grows an
  /// existing scope's reservation instead). Safe from any thread.
  void create_scope(user_id scope, std::size_t expected_unique);

  /// Tear a scope down (tenant eviction / account purge). Returns false if
  /// the scope never existed. The caller must have quiesced the scope first —
  /// dropping a scope another thread is actively probing is a contract
  /// violation, exactly like any other per-scope race.
  bool drop_scope(user_id scope);

  std::size_t unique_count(user_id scope) const;
  std::size_t total_scopes() const;

 private:
  /// nullptr when absent. Shared lock: the caller may then operate on the
  /// scope under its own per-scope serialization; the pointee never moves.
  fingerprint_shard* find_scope(user_id scope) const;

  mutable std::shared_mutex mu_;  ///< guards the directory, not the scopes
  std::unordered_map<user_id, std::unique_ptr<fingerprint_shard>> scopes_;
  std::size_t scope_capacity_hint_;
};

}  // namespace cloudsync
