// Reference-counted fingerprint index with per-user or global (cross-user)
// scoping — the cloud-side data structure behind "has this content been
// uploaded before?".
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dedup/fingerprint.hpp"

namespace cloudsync {

using user_id = std::uint32_t;

/// Scoped fingerprint set. Scope 0 is the global (cross-user) namespace;
/// per-user entries live under the user's own scope.
class dedup_index {
 public:
  bool contains(user_id scope, const fingerprint& fp) const;

  /// Increment the reference count for fp in scope.
  void add(user_id scope, const fingerprint& fp);

  /// Decrement; erases the entry when the count reaches zero. Removing an
  /// absent fingerprint is a no-op (delete of an unsynced file).
  void remove(user_id scope, const fingerprint& fp);

  std::size_t unique_count(user_id scope) const;
  std::size_t total_scopes() const { return scopes_.size(); }

 private:
  std::unordered_map<user_id, std::unordered_map<fingerprint, std::uint64_t>>
      scopes_;
};

}  // namespace cloudsync
