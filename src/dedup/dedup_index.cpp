#include "dedup/dedup_index.hpp"

namespace cloudsync {

bool dedup_index::contains(user_id scope, const fingerprint& fp) const {
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) return false;
  return sit->second.contains(fp);
}

void dedup_index::add(user_id scope, const fingerprint& fp) {
  ++scopes_[scope][fp];
}

void dedup_index::remove(user_id scope, const fingerprint& fp) {
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) return;
  const auto it = sit->second.find(fp);
  if (it == sit->second.end()) return;
  if (--it->second == 0) sit->second.erase(it);
}

std::size_t dedup_index::unique_count(user_id scope) const {
  const auto sit = scopes_.find(scope);
  return sit == scopes_.end() ? 0 : sit->second.size();
}

}  // namespace cloudsync
