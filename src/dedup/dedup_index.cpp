#include "dedup/dedup_index.hpp"

#include <mutex>

namespace cloudsync {

dedup_index::dedup_index(std::size_t scope_capacity_hint)
    : scope_capacity_hint_(scope_capacity_hint) {
  // Sizing hint: a fleet replay touches tens of user scopes per service;
  // pre-bucketing keeps the outer map from rehashing mid-replay.
  scopes_.reserve(64);
}

fingerprint_shard* dedup_index::find_scope(user_id scope) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto sit = scopes_.find(scope);
  return sit == scopes_.end() ? nullptr : sit->second.get();
}

bool dedup_index::contains(user_id scope, const fingerprint& fp) const {
  const fingerprint_shard* s = find_scope(scope);
  return s != nullptr && s->contains(fp);
}

void dedup_index::add(user_id scope, const fingerprint& fp) {
  if (fingerprint_shard* s = find_scope(scope)) {
    s->add(fp);
    return;
  }
  // First touch of this scope: create it under the exclusive directory lock.
  // The shard mutation itself is still covered by the caller's per-scope
  // serialization; the lock only protects the directory insert.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = scopes_[scope];
  if (!slot) {
    slot = std::make_unique<fingerprint_shard>(scope_capacity_hint_);
  }
  slot->add(fp);
}

void dedup_index::remove(user_id scope, const fingerprint& fp) {
  if (fingerprint_shard* s = find_scope(scope)) s->remove(fp);
}

void dedup_index::create_scope(user_id scope, std::size_t expected_unique) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = scopes_[scope];
  if (!slot) {
    slot = std::make_unique<fingerprint_shard>(expected_unique);
  } else {
    slot->reserve(expected_unique);
  }
}

bool dedup_index::drop_scope(user_id scope) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return scopes_.erase(scope) != 0;
}

std::size_t dedup_index::unique_count(user_id scope) const {
  const fingerprint_shard* s = find_scope(scope);
  return s == nullptr ? 0 : s->unique_count();
}

std::size_t dedup_index::total_scopes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return scopes_.size();
}

}  // namespace cloudsync
