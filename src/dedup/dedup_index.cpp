#include "dedup/dedup_index.hpp"

namespace cloudsync {

dedup_index::dedup_index() {
  // Sizing hint: a fleet replay touches tens of user scopes per service;
  // pre-bucketing keeps the outer map from rehashing mid-replay.
  scopes_.reserve(64);
}

bool dedup_index::contains(user_id scope, const fingerprint& fp) const {
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) return false;
  return sit->second.contains(fp);
}

void dedup_index::add(user_id scope, const fingerprint& fp) {
  scopes_.try_emplace(scope).first->second.add(fp);
}

void dedup_index::remove(user_id scope, const fingerprint& fp) {
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) return;
  sit->second.remove(fp);
}

std::size_t dedup_index::unique_count(user_id scope) const {
  const auto sit = scopes_.find(scope);
  return sit == scopes_.end() ? 0 : sit->second.unique_count();
}

}  // namespace cloudsync
