#include "dedup/fingerprint.hpp"

#include "pipeline/byte_pipeline.hpp"

namespace cloudsync {

std::vector<fingerprint> block_fingerprints(byte_view data,
                                            std::size_t block_size) {
  return chunk_digests(data, fixed_chunks(data, block_size));
}

}  // namespace cloudsync
