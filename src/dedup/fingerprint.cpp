#include "dedup/fingerprint.hpp"

namespace cloudsync {

std::vector<fingerprint> block_fingerprints(byte_view data,
                                            std::size_t block_size) {
  std::vector<fingerprint> out;
  const auto chunks = fixed_chunks(data, block_size);
  out.reserve(chunks.size());
  for (const chunk_ref& c : chunks) {
    out.push_back(fingerprint_of(slice(data, c)));
  }
  return out;
}

}  // namespace cloudsync
