#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "compress/varint.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cloudsync {

namespace {

// Table 2 of the paper: users and files per service.
struct service_quota {
  const char* name;
  std::uint32_t users;
  std::uint64_t files;
};
constexpr service_quota kQuotas[] = {
    {"Google Drive", 33, 32677}, {"OneDrive", 24, 17903},
    {"Dropbox", 55, 106493},     {"Box", 13, 19995},
    {"Ubuntu One", 13, 27281},   {"SugarSync", 15, 18283}};

/// A file's content is a concatenation of deterministic segments; a segment
/// is an infinite pseudo-random stream identified by its seed, of which the
/// layout uses a prefix.
struct segment {
  std::uint64_t seed;
  std::uint64_t len;
};
using layout = std::vector<segment>;

std::uint64_t layout_size(const layout& l) {
  std::uint64_t s = 0;
  for (const segment& seg : l) s += seg.len;
  return s;
}

/// Identity of the byte range [off, off+len) of the file: the md5 of the
/// covering (seed, in-segment offset, length) tuples. Equal tuples ⇔ equal
/// bytes, because segment streams are deterministic in (seed, position).
md5_digest range_identity(const layout& l, std::uint64_t off,
                          std::uint64_t len) {
  md5_hasher h;
  byte_buffer enc;
  std::uint64_t seg_start = 0;
  for (const segment& seg : l) {
    const std::uint64_t seg_end = seg_start + seg.len;
    if (seg_end > off && seg_start < off + len) {
      const std::uint64_t lo = std::max(off, seg_start);
      const std::uint64_t hi = std::min(off + len, seg_end);
      enc.clear();
      put_varint(enc, seg.seed);
      put_varint(enc, lo - seg_start);
      put_varint(enc, hi - lo);
      h.update(enc);
    }
    seg_start = seg_end;
    if (seg_start >= off + len) break;
  }
  return h.finish();
}

void fill_block_ids(trace_file_record& rec, const layout& l) {
  const std::uint64_t size = rec.original_size;
  for (std::size_t g = 0; g < trace_block_sizes.size(); ++g) {
    const std::uint64_t bs = trace_block_sizes[g];
    auto& ids = rec.block_ids[g];
    ids.clear();
    for (std::uint64_t off = 0; off < size; off += bs) {
      const std::uint64_t len = std::min(bs, size - off);
      ids.push_back(range_identity(l, off, len).prefix64());
    }
  }
  rec.full_md5 = range_identity(l, 0, size);
}

std::uint64_t draw_size(rng& r, const trace_params& p) {
  const double s = r.lognormal(p.size_mu, p.size_sigma);
  const std::uint64_t hi =
      p.max_file_bytes == 0
          ? 2ull * GiB
          : std::min<std::uint64_t>(p.max_file_bytes, 2ull * GiB);
  return std::clamp<std::uint64_t>(static_cast<std::uint64_t>(s), 1, hi);
}

double draw_compression_ratio(rng& r, const trace_params& p,
                              std::uint64_t size) {
  // Three content classes. Huge files dominate the byte total, so their
  // ratio must be stable (media/disk-image mixes compress mildly but
  // consistently); small/medium files carry the count-level statistics.
  if (size >= 8 * MiB) {
    return std::max(1.12, r.lognormal(p.ratio_mu_large, 0.08));
  }
  const bool small = size < 100 * KiB;
  const double pc = small ? p.p_compressible_small : p.p_compressible_large;
  if (!r.chance(pc)) {
    // Already-compressed content: ratio barely above 1.
    return 1.0 + r.uniform_real() * 0.05;
  }
  const double mu = small ? p.ratio_mu_small : p.ratio_mu_small * 0.75;
  // Effectively compressible must mean ratio > 1/0.9 ≈ 1.11.
  return std::max(1.12, r.lognormal(mu, p.ratio_sigma));
}

std::uint32_t draw_modify_count(rng& r, const trace_params& p) {
  if (!r.chance(p.p_modified)) return 0;
  std::uint32_t n = 1;
  while (n < 64 && r.chance(1.0 - p.modify_geometric_p)) ++n;
  return n;
}

std::uint32_t draw_burst_size(rng& r, const trace_params& p) {
  if (r.chance(p.p_singleton_session)) return 1;
  // Multi-file sessions: head-heavy, mean ≈ 4.
  const std::uint32_t n =
      2 + static_cast<std::uint32_t>(r.zipf(p.max_burst - 1, 1.3));
  return std::min(n, p.max_burst);
}

}  // namespace

trace_dataset generate_trace(const trace_params& params) {
  rng r(params.seed);
  trace_dataset ds;

  std::uint64_t total_files = 0;
  for (const service_quota& q : kQuotas) {
    total_files += static_cast<std::uint64_t>(
        std::llround(static_cast<double>(q.files) * params.scale));
  }
  ds.files.reserve(total_files);

  // History of files available as duplicate sources (across all
  // users/services — cross-user duplication pervasively exists, §5.2).
  struct hist_entry {
    layout l;
    std::uint64_t compressed_size;
  };
  std::deque<hist_entry> history;
  constexpr std::size_t kHistoryCap = 20000;
  std::uint64_t next_seed = 1;
  std::uint32_t user_base = 0;

  // Byte-weighted duplicate control: file sizes are heavy-tailed, so a fixed
  // per-file duplication probability makes the duplicate-byte fraction wildly
  // unstable. Instead we duplicate whenever the running fraction is below the
  // target (p_full_duplicate ≈ 18.8 %), and fill the deficit with as *few*
  // files as possible: among sampled candidates that fit the budget, take the
  // largest, so duplication barely distorts the file-count distribution.
  std::uint64_t total_bytes = 0;
  std::uint64_t dup_bytes = 0;
  auto pick_duplicate_source = [&](rng& rr) -> const hist_entry* {
    if (history.empty()) return nullptr;
    const double target = params.p_full_duplicate;
    const auto deficit = static_cast<std::int64_t>(
        target * static_cast<double>(total_bytes) -
        static_cast<double>(dup_bytes));
    // Act only on a sizeable deficit so duplicates are few and large rather
    // than a steady drizzle of mid-size copies that would distort the
    // file-count distribution.
    if (deficit < static_cast<std::int64_t>(1 * MiB)) return nullptr;
    const auto budget = static_cast<std::uint64_t>(deficit) * 6 / 5;
    const hist_entry* best = nullptr;
    std::uint64_t best_size = 0;
    for (int attempt = 0; attempt < 24; ++attempt) {
      const hist_entry& cand = history[rr.uniform(history.size())];
      const std::uint64_t sz = layout_size(cand.l);
      if (sz <= budget && sz >= best_size) {
        best = &cand;
        best_size = sz;
      }
    }
    // Don't waste a duplication slot on a file that barely dents the deficit.
    if (best_size * 8 < static_cast<std::uint64_t>(deficit)) return nullptr;
    return best;
  };

  for (const service_quota& q : kQuotas) {
    const auto want = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(q.files) * params.scale));
    // Spread this service's files over its users via creation sessions.
    std::vector<double> user_clock(q.users, 0.0);
    std::uint64_t made = 0;
    std::uint64_t serial = 0;
    while (made < want) {
      const auto u = static_cast<std::uint32_t>(r.uniform(q.users));
      user_clock[u] += r.exponential(1.0 / params.mean_session_gap_sec);
      const std::uint32_t burst =
          std::min<std::uint64_t>(draw_burst_size(r, params), want - made);
      for (std::uint32_t b = 0; b < burst; ++b) {
        trace_file_record rec;
        rec.user = user_base + u;
        rec.service = q.name;
        rec.file_name = std::string(q.name) + "/u" + std::to_string(u) +
                        "/f" + std::to_string(serial++);
        rec.creation_time = user_clock[u] + b * 2.0;  // seconds apart

        layout l;
        bool is_duplicate = false;
        std::uint64_t inherited_compressed = 0;
        if (const hist_entry* src = pick_duplicate_source(r)) {
          // Exact copy of an earlier file (possibly another user's).
          // Identical content compresses identically, so the compressed
          // size is inherited, not re-drawn.
          l = src->l;
          inherited_compressed = src->compressed_size;
          is_duplicate = true;
        } else if (!history.empty() &&
                   r.chance(params.p_partial_duplicate)) {
          // Edited copy: shared prefix + fresh tail.
          const layout& base = history[r.uniform(history.size())].l;
          const std::uint64_t base_size = layout_size(base);
          const std::uint64_t keep =
              std::max<std::uint64_t>(1, base_size / 2 + r.uniform(base_size / 2 + 1));
          std::uint64_t acc = 0;
          for (const segment& seg : base) {
            if (acc >= keep) break;
            const std::uint64_t take = std::min(seg.len, keep - acc);
            l.push_back({seg.seed, take});
            acc += take;
          }
          const std::uint64_t tail = std::max<std::uint64_t>(
              1, draw_size(r, params) / 4);
          l.push_back({next_seed++, tail});
        } else {
          l.push_back({next_seed++, draw_size(r, params)});
        }

        rec.original_size = layout_size(l);
        total_bytes += rec.original_size;
        if (is_duplicate) {
          dup_bytes += rec.original_size;
          rec.compressed_size = inherited_compressed;
        } else {
          const double ratio =
              draw_compression_ratio(r, params, rec.original_size);
          rec.compressed_size = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     static_cast<double>(rec.original_size) / ratio));
        }
        rec.modify_count = draw_modify_count(r, params);
        rec.last_modified =
            rec.creation_time +
            (rec.modify_count > 0 ? r.exponential(1.0 / (24 * 3600.0)) : 0.0);

        fill_block_ids(rec, l);

        if (history.size() >= kHistoryCap) history.pop_front();
        history.push_back({std::move(l), rec.compressed_size});
        ds.files.push_back(std::move(rec));
        ++made;
      }
    }
    user_base += q.users;
  }
  return ds;
}

}  // namespace cloudsync
