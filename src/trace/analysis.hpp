// Trace analytics reproducing the paper's §4/§5 dataset claims and the
// Fig 2 / Fig 5 curves.
#pragma once

#include <cstddef>

#include "trace/trace_record.hpp"
#include "util/stats.hpp"

namespace cloudsync {

struct trace_summary {
  std::size_t file_count = 0;
  std::uint64_t total_original = 0;
  std::uint64_t total_compressed = 0;
  double median_size = 0;
  double mean_size = 0;
  double max_size = 0;
  double median_compressed = 0;
  double fraction_small = 0;             ///< < 100 KB by original size (77 %)
  double fraction_small_compressed = 0;  ///< < 100 KB by compressed size (81 %)
  double fraction_modified = 0;          ///< modified at least once (84 %)
  double fraction_effectively_compressible = 0;  ///< ratio < 0.9 (52 %)
  double overall_compression_ratio = 0;  ///< total_orig / total_comp (≈1.31)
  double traffic_saving = 0;             ///< 1 − 1/ratio (≈24 %)
};

trace_summary summarize(const trace_dataset& ds);

/// CDFs over per-file sizes (Fig 2).
empirical_cdf original_size_cdf(const trace_dataset& ds);
empirical_cdf compressed_size_cdf(const trace_dataset& ds);

/// Fraction of *small* files that have at least one other small file created
/// by the same user within `window_sec` — the paper's "can be created in
/// batches" (≈ 66 %), the BDS opportunity.
double batchable_small_fraction(const trace_dataset& ds,
                                double window_sec = 30.0);

/// Full-file duplicate bytes / total bytes (≈ 18.8 %, cross-user).
double full_file_duplicate_fraction(const trace_dataset& ds);

/// Dedup ratio = bytes before dedup / bytes after (Fig 5; ≥ 1).
/// `cross_user` = one global fingerprint namespace vs per-user namespaces.
double dedup_ratio_full_file(const trace_dataset& ds, bool cross_user);

/// Block-level variant at trace_block_sizes[granularity_index].
double dedup_ratio_blocks(const trace_dataset& ds,
                          std::size_t granularity_index, bool cross_user);

/// §6's traffic-overuse prevalence (the paper cites: for 8.5 % of Dropbox
/// users, >10 % of sync traffic comes from frequent modifications). Using a
/// simple per-event traffic model — creations cost `overhead + size`,
/// modifications cost `overhead + per_mod_payload` — returns the fraction
/// of users whose modification traffic exceeds `share` of their total.
/// The defaults reflect an IDS client whose deferment batches most edits
/// (amortised ~8 KB overhead + ~4 KB shipped delta per recorded edit).
double frequent_modification_user_fraction(
    const trace_dataset& ds, double overhead_bytes = 8.0 * 1024,
    double per_mod_payload_bytes = 4.0 * 1024, double share = 0.10);

}  // namespace cloudsync
