// CSV persistence for trace datasets (block identities are derived data and
// are not persisted; regenerate them via generate_trace for dedup studies).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_record.hpp"

namespace cloudsync {

/// Header line written by write_csv.
std::string trace_csv_header();

/// Write one row per file: user, service, name, sizes, times, modify count,
/// full-file md5.
void write_trace_csv(const trace_dataset& ds, std::ostream& out);

/// Parse a CSV produced by write_trace_csv. Throws std::runtime_error on a
/// malformed header or row.
trace_dataset read_trace_csv(std::istream& in);

}  // namespace cloudsync
