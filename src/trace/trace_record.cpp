#include "trace/trace_record.hpp"

namespace cloudsync {

std::uint64_t trace_dataset::total_original_bytes() const {
  std::uint64_t t = 0;
  for (const trace_file_record& f : files) t += f.original_size;
  return t;
}

std::uint64_t trace_dataset::total_compressed_bytes() const {
  std::uint64_t t = 0;
  for (const trace_file_record& f : files) t += f.compressed_size;
  return t;
}

}  // namespace cloudsync
