// Synthetic trace generator calibrated to the paper's published statistics.
//
// The real 153-user / 222,632-file trace (greenorbs.org link) is no longer
// retrievable, so we synthesise a dataset matching every marginal the paper
// reports (see DESIGN.md "Substitutions"):
//   - per-service user/file counts             (Table 2, scaled)
//   - size distribution: median 7.5 KB, mean ≈ 962 KB, max 2 GB,
//     77 % of files < 100 KB                   (Fig 2, §4.1)
//   - 52 % effectively compressible, overall compression ratio ≈ 1.31
//     compressed median 3.2 KB                 (§5.1, Fig 2)
//   - 84 % of files modified at least once     (§4.3)
//   - ≈ 2/3 of small files created in batches  (§4.1)
//   - full-file duplicate ratio ≈ 18.8 %, block-level dedup only slightly
//     better, improving at smaller block sizes (§5.2, Fig 5)
#pragma once

#include <cstdint>

#include "trace/trace_record.hpp"

namespace cloudsync {

struct trace_params {
  std::uint64_t seed = 42;

  /// Fraction of the original 222,632 files to generate (1.0 = full scale).
  double scale = 0.10;

  // -- size distribution (lognormal, clamped to [1 B, 2 GiB]) -------------
  double size_mu = 8.80;     ///< ln(median bytes); duplicates skew the
                             ///< realised median up toward the paper's 7.5 KB
  double size_sigma = 3.11;  ///< yields mean ≈ 962 KB, P(<100 KB) ≈ 0.78

  /// Upper clamp on generated sizes; 0 = the paper's natural 2 GiB maximum.
  /// Replaces the old replay-time fleet_config::file_size_cap: clamping at
  /// generation keeps every downstream identity (full_md5, block_ids,
  /// duplicate-byte accounting) consistent with the bytes actually replayed.
  std::uint64_t max_file_bytes = 0;

  // -- compressibility -----------------------------------------------------
  double p_compressible_small = 0.55;  ///< files < 100 KB
  double p_compressible_large = 0.45;  ///< files 100 KB - 8 MB
  double ratio_mu_small = 0.92;        ///< lognormal ln-ratio for small files
  double ratio_mu_large = 0.30;        ///< ln-ratio for > 8 MB (≈ e^0.30 = 1.35,
                                       ///< stable: these dominate the bytes)
  double ratio_sigma = 0.35;

  // -- modifications ---------------------------------------------------------
  double p_modified = 0.84;
  double modify_geometric_p = 0.45;  ///< extra modifications ~ geometric

  // -- duplication -----------------------------------------------------------
  /// Target fraction of *bytes* belonging to exact duplicates of earlier
  /// files (the paper's full-file duplication ratio, 18.8 %). Enforced with a
  /// feedback controller during generation because sizes are heavy-tailed.
  double p_full_duplicate = 0.188;
  double p_partial_duplicate = 0.08;  ///< shares a prefix with an earlier file

  // -- creation batching ------------------------------------------------------
  double p_singleton_session = 0.76;  ///< sessions creating exactly one file
  std::uint32_t max_burst = 30;       ///< cap on files per creation burst
  double mean_session_gap_sec = 6 * 3600.0;
};

/// Generate the dataset. Deterministic for a given params value.
trace_dataset generate_trace(const trace_params& params = {});

}  // namespace cloudsync
