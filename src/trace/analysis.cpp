#include "trace/analysis.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cloudsync {

trace_summary summarize(const trace_dataset& ds) {
  trace_summary s;
  s.file_count = ds.files.size();
  if (ds.files.empty()) return s;

  std::vector<double> sizes, csizes;
  sizes.reserve(ds.files.size());
  csizes.reserve(ds.files.size());
  std::size_t small = 0, csmall = 0, modified = 0, compressible = 0;
  for (const trace_file_record& f : ds.files) {
    sizes.push_back(static_cast<double>(f.original_size));
    csizes.push_back(static_cast<double>(f.compressed_size));
    s.total_original += f.original_size;
    s.total_compressed += f.compressed_size;
    if (f.is_small()) ++small;
    if (f.compressed_size < 100 * 1024) ++csmall;
    if (f.modify_count > 0) ++modified;
    if (f.effectively_compressible()) ++compressible;
  }
  const auto n = static_cast<double>(ds.files.size());
  empirical_cdf size_cdf(sizes), comp_cdf(csizes);
  s.median_size = size_cdf.median();
  s.mean_size = static_cast<double>(s.total_original) / n;
  s.max_size = size_cdf.quantile(1.0);
  s.median_compressed = comp_cdf.median();
  s.fraction_small = static_cast<double>(small) / n;
  s.fraction_small_compressed = static_cast<double>(csmall) / n;
  s.fraction_modified = static_cast<double>(modified) / n;
  s.fraction_effectively_compressible = static_cast<double>(compressible) / n;
  s.overall_compression_ratio =
      static_cast<double>(s.total_original) /
      static_cast<double>(std::max<std::uint64_t>(1, s.total_compressed));
  s.traffic_saving = 1.0 - 1.0 / s.overall_compression_ratio;
  return s;
}

empirical_cdf original_size_cdf(const trace_dataset& ds) {
  std::vector<double> sizes;
  sizes.reserve(ds.files.size());
  for (const trace_file_record& f : ds.files) {
    sizes.push_back(static_cast<double>(f.original_size));
  }
  return empirical_cdf(std::move(sizes));
}

empirical_cdf compressed_size_cdf(const trace_dataset& ds) {
  std::vector<double> sizes;
  sizes.reserve(ds.files.size());
  for (const trace_file_record& f : ds.files) {
    sizes.push_back(static_cast<double>(f.compressed_size));
  }
  return empirical_cdf(std::move(sizes));
}

double batchable_small_fraction(const trace_dataset& ds, double window_sec) {
  // Group small-file creation times per user, sort, and look for a
  // neighbour within the window.
  std::map<std::uint32_t, std::vector<double>> per_user;
  for (const trace_file_record& f : ds.files) {
    if (f.is_small()) per_user[f.user].push_back(f.creation_time);
  }
  std::size_t total = 0, batchable = 0;
  for (auto& [user, times] : per_user) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 0; i < times.size(); ++i) {
      ++total;
      const bool near_prev =
          i > 0 && times[i] - times[i - 1] <= window_sec;
      const bool near_next =
          i + 1 < times.size() && times[i + 1] - times[i] <= window_sec;
      if (near_prev || near_next) ++batchable;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(batchable) /
                          static_cast<double>(total);
}

double full_file_duplicate_fraction(const trace_dataset& ds) {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t total = 0, unique = 0;
  for (const trace_file_record& f : ds.files) {
    total += f.original_size;
    if (seen.insert(f.full_md5.prefix64()).second) {
      unique += f.original_size;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(total - unique) /
                          static_cast<double>(total);
}

namespace {

/// Shared machinery: ratio of total bytes to first-occurrence bytes, where
/// occurrences are (scope, identity) pairs.
class dedup_counter {
 public:
  void add(std::uint64_t scope, std::uint64_t identity, std::uint64_t bytes) {
    total_ += bytes;
    // Combine scope and identity; scope is small, identity is uniform.
    const std::uint64_t key = identity ^ (scope * 0x9e3779b97f4a7c15ull);
    if (seen_.insert(key).second) unique_ += bytes;
  }
  double ratio() const {
    return unique_ == 0 ? 1.0
                        : static_cast<double>(total_) /
                              static_cast<double>(unique_);
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t total_ = 0;
  std::uint64_t unique_ = 0;
};

}  // namespace

double dedup_ratio_full_file(const trace_dataset& ds, bool cross_user) {
  dedup_counter counter;
  for (const trace_file_record& f : ds.files) {
    counter.add(cross_user ? 0 : f.user + 1, f.full_md5.prefix64(),
                f.original_size);
  }
  return counter.ratio();
}

double frequent_modification_user_fraction(const trace_dataset& ds,
                                           double overhead_bytes,
                                           double per_mod_payload_bytes,
                                           double share) {
  struct user_traffic {
    double creation = 0;
    double modification = 0;
  };
  std::map<std::uint32_t, user_traffic> users;
  for (const trace_file_record& f : ds.files) {
    user_traffic& u = users[f.user];
    u.creation += overhead_bytes + static_cast<double>(f.original_size);
    u.modification += static_cast<double>(f.modify_count) *
                      (overhead_bytes + per_mod_payload_bytes);
  }
  if (users.empty()) return 0.0;
  std::size_t over = 0;
  for (const auto& [id, u] : users) {
    const double total = u.creation + u.modification;
    if (total > 0 && u.modification / total > share) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(users.size());
}

double dedup_ratio_blocks(const trace_dataset& ds,
                          std::size_t granularity_index, bool cross_user) {
  const std::uint64_t bs = trace_block_sizes.at(granularity_index);
  dedup_counter counter;
  for (const trace_file_record& f : ds.files) {
    const auto& ids = f.block_ids[granularity_index];
    const std::uint64_t scope = cross_user ? 0 : f.user + 1;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t len =
          i + 1 < ids.size() ? bs : f.original_size - bs * i;
      counter.add(scope, ids[i], len);
    }
  }
  return counter.ratio();
}

}  // namespace cloudsync
