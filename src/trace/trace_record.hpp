// Trace schema following the paper's Table 3: per-file attributes including
// full-file MD5 and block-level hashes at 128 KB … 16 MB granularities.
//
// Content is never materialised: each file is a *layout* of deterministic
// content segments, and block identities are derived from the layout. Two
// blocks have equal identity iff their covering segment bytes are equal,
// which is exactly what dedup needs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/digest.hpp"

namespace cloudsync {

/// The eight block granularities recorded in the trace (Table 3).
inline constexpr std::array<std::uint64_t, 8> trace_block_sizes = {
    128ull * 1024,       256ull * 1024,       512ull * 1024,
    1024ull * 1024,      2048ull * 1024,      4096ull * 1024,
    8192ull * 1024,      16384ull * 1024};

struct trace_file_record {
  std::uint32_t user = 0;        ///< user index within the trace
  std::string service;           ///< which of the six services tracks it
  std::string file_name;
  std::uint64_t original_size = 0;
  std::uint64_t compressed_size = 0;  ///< highest-level compression (Table 3)
  double creation_time = 0;           ///< seconds from trace start
  double last_modified = 0;
  std::uint32_t modify_count = 0;     ///< 0 = never modified after creation
  md5_digest full_md5;                ///< full-file content identity

  /// Block identities per granularity in trace_block_sizes order. 64-bit
  /// prefixes of the block MD5s — collision-safe at trace scale, 8x smaller.
  std::array<std::vector<std::uint64_t>, 8> block_ids;

  bool is_small() const { return original_size < 100 * 1024; }
  double compression_ratio() const {
    return compressed_size == 0
               ? 1.0
               : static_cast<double>(original_size) /
                     static_cast<double>(compressed_size);
  }
  /// The paper's "effectively compressed": compressed/original < 90 %.
  bool effectively_compressible() const {
    return original_size > 0 &&
           static_cast<double>(compressed_size) <
               0.9 * static_cast<double>(original_size);
  }
};

struct trace_dataset {
  std::vector<trace_file_record> files;

  std::uint64_t total_original_bytes() const;
  std::uint64_t total_compressed_bytes() const;
};

}  // namespace cloudsync
