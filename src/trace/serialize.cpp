#include "trace/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"

namespace cloudsync {

namespace {
constexpr const char* kHeader =
    "user,service,file_name,original_size,compressed_size,creation_time,"
    "last_modified,modify_count,full_md5";

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(std::move(cur));
  return out;
}
}  // namespace

std::string trace_csv_header() { return kHeader; }

void write_trace_csv(const trace_dataset& ds, std::ostream& out) {
  out << kHeader << '\n';
  for (const trace_file_record& f : ds.files) {
    out << f.user << ',' << f.service << ',' << f.file_name << ','
        << f.original_size << ',' << f.compressed_size << ','
        << f.creation_time << ',' << f.last_modified << ',' << f.modify_count
        << ',' << f.full_md5.hex() << '\n';
  }
}

trace_dataset read_trace_csv(std::istream& in) {
  trace_dataset ds;
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("read_trace_csv: bad header");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv(line);
    if (cells.size() != 9) {
      throw std::runtime_error("read_trace_csv: bad row: " + line);
    }
    trace_file_record f;
    try {
      f.user = static_cast<std::uint32_t>(std::stoul(cells[0]));
      f.service = cells[1];
      f.file_name = cells[2];
      f.original_size = std::stoull(cells[3]);
      f.compressed_size = std::stoull(cells[4]);
      f.creation_time = std::stod(cells[5]);
      f.last_modified = std::stod(cells[6]);
      f.modify_count = static_cast<std::uint32_t>(std::stoul(cells[7]));
      const byte_buffer md5_bytes = from_hex(cells[8]);
      if (md5_bytes.size() != f.full_md5.bytes.size()) {
        throw std::runtime_error("bad md5 length");
      }
      std::copy(md5_bytes.begin(), md5_bytes.end(), f.full_md5.bytes.begin());
    } catch (const std::runtime_error&) {
      throw std::runtime_error("read_trace_csv: bad row: " + line);
    } catch (const std::exception&) {  // stoul/stod/from_hex failures
      throw std::runtime_error("read_trace_csv: bad row: " + line);
    }
    ds.files.push_back(std::move(f));
  }
  return ds;
}

}  // namespace cloudsync
