#include "chunking/rsync.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "chunking/fixed_chunker.hpp"
#include "compress/varint.hpp"
#include "util/adler32.hpp"
#include "util/crc32.hpp"
#include "util/md5.hpp"

namespace cloudsync {

file_signature compute_signature(byte_view data, std::size_t block_size) {
  assert(block_size > 0);
  file_signature sig;
  sig.block_size = block_size;
  sig.file_size = data.size();
  sig.blocks.reserve(data.empty() ? 0 : data.size() / block_size + 1);
  // Fused per-block pass: the weak checksum and the strong MD5 consume each
  // 4 KiB tile back to back while it is hot in L1, instead of the block
  // being walked twice end to end.
  constexpr std::size_t kTile = 4096;
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    const std::size_t len = std::min(block_size, data.size() - off);
    const byte_view block = data.subspan(off, len);
    std::uint32_t a = 0, b = 0;
    md5_hasher strong;
    for (std::size_t t = 0; t < len; t += kTile) {
      const byte_view tile = block.subspan(t, std::min(kTile, len - t));
      weak_accumulate(tile, a, b);
      strong.update(tile);
    }
    sig.blocks.push_back({(b << 16) | (a & 0xffffu), strong.finish()});
  }
  return sig;
}

std::uint64_t file_delta::literal_bytes() const {
  std::uint64_t n = 0;
  for (const delta_op& op : ops) {
    if (op.op == delta_op::kind::literal) n += op.bytes.size();
  }
  return n;
}

std::uint64_t file_delta::copied_bytes(std::uint64_t old_file_size) const {
  if (block_size == 0) return 0;
  const std::uint64_t full_blocks = old_file_size / block_size;
  const std::uint64_t tail = old_file_size % block_size;
  std::uint64_t n = 0;
  for (const delta_op& op : ops) {
    if (op.op != delta_op::kind::copy) continue;
    for (std::uint64_t b = op.block_index;
         b < op.block_index + op.block_count; ++b) {
      n += b < full_blocks ? block_size : tail;
    }
  }
  return n;
}

namespace {

/// Append a literal byte, merging into a trailing literal op if present.
void push_literal(std::vector<delta_op>& ops, std::uint8_t byte) {
  if (ops.empty() || ops.back().op != delta_op::kind::literal) {
    ops.push_back({delta_op::kind::literal, 0, 0, {}});
  }
  ops.back().bytes.push_back(byte);
}

void push_literal_run(std::vector<delta_op>& ops, byte_view run) {
  if (run.empty()) return;
  if (ops.empty() || ops.back().op != delta_op::kind::literal) {
    ops.push_back({delta_op::kind::literal, 0, 0, {}});
  }
  append(ops.back().bytes, run);
}

/// Append a block copy, extending a trailing run of consecutive copies.
void push_copy(std::vector<delta_op>& ops, std::uint64_t block_index) {
  if (!ops.empty() && ops.back().op == delta_op::kind::copy &&
      ops.back().block_index + ops.back().block_count == block_index) {
    ++ops.back().block_count;
    return;
  }
  ops.push_back({delta_op::kind::copy, block_index, 1, {}});
}

}  // namespace

file_delta compute_delta(const file_signature& sig, byte_view new_data) {
  file_delta delta;
  delta.block_size = sig.block_size;
  delta.new_file_size = new_data.size();

  const std::size_t bs = sig.block_size;
  if (bs == 0 || sig.blocks.empty() || new_data.size() < bs) {
    // Nothing matchable at full-block granularity: check whether the whole
    // new file equals the old short file; otherwise ship it as one literal.
    if (sig.file_size == new_data.size() && sig.blocks.size() == 1 &&
        !new_data.empty() && sig.blocks[0].strong == md5(new_data)) {
      delta.ops.push_back({delta_op::kind::copy, 0, 1, {}});
    } else {
      push_literal_run(delta.ops, new_data);
    }
    return delta;
  }

  // Index full-size signature blocks by weak checksum. The (possibly short)
  // final block is handled separately at the tail.
  const std::uint64_t full_blocks =
      sig.file_size / bs;
  std::unordered_multimap<std::uint32_t, std::uint64_t> weak_index;
  weak_index.reserve(sig.blocks.size());
  for (std::uint64_t i = 0; i < full_blocks; ++i) {
    weak_index.emplace(sig.blocks[i].weak, i);
  }
  const bool has_tail = sig.file_size % bs != 0;
  const std::size_t tail_size = static_cast<std::size_t>(sig.file_size % bs);

  rolling_checksum rc(bs);
  std::size_t pos = 0;
  bool window_valid = false;

  while (pos + bs <= new_data.size()) {
    if (!window_valid) {
      rc.reset(new_data.subspan(pos, bs));
      window_valid = true;
    }
    bool matched = false;
    auto [it, end] = weak_index.equal_range(rc.value());
    if (it != end) {
      const md5_digest strong = md5(new_data.subspan(pos, bs));
      for (; it != end; ++it) {
        if (sig.blocks[it->second].strong == strong) {
          push_copy(delta.ops, it->second);
          pos += bs;
          window_valid = false;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push_literal(delta.ops, new_data[pos]);
      if (pos + bs < new_data.size()) {
        rc.roll(new_data[pos], new_data[pos + bs]);
      } else {
        window_valid = false;
      }
      ++pos;
    }
  }

  // Tail: the old file's final short block can only align with the last
  // tail_size bytes of the new file. If it matches there, everything between
  // the scan position and that point is literal; otherwise the whole
  // remainder is.
  if (has_tail && new_data.size() >= tail_size) {
    const std::size_t tail_pos = new_data.size() - tail_size;
    if (tail_pos >= pos) {
      const byte_view tail_view = new_data.subspan(tail_pos);
      if (!tail_view.empty() &&
          sig.blocks[full_blocks].weak == weak_checksum(tail_view) &&
          sig.blocks[full_blocks].strong == md5(tail_view)) {
        push_literal_run(delta.ops, new_data.subspan(pos, tail_pos - pos));
        push_copy(delta.ops, full_blocks);
        return delta;
      }
    }
  }
  push_literal_run(delta.ops, new_data.subspan(pos));
  return delta;
}

byte_buffer apply_delta(byte_view old_data, const file_delta& delta) {
  byte_buffer out;
  out.reserve(delta.new_file_size);
  const std::size_t bs = delta.block_size;
  const std::vector<chunk_ref> old_blocks =
      bs > 0 ? fixed_chunks(old_data, bs) : std::vector<chunk_ref>{};

  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::literal) {
      append(out, op.bytes);
      continue;
    }
    if (op.block_index + op.block_count > old_blocks.size()) {
      throw std::runtime_error("apply_delta: block index out of range");
    }
    for (std::uint64_t b = op.block_index;
         b < op.block_index + op.block_count; ++b) {
      append(out, slice(old_data, old_blocks[b]));
    }
  }
  if (out.size() != delta.new_file_size) {
    throw std::runtime_error("apply_delta: reconstructed size mismatch");
  }
  return out;
}

content_ref apply_delta_ref(const content_ref& old_data,
                            const file_delta& delta) {
  const std::size_t bs = delta.block_size;
  const std::size_t old_size = old_data.size();
  const std::size_t old_blocks =
      bs > 0 ? (old_size + bs - 1) / bs : 0;

  content_ref::builder out;
  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::literal) {
      out.append_bytes(op.bytes);
      continue;
    }
    if (op.block_index + op.block_count > old_blocks) {
      throw std::runtime_error("apply_delta: block index out of range");
    }
    const std::size_t start = static_cast<std::size_t>(op.block_index) * bs;
    const std::size_t end = std::min<std::size_t>(
        old_size,
        static_cast<std::size_t>(op.block_index + op.block_count) * bs);
    out.append(old_data, start, end - start);
  }
  if (out.size() != delta.new_file_size) {
    throw std::runtime_error("apply_delta: reconstructed size mismatch");
  }
  return out.build();
}

namespace {
constexpr std::uint8_t kDeltaMagic0 = 'd';
constexpr std::uint8_t kDeltaMagic1 = 'l';
constexpr std::uint8_t kOpCopy = 0;
constexpr std::uint8_t kOpLiteral = 1;
}  // namespace

byte_buffer serialize_delta(const file_delta& delta) {
  byte_buffer out;
  out.push_back(kDeltaMagic0);
  out.push_back(kDeltaMagic1);
  put_varint(out, delta.block_size);
  put_varint(out, delta.new_file_size);
  put_varint(out, delta.ops.size());
  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::copy) {
      out.push_back(kOpCopy);
      put_varint(out, op.block_index);
      put_varint(out, op.block_count);
    } else {
      out.push_back(kOpLiteral);
      put_varint(out, op.bytes.size());
      append(out, op.bytes);
    }
  }
  const std::uint32_t crc = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

file_delta parse_delta(byte_view wire) {
  auto fail = [](const char* why) -> file_delta {
    throw std::runtime_error(std::string("parse_delta: ") + why);
  };
  if (wire.size() < 6 || wire[0] != kDeltaMagic0 || wire[1] != kDeltaMagic1) {
    return fail("bad magic");
  }
  const std::size_t body_end = wire.size() - 4;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(wire[body_end + i]) << (8 * i);
  }
  if (crc32(wire.first(body_end)) != crc) return fail("crc mismatch");

  const byte_view body = wire.first(body_end);
  std::size_t pos = 2;
  file_delta delta;
  const auto bs = get_varint(body, pos);
  const auto nfs = get_varint(body, pos);
  const auto nops = get_varint(body, pos);
  if (!bs || !nfs || !nops) return fail("truncated header");
  delta.block_size = static_cast<std::size_t>(*bs);
  delta.new_file_size = *nfs;
  delta.ops.reserve(static_cast<std::size_t>(*nops));
  for (std::uint64_t i = 0; i < *nops; ++i) {
    if (pos >= body.size()) return fail("truncated op");
    const std::uint8_t tag = body[pos++];
    delta_op op;
    if (tag == kOpCopy) {
      op.op = delta_op::kind::copy;
      const auto bi = get_varint(body, pos);
      const auto bc = get_varint(body, pos);
      if (!bi || !bc) return fail("truncated copy op");
      op.block_index = *bi;
      op.block_count = *bc;
    } else if (tag == kOpLiteral) {
      op.op = delta_op::kind::literal;
      const auto len = get_varint(body, pos);
      if (!len || pos + *len > body.size()) return fail("truncated literal");
      op.bytes.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                      body.begin() + static_cast<std::ptrdiff_t>(pos + *len));
      pos += static_cast<std::size_t>(*len);
    } else {
      return fail("unknown op tag");
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

}  // namespace cloudsync
