#include "chunking/rsync.hpp"

#include <algorithm>
#include <stdexcept>

#include "chunking/fixed_chunker.hpp"
#include "compress/varint.hpp"
#include "util/crc32.hpp"

namespace cloudsync {

namespace {
/// Feed granularity of the whole-buffer pumps: large enough that the
/// per-window overhead vanishes, small enough that the job's internal
/// buffer stays a rounding error next to the block size.
constexpr std::size_t kPumpWindowBytes = 256 * 1024;

/// Compact the job buffer once this many consumed bytes pile up in front.
constexpr std::size_t kCompactBytes = 256 * 1024;
}  // namespace

sig_job::sig_job(std::size_t block_size, std::uint64_t size_hint) {
  if (block_size == 0) throw invalid_block_size();
  sig_.block_size = block_size;
  if (size_hint > 0) {
    sig_.blocks.reserve(
        static_cast<std::size_t>(size_hint / block_size + 1));
  }
}

void sig_job::feed(byte_view window) {
  sig_.file_size += window.size();
  while (!window.empty()) {
    const std::size_t take =
        std::min(window.size(), sig_.block_size - fill_);
    const byte_view piece = window.first(take);
    weak_accumulate(piece, a_, b_);
    strong_.update(piece);
    fill_ += take;
    window = window.subspan(take);
    if (fill_ == sig_.block_size) {
      sig_.blocks.push_back({(b_ << 16) | (a_ & 0xffffu), strong_.finish()});
      a_ = b_ = 0;
      strong_ = md5_hasher{};
      fill_ = 0;
    }
  }
}

file_signature sig_job::finish() {
  if (!finished_) {
    finished_ = true;
    if (fill_ > 0) {
      sig_.blocks.push_back({(b_ << 16) | (a_ & 0xffffu), strong_.finish()});
    }
  }
  return std::move(sig_);
}

file_signature compute_signature(byte_view data, std::size_t block_size) {
  sig_job job(block_size, data.size());
  // Pump in bounded windows: the job splits at block boundaries itself, and
  // both per-block sums stream, so windowing cannot change the result.
  for (std::size_t off = 0; off < data.size(); off += kPumpWindowBytes) {
    job.feed(data.subspan(off, std::min(kPumpWindowBytes,
                                        data.size() - off)));
  }
  return job.finish();
}

file_signature compute_signature_ref(const content_ref& data,
                                     std::size_t block_size) {
  sig_job job(block_size, data.size());
  data.walk([&](byte_view seg) { job.feed(seg); });
  return job.finish();
}

void delta_op::walk_literal(const std::function<void(byte_view)>& fn) const {
  if (op != kind::literal) return;
  if (ref.empty()) {
    if (!bytes.empty()) fn(bytes);
  } else {
    ref.walk(fn);
  }
}

std::uint64_t file_delta::literal_bytes() const {
  std::uint64_t n = 0;
  for (const delta_op& op : ops) n += op.literal_size();
  return n;
}

std::uint64_t file_delta::copied_bytes(std::uint64_t old_file_size) const {
  if (block_size == 0) return 0;
  const std::uint64_t full_blocks = old_file_size / block_size;
  const std::uint64_t tail = old_file_size % block_size;
  std::uint64_t n = 0;
  for (const delta_op& op : ops) {
    if (op.op != delta_op::kind::copy) continue;
    for (std::uint64_t b = op.block_index;
         b < op.block_index + op.block_count; ++b) {
      n += b < full_blocks ? block_size : tail;
    }
  }
  return n;
}

delta_job::delta_job(const file_signature& sig)
    : sig_(sig),
      bs_(sig.block_size),
      degenerate_(sig.block_size == 0 || sig.blocks.empty()),
      rc_(sig.block_size == 0 ? 1 : sig.block_size) {
  if (!degenerate_) {
    // Index full-size signature blocks by weak checksum. The (possibly
    // short) final block is handled separately at the tail.
    full_blocks_ = sig.file_size / bs_;
    weak_index_.reserve(sig.blocks.size());
    for (std::uint64_t i = 0; i < full_blocks_; ++i) {
      weak_index_.emplace(sig.blocks[i].weak, i);
    }
  }
}

byte_view delta_job::buffered(std::uint64_t pos, std::size_t len) const {
  return byte_view(buf_).subspan(static_cast<std::size_t>(pos - base_), len);
}

void delta_job::compact() {
  const std::size_t consumed = static_cast<std::size_t>(pos_ - base_);
  if (consumed < kCompactBytes) return;
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  base_ = pos_;
}

void delta_job::emit_copy(std::uint64_t block) {
  if (!events_.empty() && events_.back().copy &&
      events_.back().block_index + events_.back().block_count == block) {
    ++events_.back().block_count;
    return;
  }
  events_.push_back({true, block, 1, 0, 0});
}

void delta_job::emit_literal(std::uint64_t offset, std::uint64_t length) {
  if (length == 0) return;
  // Literal runs are emitted in file order, so a literal following a
  // literal is always adjacent — merging by kind matches the whole-buffer
  // implementation's trailing-op merge exactly.
  if (!events_.empty() && !events_.back().copy) {
    events_.back().length += length;
    return;
  }
  events_.push_back({false, 0, 0, offset, length});
}

void delta_job::feed(byte_view window) {
  fed_ += window.size();
  if (degenerate_) {
    // The whole file resolves at finish(); only its strong sum is needed
    // (for the short-old-file identity check), so nothing is buffered.
    whole_md5_.update(window);
    return;
  }
  append(buf_, window);
  drain(/*final_window=*/false);
  compact();
}

void delta_job::drain(bool final_window) {
  // During feed, stop one byte short of the fed horizon: an unmatched
  // position needs the byte at pos + bs to roll, and whether that byte
  // exists (vs. the file simply ending) is only known at finish().
  if (!final_window && fed_ <= bs_) return;
  const std::uint64_t horizon = final_window ? fed_ : fed_ - 1;

  while (pos_ + bs_ <= horizon) {
    if (!window_valid_) {
      rc_.reset(buffered(pos_, bs_));
      window_valid_ = true;
    }
    bool matched = false;
    auto [it, end] = weak_index_.equal_range(rc_.value());
    if (it != end) {
      const md5_digest strong = md5(buffered(pos_, bs_));
      for (; it != end; ++it) {
        if (sig_.blocks[it->second].strong == strong) {
          emit_copy(it->second);
          pos_ += bs_;
          window_valid_ = false;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      emit_literal(pos_, 1);
      if (pos_ + bs_ < fed_) {
        rc_.roll(buf_[pos_ - base_], buf_[pos_ + bs_ - base_]);
      } else {
        window_valid_ = false;
      }
      ++pos_;
    }
  }
}

const std::vector<delta_job::event>& delta_job::finish() {
  if (finished_) return events_;
  finished_ = true;
  const std::uint64_t size = fed_;

  if (degenerate_ || size < bs_) {
    // Nothing matchable at full-block granularity: check whether the whole
    // new file equals the old short file; otherwise ship it as one literal.
    const auto whole_strong = [&]() -> md5_digest {
      if (degenerate_) return whole_md5_.finish();
      return md5(buffered(0, static_cast<std::size_t>(size)));
    };
    if (sig_.file_size == size && sig_.blocks.size() == 1 && size > 0 &&
        sig_.blocks[0].strong == whole_strong()) {
      emit_copy(0);
    } else {
      emit_literal(0, size);
    }
    return events_;
  }

  drain(/*final_window=*/true);

  // Tail: the old file's final short block can only align with the last
  // tail_size bytes of the new file. If it matches there, everything between
  // the scan position and that point is literal; otherwise the whole
  // remainder is.
  const bool has_tail = sig_.file_size % bs_ != 0;
  const std::size_t tail_size = static_cast<std::size_t>(sig_.file_size % bs_);
  if (has_tail && size >= tail_size) {
    const std::uint64_t tail_pos = size - tail_size;
    if (tail_pos >= pos_) {
      const byte_view tail_view = buffered(tail_pos, tail_size);
      if (!tail_view.empty() &&
          sig_.blocks[full_blocks_].weak == weak_checksum(tail_view) &&
          sig_.blocks[full_blocks_].strong == md5(tail_view)) {
        emit_literal(pos_, tail_pos - pos_);
        emit_copy(full_blocks_);
        return events_;
      }
    }
  }
  emit_literal(pos_, size - pos_);
  return events_;
}

file_delta compute_delta(const file_signature& sig, byte_view new_data) {
  delta_job job(sig);
  for (std::size_t off = 0; off < new_data.size(); off += kPumpWindowBytes) {
    job.feed(new_data.subspan(off, std::min(kPumpWindowBytes,
                                            new_data.size() - off)));
  }
  file_delta delta;
  delta.block_size = sig.block_size;
  delta.new_file_size = new_data.size();
  for (const delta_job::event& ev : job.finish()) {
    delta_op op;
    if (ev.copy) {
      op.op = delta_op::kind::copy;
      op.block_index = ev.block_index;
      op.block_count = ev.block_count;
    } else {
      const byte_view run = new_data.subspan(
          static_cast<std::size_t>(ev.offset),
          static_cast<std::size_t>(ev.length));
      op.bytes.assign(run.begin(), run.end());
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

std::vector<delta_job::event> compute_delta_events(const file_signature& sig,
                                                   const content_ref& new_data,
                                                   std::size_t window_bytes) {
  if (window_bytes == 0) window_bytes = kPumpWindowBytes;
  delta_job job(sig);
  // Rope segments can be arbitrarily large (a lazy chunk spans the whole
  // file), so re-window them: the job's buffer is bounded by block_size +
  // window_bytes either way.
  new_data.walk([&](byte_view seg) {
    for (std::size_t off = 0; off < seg.size(); off += window_bytes) {
      job.feed(seg.subspan(off, std::min(window_bytes, seg.size() - off)));
    }
  });
  return job.finish();
}

file_delta delta_from_events(std::size_t block_size,
                             const content_ref& new_data,
                             const std::vector<delta_job::event>& events) {
  file_delta delta;
  delta.block_size = block_size;
  delta.new_file_size = new_data.size();
  delta.ops.reserve(events.size());
  for (const delta_job::event& ev : events) {
    delta_op op;
    if (ev.copy) {
      op.op = delta_op::kind::copy;
      op.block_index = ev.block_index;
      op.block_count = ev.block_count;
    } else {
      // Zero-copy literal: pin the run's chunks out of the new file's rope.
      op.ref = new_data.substr(static_cast<std::size_t>(ev.offset),
                               static_cast<std::size_t>(ev.length));
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

file_delta compute_delta_ref(const file_signature& sig,
                             const content_ref& new_data,
                             std::size_t window_bytes) {
  return delta_from_events(sig.block_size, new_data,
                           compute_delta_events(sig, new_data, window_bytes));
}

byte_buffer apply_delta(byte_view old_data, const file_delta& delta) {
  byte_buffer out;
  out.reserve(delta.new_file_size);
  const std::size_t bs = delta.block_size;
  const std::vector<chunk_ref> old_blocks =
      bs > 0 ? fixed_chunks(old_data, bs) : std::vector<chunk_ref>{};

  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::literal) {
      op.walk_literal([&](byte_view run) { append(out, run); });
      continue;
    }
    if (op.block_index + op.block_count > old_blocks.size()) {
      throw std::runtime_error("apply_delta: block index out of range");
    }
    for (std::uint64_t b = op.block_index;
         b < op.block_index + op.block_count; ++b) {
      append(out, slice(old_data, old_blocks[b]));
    }
  }
  if (out.size() != delta.new_file_size) {
    throw std::runtime_error("apply_delta: reconstructed size mismatch");
  }
  return out;
}

patch_job::patch_job(content_ref old_data, std::size_t block_size,
                     std::uint64_t new_file_size)
    : old_(std::move(old_data)),
      bs_(block_size),
      new_file_size_(new_file_size),
      old_blocks_(bs_ > 0 ? (old_.size() + bs_ - 1) / bs_ : 0) {}

void patch_job::feed(const delta_op& op) {
  if (op.op == delta_op::kind::literal) {
    if (op.ref.empty()) {
      out_.append_bytes(op.bytes);
    } else {
      out_.append(op.ref);
    }
    return;
  }
  if (op.block_index + op.block_count > old_blocks_) {
    throw std::runtime_error("apply_delta: block index out of range");
  }
  const std::size_t start = static_cast<std::size_t>(op.block_index) * bs_;
  const std::size_t end = std::min<std::size_t>(
      old_.size(),
      static_cast<std::size_t>(op.block_index + op.block_count) * bs_);
  out_.append(old_, start, end - start);
}

content_ref patch_job::finish() {
  if (out_.size() != new_file_size_) {
    throw std::runtime_error("apply_delta: reconstructed size mismatch");
  }
  return out_.build();
}

content_ref apply_delta_ref(const content_ref& old_data,
                            const file_delta& delta) {
  patch_job job(old_data, delta.block_size, delta.new_file_size);
  for (const delta_op& op : delta.ops) job.feed(op);
  return job.finish();
}

namespace {
constexpr std::uint8_t kDeltaMagic0 = 'd';
constexpr std::uint8_t kDeltaMagic1 = 'l';
constexpr std::uint8_t kOpCopy = 0;
constexpr std::uint8_t kOpLiteral = 1;

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void delta_wire_header(byte_buffer& out, const file_delta& delta) {
  out.push_back(kDeltaMagic0);
  out.push_back(kDeltaMagic1);
  put_varint(out, delta.block_size);
  put_varint(out, delta.new_file_size);
  put_varint(out, delta.ops.size());
}

void delta_op_header(byte_buffer& out, const delta_op& op) {
  if (op.op == delta_op::kind::copy) {
    out.push_back(kOpCopy);
    put_varint(out, op.block_index);
    put_varint(out, op.block_count);
  } else {
    out.push_back(kOpLiteral);
    put_varint(out, op.literal_size());
  }
}
}  // namespace

std::uint64_t delta_wire_size(const file_delta& delta) {
  std::uint64_t n = 2 + varint_size(delta.block_size) +
                    varint_size(delta.new_file_size) +
                    varint_size(delta.ops.size());
  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::copy) {
      n += 1 + varint_size(op.block_index) + varint_size(op.block_count);
    } else {
      const std::uint64_t lit = op.literal_size();
      n += 1 + varint_size(lit) + lit;
    }
  }
  return n + 4;  // CRC-32 trailer
}

void walk_delta_wire(const file_delta& delta,
                     const std::function<void(byte_view)>& fn) {
  std::uint32_t crc = 0;
  const auto ship = [&](byte_view piece) {
    if (piece.empty()) return;
    crc = crc32(piece, crc);
    fn(piece);
  };
  byte_buffer scratch;
  delta_wire_header(scratch, delta);
  ship(scratch);
  for (const delta_op& op : delta.ops) {
    scratch.clear();
    delta_op_header(scratch, op);
    ship(scratch);
    op.walk_literal(ship);
  }
  std::uint8_t trailer[4];
  for (int i = 0; i < 4; ++i) {
    trailer[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  fn(byte_view(trailer, 4));
}

byte_buffer serialize_delta(const file_delta& delta) {
  byte_buffer out;
  out.reserve(static_cast<std::size_t>(delta_wire_size(delta)));
  delta_wire_header(out, delta);
  for (const delta_op& op : delta.ops) {
    delta_op_header(out, op);
    op.walk_literal([&](byte_view run) { append(out, run); });
  }
  const std::uint32_t crc = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

file_delta parse_delta(byte_view wire) {
  auto fail = [](const char* why) -> file_delta {
    throw std::runtime_error(std::string("parse_delta: ") + why);
  };
  if (wire.size() < 6 || wire[0] != kDeltaMagic0 || wire[1] != kDeltaMagic1) {
    return fail("bad magic");
  }
  const std::size_t body_end = wire.size() - 4;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(wire[body_end + i]) << (8 * i);
  }
  if (crc32(wire.first(body_end)) != crc) return fail("crc mismatch");

  const byte_view body = wire.first(body_end);
  std::size_t pos = 2;
  file_delta delta;
  const auto bs = get_varint(body, pos);
  const auto nfs = get_varint(body, pos);
  const auto nops = get_varint(body, pos);
  if (!bs || !nfs || !nops) return fail("truncated header");
  delta.block_size = static_cast<std::size_t>(*bs);
  delta.new_file_size = *nfs;
  delta.ops.reserve(static_cast<std::size_t>(*nops));
  for (std::uint64_t i = 0; i < *nops; ++i) {
    if (pos >= body.size()) return fail("truncated op");
    const std::uint8_t tag = body[pos++];
    delta_op op;
    if (tag == kOpCopy) {
      op.op = delta_op::kind::copy;
      const auto bi = get_varint(body, pos);
      const auto bc = get_varint(body, pos);
      if (!bi || !bc) return fail("truncated copy op");
      op.block_index = *bi;
      op.block_count = *bc;
    } else if (tag == kOpLiteral) {
      op.op = delta_op::kind::literal;
      const auto len = get_varint(body, pos);
      if (!len || pos + *len > body.size()) return fail("truncated literal");
      op.bytes.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                      body.begin() + static_cast<std::ptrdiff_t>(pos + *len));
      pos += static_cast<std::size_t>(*len);
    } else {
      return fail("unknown op tag");
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

}  // namespace cloudsync
