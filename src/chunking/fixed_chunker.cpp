#include "chunking/fixed_chunker.hpp"

#include <cassert>

namespace cloudsync {

std::vector<chunk_ref> fixed_chunks(byte_view data, std::size_t block_size) {
  assert(block_size > 0);
  std::vector<chunk_ref> out;
  out.reserve(data.size() / block_size + 1);
  for (std::size_t off = 0; off < data.size(); off += block_size) {
    out.push_back({off, std::min(block_size, data.size() - off)});
  }
  return out;
}

}  // namespace cloudsync
