// Content-defined chunking (gear hash), the "better but more computation
// intensive" way of dividing files into blocks that the paper cites (EndRE,
// Meyer & Bolosky) and deliberately does not use for its main results.
// Provided as an extension and exercised by the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chunking/fixed_chunker.hpp"
#include "util/bytes.hpp"

namespace cloudsync {

struct cdc_params {
  std::size_t min_size = 2 * 1024;
  std::size_t avg_size = 8 * 1024;  ///< must be a power of two
  std::size_t max_size = 64 * 1024;
};

/// Split data at content-defined boundaries (gear rolling hash). Identical
/// content yields identical chunks regardless of its offset in the file,
/// which is what makes CDC robust to insertions.
std::vector<chunk_ref> content_defined_chunks(byte_view data,
                                              cdc_params params = {});

/// The 256-entry gear table (deterministic, process-wide). Exposed so fused
/// streaming pipelines can run the same cut rule incrementally and land on
/// boundaries identical to content_defined_chunks().
const std::uint64_t* gear_table();

}  // namespace cloudsync
