// The rsync algorithm (Tridgell & Mackerras), implemented from scratch:
// per-block signatures (rolling Adler-32 weak + MD5 strong), rolling-window
// delta computation against a remote signature, and delta application.
//
// This is the paper's "incremental data sync" (IDS) mechanism (§4.3): the
// client holds the new file, the cloud holds the old one; only blocks that
// cannot be matched are shipped as literals.
#pragma once

#include <cstdint>
#include <vector>

#include "store/content_ref.hpp"
#include "util/bytes.hpp"
#include "util/digest.hpp"

namespace cloudsync {

struct block_signature {
  std::uint32_t weak = 0;   ///< rolling checksum of the block
  md5_digest strong;        ///< MD5 of the block
};

/// Signature of a whole (old) file: what the receiver sends to the sender.
struct file_signature {
  std::size_t block_size = 0;
  std::uint64_t file_size = 0;
  std::vector<block_signature> blocks;  ///< last block may be short

  /// Bytes this signature occupies on the wire (weak 4 B + strong 16 B per
  /// block, plus a small header) — charged as sync metadata traffic.
  std::size_t wire_size() const { return 16 + blocks.size() * 20; }
};

file_signature compute_signature(byte_view data, std::size_t block_size);

/// One instruction of a delta: either copy a run of consecutive blocks from
/// the old file, or insert literal bytes carried in the delta itself.
struct delta_op {
  enum class kind : std::uint8_t { copy, literal };
  kind op = kind::literal;
  // copy: first block index and number of consecutive blocks.
  std::uint64_t block_index = 0;
  std::uint64_t block_count = 0;
  // literal: bytes to insert.
  byte_buffer bytes;
};

struct file_delta {
  std::size_t block_size = 0;
  std::uint64_t new_file_size = 0;
  std::vector<delta_op> ops;

  std::uint64_t literal_bytes() const;
  std::uint64_t copied_bytes(std::uint64_t old_file_size) const;
};

/// Compute the delta that transforms the signed old file into `new_data`.
file_delta compute_delta(const file_signature& sig, byte_view new_data);

/// Reconstruct the new file from the old file content and a delta.
/// Throws std::runtime_error if the delta references blocks out of range.
byte_buffer apply_delta(byte_view old_data, const file_delta& delta);

/// Rope-sharing reconstruction: copy ops become sub-ranges of the old rope
/// (no bytes move), only literal ops intern fresh content — so a version
/// chain built by deltas costs O(changed bytes), not O(file size).
content_ref apply_delta_ref(const content_ref& old_data,
                            const file_delta& delta);

/// Wire format (what the client actually uploads): varint-framed ops with a
/// CRC-32 trailer.
byte_buffer serialize_delta(const file_delta& delta);
file_delta parse_delta(byte_view wire);

}  // namespace cloudsync
