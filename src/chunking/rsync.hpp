// The rsync algorithm (Tridgell & Mackerras), implemented from scratch:
// per-block signatures (rolling Adler-32 weak + MD5 strong), rolling-window
// delta computation against a remote signature, and delta application.
//
// This is the paper's "incremental data sync" (IDS) mechanism (§4.3): the
// client holds the new file, the cloud holds the old one; only blocks that
// cannot be matched are shipped as literals.
//
// Two API layers share one implementation:
//   - whole-buffer entry points (compute_signature / compute_delta /
//     apply_delta) for callers that already hold flat bytes, and
//   - resumable incremental jobs (sig_job / delta_job / patch_job) with a
//     feed(window)/finish() pump, so multi-GB files can be signed, diffed,
//     and patched over fixed-size buffers walked off a content_ref rope —
//     working memory stays O(block_size + feed window), never O(file).
// The whole-buffer functions are thin pumps over the jobs, so both layers
// produce bit-identical signatures, deltas, and wire bytes by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "store/content_ref.hpp"
#include "util/adler32.hpp"
#include "util/bytes.hpp"
#include "util/digest.hpp"
#include "util/md5.hpp"

namespace cloudsync {

/// Thrown for a zero block size. This used to be an assert, which vanished
/// under NDEBUG and left compute_signature's `off += block_size` loop — and
/// every release build calling it — spinning forever.
struct invalid_block_size : std::invalid_argument {
  invalid_block_size()
      : std::invalid_argument("rsync: block_size must be > 0") {}
};

struct block_signature {
  std::uint32_t weak = 0;   ///< rolling checksum of the block
  md5_digest strong;        ///< MD5 of the block
};

/// Signature of a whole (old) file: what the receiver sends to the sender.
struct file_signature {
  std::size_t block_size = 0;
  std::uint64_t file_size = 0;
  std::vector<block_signature> blocks;  ///< last block may be short

  /// Bytes this signature occupies on the wire (weak 4 B + strong 16 B per
  /// block, plus a small header) — charged as sync metadata traffic.
  std::size_t wire_size() const { return 16 + blocks.size() * 20; }
};

/// Incremental signature computation: feed the file's bytes in order, in
/// windows of any size, then finish(). The weak and strong per-block sums
/// both stream, so the result is independent of how the input is windowed
/// and equals compute_signature of the concatenation.
class sig_job {
 public:
  /// Throws invalid_block_size when block_size == 0.
  explicit sig_job(std::size_t block_size, std::uint64_t size_hint = 0);

  void feed(byte_view window);
  file_signature finish();

 private:
  file_signature sig_;
  std::uint32_t a_ = 0, b_ = 0;  ///< weak sums of the open block
  md5_hasher strong_;            ///< strong hash of the open block
  std::size_t fill_ = 0;         ///< bytes accumulated in the open block
  bool finished_ = false;
};

/// Throws invalid_block_size when block_size == 0.
file_signature compute_signature(byte_view data, std::size_t block_size);

/// Same signature, computed by walking a rope's segments — no flatten.
file_signature compute_signature_ref(const content_ref& data,
                                     std::size_t block_size);

/// One instruction of a delta: either copy a run of consecutive blocks from
/// the old file, or insert literal bytes. Literal payloads come in two
/// equivalent representations: owned bytes (`bytes`, the legacy/parse form)
/// or a shared range of the new file's rope (`ref`, the streaming form —
/// zero-copy, pinning the underlying chunks). When `ref` is non-empty it is
/// the payload and `bytes` is ignored; serialization and application treat
/// both forms identically, so the wire format cannot tell them apart.
struct delta_op {
  enum class kind : std::uint8_t { copy, literal };
  kind op = kind::literal;
  // copy: first block index and number of consecutive blocks.
  std::uint64_t block_index = 0;
  std::uint64_t block_count = 0;
  // literal: bytes to insert.
  byte_buffer bytes;
  content_ref ref;

  std::uint64_t literal_size() const {
    if (op != kind::literal) return 0;
    return ref.empty() ? bytes.size() : ref.size();
  }
  /// Visit the literal payload (either form) as zero-copy views, in order.
  void walk_literal(const std::function<void(byte_view)>& fn) const;
};

struct file_delta {
  std::size_t block_size = 0;
  std::uint64_t new_file_size = 0;
  std::vector<delta_op> ops;

  std::uint64_t literal_bytes() const;
  std::uint64_t copied_bytes(std::uint64_t old_file_size) const;
};

/// Incremental delta computation: feed the NEW file's bytes in order, then
/// finish(). Emits copy/literal runs as events — literal runs are [offset,
/// length) ranges of the new file, so the job never owns payload bytes; the
/// driver decides whether to materialize them (compute_delta) or reference
/// them out of a rope (compute_delta_ref). Internally buffers only the
/// unresolved window, bounded by block_size + the largest fed window.
/// The signature must outlive the job.
class delta_job {
 public:
  struct event {
    bool copy = false;
    std::uint64_t block_index = 0;  ///< copy: first old block of the run
    std::uint64_t block_count = 0;  ///< copy: blocks in the run
    std::uint64_t offset = 0;       ///< literal: start offset in the new file
    std::uint64_t length = 0;       ///< literal: run length
  };

  explicit delta_job(const file_signature& sig);

  void feed(byte_view window);
  const std::vector<event>& finish();
  std::uint64_t fed() const { return fed_; }

 private:
  void drain(bool final_window);
  byte_view buffered(std::uint64_t pos, std::size_t len) const;
  void compact();
  void emit_copy(std::uint64_t block);
  void emit_literal(std::uint64_t offset, std::uint64_t length);

  const file_signature& sig_;
  const std::size_t bs_;
  /// No full-block matching possible (zero block size or blockless
  /// signature): the whole new file resolves at finish().
  const bool degenerate_;
  std::uint64_t full_blocks_ = 0;
  std::unordered_multimap<std::uint32_t, std::uint64_t> weak_index_;

  rolling_checksum rc_;
  bool window_valid_ = false;
  std::uint64_t pos_ = 0;   ///< scan position in the new file
  std::uint64_t fed_ = 0;   ///< total bytes fed so far
  byte_buffer buf_;         ///< holds new-file bytes [base_, fed_)
  std::uint64_t base_ = 0;
  md5_hasher whole_md5_;    ///< degenerate mode: strong sum of the whole file
  std::vector<event> events_;
  bool finished_ = false;
};

/// Compute the delta that transforms the signed old file into `new_data`.
file_delta compute_delta(const file_signature& sig, byte_view new_data);

/// Streaming form: diff a rope against the signature by feeding fixed-size
/// windows (window_bytes) to a delta_job; literal ops reference sub-ranges
/// of `new_data` instead of copying them. Identical ops modulo payload
/// representation — and identical wire bytes — to compute_delta on the
/// flattened rope.
file_delta compute_delta_ref(const file_signature& sig,
                             const content_ref& new_data,
                             std::size_t window_bytes = 256 * 1024);

/// The raw event stream of that diff: pure indices and offsets, no payload
/// bytes and no rope pins — safe to cache process-wide (a memoized delta
/// holding rope refs would pin content store chunks forever).
std::vector<delta_job::event> compute_delta_events(
    const file_signature& sig, const content_ref& new_data,
    std::size_t window_bytes = 256 * 1024);

/// Materialize a file_delta from an event stream against the new content it
/// was computed from: literal events become zero-copy sub-ranges of the
/// rope. compute_delta_ref == delta_from_events over compute_delta_events.
file_delta delta_from_events(std::size_t block_size,
                             const content_ref& new_data,
                             const std::vector<delta_job::event>& events);

/// Incremental patch: feed delta ops in order; copy runs splice shared
/// ranges of the old rope (no bytes move), literals intern fresh content.
/// finish() validates the reconstructed size. The rope form of the
/// rsync receiver's output loop.
class patch_job {
 public:
  patch_job(content_ref old_data, std::size_t block_size,
            std::uint64_t new_file_size);

  void feed(const delta_op& op);
  content_ref finish();

 private:
  content_ref old_;
  std::size_t bs_;
  std::uint64_t new_file_size_;
  std::uint64_t old_blocks_;
  content_ref::builder out_;
};

/// Reconstruct the new file from the old file content and a delta.
/// Throws std::runtime_error if the delta references blocks out of range.
byte_buffer apply_delta(byte_view old_data, const file_delta& delta);

/// Rope-sharing reconstruction: copy ops become sub-ranges of the old rope
/// (no bytes move), only literal ops intern fresh content — so a version
/// chain built by deltas costs O(changed bytes), not O(file size).
content_ref apply_delta_ref(const content_ref& old_data,
                            const file_delta& delta);

/// Wire format (what the client actually uploads): varint-framed ops with a
/// CRC-32 trailer.
byte_buffer serialize_delta(const file_delta& delta);
file_delta parse_delta(byte_view wire);

/// Exact size of serialize_delta(delta) without building the buffer.
std::uint64_t delta_wire_size(const file_delta& delta);

/// Stream the exact bytes of serialize_delta(delta) — header, ops, literal
/// payloads (from either representation), CRC-32 trailer — as bounded views,
/// without materializing the wire buffer.
void walk_delta_wire(const file_delta& delta,
                     const std::function<void(byte_view)>& fn);

}  // namespace cloudsync
