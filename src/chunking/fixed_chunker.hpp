// Fixed-size chunking: the "simple and natural way" the paper divides files
// into blocks (head-anchored, fixed block size) for block-level dedup.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.hpp"

namespace cloudsync {

struct chunk_ref {
  std::size_t offset = 0;
  std::size_t size = 0;
};

/// Split [0, data.size()) into consecutive blocks of `block_size`; the final
/// block may be short. Empty input yields no chunks. block_size must be > 0.
std::vector<chunk_ref> fixed_chunks(byte_view data, std::size_t block_size);

/// View of a chunk within its parent buffer.
inline byte_view slice(byte_view data, chunk_ref c) {
  return data.subspan(c.offset, c.size);
}

}  // namespace cloudsync
