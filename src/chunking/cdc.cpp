#include "chunking/cdc.hpp"

#include <array>
#include <bit>
#include <cassert>

namespace cloudsync {

namespace {

// Deterministic pseudo-random gear table (splitmix64 over the byte value).
constexpr std::array<std::uint64_t, 256> make_gear_table() {
  std::array<std::uint64_t, 256> table{};
  std::uint64_t x = 0x243f6a8885a308d3ull;  // pi digits as seed
  for (auto& v : table) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    v = z ^ (z >> 31);
  }
  return table;
}

constexpr auto kGear = make_gear_table();

}  // namespace

const std::uint64_t* gear_table() { return kGear.data(); }

std::vector<chunk_ref> content_defined_chunks(byte_view data,
                                              cdc_params params) {
  assert(params.min_size > 0 && params.min_size <= params.avg_size &&
         params.avg_size <= params.max_size);
  assert((params.avg_size & (params.avg_size - 1)) == 0 &&
         "avg_size must be a power of two");
  const std::uint64_t mask = params.avg_size - 1;

  // Min-size skipping: the cut test (h & mask) == 0 reads only the low
  // log2(avg_size) bits of h, and h = Σ_j gear[data[j]] << (len−1−j), so
  // those bits depend only on the last log2(avg_size) bytes hashed. The
  // first test fires at offset min_size−1, so hashing can start at offset
  // min_size − mask_bits with h = 0 and every test result — hence every
  // boundary — is identical to hashing from the chunk start.
  // (skip must also not move past the first test offset itself, hence the
  // max(mask_bits, 1) clamp for degenerate 1-byte avg sizes.)
  const std::size_t mask_bits = std::max<std::size_t>(
      static_cast<std::size_t>(std::countr_zero(params.avg_size)), 1);
  const std::size_t skip =
      params.min_size > mask_bits ? params.min_size - mask_bits : 0;

  std::vector<chunk_ref> out;
  out.reserve(data.size() / params.avg_size + 1);
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t remain = data.size() - start;
    if (remain <= params.min_size) {
      out.push_back({start, remain});
      break;
    }
    const std::size_t limit = std::min(remain, params.max_size);
    const std::uint8_t* p = data.data() + start;
    std::uint64_t h = 0;
    std::size_t len;
    for (len = skip; len < limit; ++len) {
      h = (h << 1) + kGear[p[len]];
      if (len + 1 >= params.min_size && (h & mask) == 0) {
        ++len;
        break;
      }
    }
    out.push_back({start, len});
    start += len;
  }
  return out;
}

}  // namespace cloudsync
