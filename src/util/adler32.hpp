// Adler-32-style rolling weak checksum, as used by rsync.
//
// The window form supports O(1) slide: remove the outgoing byte, add the
// incoming byte. This is the "weak" half of the rsync signature; MD5 is the
// strong half.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace cloudsync {

/// One-shot weak checksum of a block (rsync's a/b split packed into 32 bits).
std::uint32_t weak_checksum(byte_view block);

/// Streaming form: fold `data` into running (a, b) sums, exactly as if the
/// bytes had been fed to the naive per-byte loop. Lets fused pipelines
/// interleave the weak checksum with other kernels over the same tile;
/// pack the result as (b << 16) | (a & 0xffff).
void weak_accumulate(byte_view data, std::uint32_t& a, std::uint32_t& b);

/// Rolling window over a fixed block size.
///
///   rolling_checksum rc(block_size);
///   rc.reset(first_window);
///   while (...) { rc.roll(outgoing, incoming); use rc.value(); }
class rolling_checksum {
 public:
  explicit rolling_checksum(std::size_t window) : window_(window) {}

  /// Initialise from a full window (data.size() must equal window()).
  void reset(byte_view data);

  /// Slide one byte: `out` leaves the window, `in` enters.
  void roll(std::uint8_t out, std::uint8_t in) {
    a_ -= out;
    a_ += in;
    b_ -= static_cast<std::uint32_t>(window_) * out;
    b_ += a_;
  }

  std::uint32_t value() const { return (b_ << 16) | (a_ & 0xffffu); }
  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::uint32_t a_ = 0;  // sum of bytes (mod 2^16 at extraction)
  std::uint32_t b_ = 0;  // sum of prefix sums
};

}  // namespace cloudsync
