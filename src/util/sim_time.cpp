#include "util/sim_time.hpp"

#include <cstdio>

namespace cloudsync {

std::string sim_time::str() const {
  char buf[48];
  if (us_ < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(us_));
  } else if (us_ < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", msec());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", sec());
  }
  return buf;
}

}  // namespace cloudsync
