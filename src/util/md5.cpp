#include "util/md5.hpp"

#include <cstring>

namespace cloudsync {

namespace {

constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u};

// Per-round left-rotate amounts.
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|), precomputed per RFC 1321.
constexpr std::uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

inline std::uint32_t rotl(std::uint32_t v, int s) {
  return v << s | v >> (32 - s);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
#else
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
#endif
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

md5_hasher::md5_hasher() { std::memcpy(state_, kInit, sizeof(state_)); }

// Four explicit 16-step groups (RFC 1321 FF/GG/HH/II) with the per-round
// branches and register shuffle of the naive loop unrolled away; identical
// arithmetic, identical digests.
void md5_hasher::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

#define CLOUDSYNC_MD5_STEP(F, a, b, c, d, g, i)                           \
  a = b + rotl(a + (F) + kSine[i] + m[g], kShift[i])
#define CLOUDSYNC_MD5_F ((b & c) | (~b & d))
#define CLOUDSYNC_MD5_G ((d & b) | (~d & c))
#define CLOUDSYNC_MD5_H (b ^ c ^ d)
#define CLOUDSYNC_MD5_I (c ^ (b | ~d))

  for (int i = 0; i < 16; i += 4) {
    CLOUDSYNC_MD5_STEP(CLOUDSYNC_MD5_F, a, b, c, d, i + 0, i + 0);
    CLOUDSYNC_MD5_STEP((a & b) | (~a & c), d, a, b, c, i + 1, i + 1);
    CLOUDSYNC_MD5_STEP((d & a) | (~d & b), c, d, a, b, i + 2, i + 2);
    CLOUDSYNC_MD5_STEP((c & d) | (~c & a), b, c, d, a, i + 3, i + 3);
  }
  for (int i = 16; i < 32; i += 4) {
    CLOUDSYNC_MD5_STEP(CLOUDSYNC_MD5_G, a, b, c, d, (5 * (i + 0) + 1) & 15,
                       i + 0);
    CLOUDSYNC_MD5_STEP((c & a) | (~c & b), d, a, b, c, (5 * (i + 1) + 1) & 15,
                       i + 1);
    CLOUDSYNC_MD5_STEP((b & d) | (~b & a), c, d, a, b, (5 * (i + 2) + 1) & 15,
                       i + 2);
    CLOUDSYNC_MD5_STEP((a & c) | (~a & d), b, c, d, a, (5 * (i + 3) + 1) & 15,
                       i + 3);
  }
  for (int i = 32; i < 48; i += 4) {
    CLOUDSYNC_MD5_STEP(CLOUDSYNC_MD5_H, a, b, c, d, (3 * (i + 0) + 5) & 15,
                       i + 0);
    CLOUDSYNC_MD5_STEP(a ^ b ^ c, d, a, b, c, (3 * (i + 1) + 5) & 15, i + 1);
    CLOUDSYNC_MD5_STEP(d ^ a ^ b, c, d, a, b, (3 * (i + 2) + 5) & 15, i + 2);
    CLOUDSYNC_MD5_STEP(c ^ d ^ a, b, c, d, a, (3 * (i + 3) + 5) & 15, i + 3);
  }
  for (int i = 48; i < 64; i += 4) {
    CLOUDSYNC_MD5_STEP(CLOUDSYNC_MD5_I, a, b, c, d, (7 * (i + 0)) & 15, i + 0);
    CLOUDSYNC_MD5_STEP(b ^ (a | ~c), d, a, b, c, (7 * (i + 1)) & 15, i + 1);
    CLOUDSYNC_MD5_STEP(a ^ (d | ~b), c, d, a, b, (7 * (i + 2)) & 15, i + 2);
    CLOUDSYNC_MD5_STEP(d ^ (c | ~a), b, c, d, a, (7 * (i + 3)) & 15, i + 3);
  }
#undef CLOUDSYNC_MD5_STEP
#undef CLOUDSYNC_MD5_F
#undef CLOUDSYNC_MD5_G
#undef CLOUDSYNC_MD5_H
#undef CLOUDSYNC_MD5_I

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

md5_hasher& md5_hasher::update(byte_view data) {
  total_len_ += data.size();
  std::size_t off = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }

  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }

  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
  return *this;
}

md5_digest md5_hasher::finish() {
  const std::uint64_t bit_len = total_len_ * 8;

  // Pad: 0x80, zeros, then the 64-bit little-endian bit length.
  const std::uint8_t pad_byte = 0x80;
  update(byte_view{&pad_byte, 1});
  static constexpr std::uint8_t zeros[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t need = buffer_len_ < 56 ? 56 - buffer_len_
                                              : 64 - buffer_len_ + 56;
    update(byte_view{zeros, std::min<std::size_t>(need, 64 - buffer_len_)});
  }
  std::uint8_t len_bytes[8];
  store_le32(len_bytes, static_cast<std::uint32_t>(bit_len));
  store_le32(len_bytes + 4, static_cast<std::uint32_t>(bit_len >> 32));
  // Bypass update(): total_len_ must not include padding, and update would
  // also re-count it. Direct buffer fill keeps the arithmetic exact.
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  process_block(buffer_);

  md5_digest out;
  for (int i = 0; i < 4; ++i) store_le32(out.bytes.data() + 4 * i, state_[i]);
  return out;
}

md5_digest md5(byte_view data) { return md5_hasher{}.update(data).finish(); }

}  // namespace cloudsync
