#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace cloudsync {

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KB", "MB", "GB",
                                                        "TB"};
  std::size_t idx = 0;
  while (bytes >= 1024.0 && idx + 1 < suffix.size()) {
    bytes /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, suffix[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix[idx]);
  }
  return buf;
}

}  // namespace cloudsync
