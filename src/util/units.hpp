// Byte-size literals and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

namespace cloudsync {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GiB; }
}  // namespace literals

/// "12.5 MB"-style rendering used by the bench reporters (power-of-two units,
/// matching how the paper tabulates traffic).
std::string format_bytes(double bytes);

/// Megabits/second to bytes/second.
constexpr double mbps_to_bytes_per_sec(double mbps) {
  return mbps * 1'000'000.0 / 8.0;
}

}  // namespace cloudsync
