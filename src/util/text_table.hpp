// Minimal aligned text-table printer used by the bench reporters to render
// paper-style tables on stdout.
#pragma once

#include <string>
#include <vector>

namespace cloudsync {

class text_table {
 public:
  /// Set the header row. Clears any previous contents.
  void header(std::vector<std::string> cells);

  /// Append a data row (may be ragged; short rows are padded).
  void row(std::vector<std::string> cells);

  /// Render with column alignment and a separator under the header.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace cloudsync
