#include "util/text_table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace cloudsync {

void text_table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  rows_.clear();
}

void text_table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string text_table::str() const {
  // Compute column widths over header + all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      out += cell;
      if (i + 1 < cols) {
        out.append(width[i] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit(out, header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(out, r);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace cloudsync
