#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cloudsync {

void running_stats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double running_stats::stddev() const { return std::sqrt(variance()); }

empirical_cdf::empirical_cdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double empirical_cdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double empirical_cdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> empirical_cdf::points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || max_points == 0) return out;
  const std::size_t step = std::max<std::size_t>(1, sorted_.size() / max_points);
  for (std::size_t i = 0; i < sorted_.size(); i += step) {
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  if (out.back().first != sorted_.back()) {
    out.emplace_back(sorted_.back(), 1.0);
  }
  return out;
}

}  // namespace cloudsync
