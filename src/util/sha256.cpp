#include "util/sha256.hpp"

#include <cstring>

namespace cloudsync {

namespace {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-4 §4.2.2).
constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

inline std::uint32_t rotr(std::uint32_t v, int s) {
  return v >> s | v << (32 - s);
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap32(v);
#else
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
#endif
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

sha256_hasher::sha256_hasher() {
  // Fractional parts of the square roots of the first 8 primes.
  state_[0] = 0x6a09e667u;
  state_[1] = 0xbb67ae85u;
  state_[2] = 0x3c6ef372u;
  state_[3] = 0xa54ff53au;
  state_[4] = 0x510e527fu;
  state_[5] = 0x9b05688cu;
  state_[6] = 0x1f83d9abu;
  state_[7] = 0x5be0cd19u;
}

// Compression rounds unrolled via register rotation, with the message
// schedule kept as a rolling 16-word ring instead of a 64-word array. Every
// operation is the same mod-2^32 arithmetic as the FIPS reference loop, only
// regrouped, so digests are bit-identical.
void sha256_hasher::process_blocks(const std::uint8_t* p, std::size_t blocks) {
  std::uint32_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  std::uint32_t s4 = state_[4], s5 = state_[5], s6 = state_[6], s7 = state_[7];

  while (blocks-- > 0) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(p + 4 * i);
    p += 64;

    std::uint32_t a = s0, b = s1, c = s2, d = s3;
    std::uint32_t e = s4, f = s5, g = s6, h = s7;

#define CLOUDSYNC_SHA256_RND(a, b, c, d, e, f, g, h, i, wi)               \
  {                                                                       \
    const std::uint32_t t1 = h + (rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)) + \
                             ((e & f) ^ (~e & g)) + kRound[i] + (wi);     \
    const std::uint32_t t2 = (rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)) +   \
                             ((a & b) ^ (a & c) ^ (b & c));               \
    d += t1;                                                              \
    h = t1 + t2;                                                          \
  }
#define CLOUDSYNC_SHA256_W(j)                                              \
  (w[(j) & 15] += (rotr(w[((j) - 15) & 15], 7) ^ rotr(w[((j) - 15) & 15], 18) ^ \
                   (w[((j) - 15) & 15] >> 3)) +                            \
                  w[((j) - 7) & 15] +                                      \
                  (rotr(w[((j) - 2) & 15], 17) ^ rotr(w[((j) - 2) & 15], 19) ^ \
                   (w[((j) - 2) & 15] >> 10)))

    for (int i = 0; i < 16; i += 8) {
      CLOUDSYNC_SHA256_RND(a, b, c, d, e, f, g, h, i + 0, w[i + 0]);
      CLOUDSYNC_SHA256_RND(h, a, b, c, d, e, f, g, i + 1, w[i + 1]);
      CLOUDSYNC_SHA256_RND(g, h, a, b, c, d, e, f, i + 2, w[i + 2]);
      CLOUDSYNC_SHA256_RND(f, g, h, a, b, c, d, e, i + 3, w[i + 3]);
      CLOUDSYNC_SHA256_RND(e, f, g, h, a, b, c, d, i + 4, w[i + 4]);
      CLOUDSYNC_SHA256_RND(d, e, f, g, h, a, b, c, i + 5, w[i + 5]);
      CLOUDSYNC_SHA256_RND(c, d, e, f, g, h, a, b, i + 6, w[i + 6]);
      CLOUDSYNC_SHA256_RND(b, c, d, e, f, g, h, a, i + 7, w[i + 7]);
    }
    for (int i = 16; i < 64; i += 8) {
      CLOUDSYNC_SHA256_RND(a, b, c, d, e, f, g, h, i + 0,
                           CLOUDSYNC_SHA256_W(i + 0));
      CLOUDSYNC_SHA256_RND(h, a, b, c, d, e, f, g, i + 1,
                           CLOUDSYNC_SHA256_W(i + 1));
      CLOUDSYNC_SHA256_RND(g, h, a, b, c, d, e, f, i + 2,
                           CLOUDSYNC_SHA256_W(i + 2));
      CLOUDSYNC_SHA256_RND(f, g, h, a, b, c, d, e, i + 3,
                           CLOUDSYNC_SHA256_W(i + 3));
      CLOUDSYNC_SHA256_RND(e, f, g, h, a, b, c, d, i + 4,
                           CLOUDSYNC_SHA256_W(i + 4));
      CLOUDSYNC_SHA256_RND(d, e, f, g, h, a, b, c, i + 5,
                           CLOUDSYNC_SHA256_W(i + 5));
      CLOUDSYNC_SHA256_RND(c, d, e, f, g, h, a, b, i + 6,
                           CLOUDSYNC_SHA256_W(i + 6));
      CLOUDSYNC_SHA256_RND(b, c, d, e, f, g, h, a, i + 7,
                           CLOUDSYNC_SHA256_W(i + 7));
    }
#undef CLOUDSYNC_SHA256_RND
#undef CLOUDSYNC_SHA256_W

    s0 += a;
    s1 += b;
    s2 += c;
    s3 += d;
    s4 += e;
    s5 += f;
    s6 += g;
    s7 += h;
  }

  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  state_[4] = s4;
  state_[5] = s5;
  state_[6] = s6;
  state_[7] = s7;
}

sha256_hasher& sha256_hasher::update(byte_view data) {
  total_len_ += data.size();
  std::size_t off = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off = take;
    if (buffer_len_ == 64) {
      process_blocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }

  if (const std::size_t whole = (data.size() - off) / 64; whole > 0) {
    process_blocks(data.data() + off, whole);
    off += whole * 64;
  }

  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
  return *this;
}

sha256_digest sha256_hasher::finish() {
  const std::uint64_t bit_len = total_len_ * 8;

  const std::uint8_t pad_byte = 0x80;
  update(byte_view{&pad_byte, 1});
  static constexpr std::uint8_t zeros[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t need = buffer_len_ < 56 ? 56 - buffer_len_
                                              : 64 - buffer_len_;
    update(byte_view{zeros, need});
  }
  std::uint8_t len_bytes[8];
  store_be32(len_bytes, static_cast<std::uint32_t>(bit_len >> 32));
  store_be32(len_bytes + 4, static_cast<std::uint32_t>(bit_len));
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  process_blocks(buffer_, 1);

  sha256_digest out;
  for (int i = 0; i < 8; ++i) store_be32(out.bytes.data() + 4 * i, state_[i]);
  return out;
}

sha256_digest sha256(byte_view data) {
  return sha256_hasher{}.update(data).finish();
}

}  // namespace cloudsync
