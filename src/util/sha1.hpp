// SHA-1 (FIPS 180-4), implemented from scratch.
//
// Content fingerprinting only (dedup indexes, object ETags) — never a
// security boundary in this library.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/digest.hpp"

namespace cloudsync {

/// Incremental SHA-1 hasher; same usage contract as md5_hasher.
class sha1_hasher {
 public:
  sha1_hasher();

  sha1_hasher& update(byte_view data);
  sha1_digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[5];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
sha1_digest sha1(byte_view data);

}  // namespace cloudsync
