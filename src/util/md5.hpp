// MD5 (RFC 1321), implemented from scratch.
//
// Used for rsync strong block checksums and the Table-3 trace block hashes.
// MD5 is cryptographically broken; here it is a content fingerprint exactly as
// the paper (and rsync) use it, never a security boundary.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/digest.hpp"

namespace cloudsync {

/// Incremental MD5 hasher.
///
///   md5_hasher h;
///   h.update(part1).update(part2);
///   md5_digest d = h.finish();
///
/// finish() may be called once; the hasher is then spent.
class md5_hasher {
 public:
  md5_hasher();

  md5_hasher& update(byte_view data);
  md5_digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
md5_digest md5(byte_view data);

}  // namespace cloudsync
