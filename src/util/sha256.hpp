// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Primary fingerprint for the dedup index (collision-resistant enough that
// the engine treats fingerprint equality as content equality).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/digest.hpp"

namespace cloudsync {

/// Incremental SHA-256 hasher; same usage contract as md5_hasher.
class sha256_hasher {
 public:
  sha256_hasher();

  sha256_hasher& update(byte_view data);
  sha256_digest finish();

 private:
  void process_blocks(const std::uint8_t* data, std::size_t blocks);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
sha256_digest sha256(byte_view data);

}  // namespace cloudsync
