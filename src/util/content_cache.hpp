// Process-wide memoization for the simulator's content-derived hot paths.
//
// The sync pipeline recomputes pure functions of file content constantly:
// every upload runs the LZSS compressor to learn the wire size of the same
// bytes the previous experiment (or the previous service in the same table
// row) already compressed, the dedup engine fingerprints the same content on
// analyze and again on commit, and incremental sync re-signs and re-deltas
// contents that seeded generators reproduce identically across bench cells.
//
// content_memo<V> is the shared machinery: a bounded, thread-safe LRU keyed
// by (fast 64-bit content hash, content length, caller salt). The salt
// carries whatever else the memoized function depends on (compression level,
// rsync block size, the old file's identity for deltas). Thread safety lets
// the parallel experiment runner share one instance across workers.
//
// Correctness: values are only ever what the compute function returned for
// the same key, so cached results are byte-identical to recomputation —
// up to 64-bit key-hash collisions, which the length+salt keying makes
// vanishingly unlikely (~2^-64 per content pair; the same regime as the
// dedup literature's hash-equality assumption, with far fewer pairs).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/bytes.hpp"

namespace cloudsync {

/// Fast non-cryptographic 64-bit hash of arbitrary bytes: four independent
/// FNV-style lanes (for instruction-level parallelism on long inputs)
/// folded through a splitmix64 finalizer. Orders of magnitude cheaper than
/// the compressor/digest runs it stands in for.
std::uint64_t content_hash64(byte_view data);

/// Streaming equivalent of content_hash64: feed bytes in any split and
/// finish() returns exactly content_hash64 of the concatenation. Lets rope-
/// backed content (content_ref) reproduce every memo key the flat byte path
/// computes — wire-size cache, signature/delta memos, journal content hashes —
/// without flattening the rope first.
class content_hasher64 {
 public:
  void update(byte_view data);
  /// Hash of everything fed so far (does not consume state).
  std::uint64_t finish() const;

 private:
  void stride(const std::uint8_t* p);

  std::uint64_t h0_ = 0xcbf29ce484222325ULL;
  std::uint64_t h1_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2_ = 0xc2b2ae3d27d4eb4fULL;
  std::uint64_t h3_ = 0x165667b19e3779f9ULL;
  std::uint8_t carry_[32] = {};  ///< partial stride awaiting 32 bytes
  std::size_t carry_len_ = 0;
};

/// splitmix64 finalizer — useful for building salts from several inputs.
inline std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

struct content_cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Bounded thread-safe LRU memo of a pure function of (content, salt).
template <typename Value>
class content_memo {
 public:
  explicit content_memo(std::size_t capacity = 16 * 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  content_memo(const content_memo&) = delete;
  content_memo& operator=(const content_memo&) = delete;

  /// Cached value for (content, salt), or compute(), store, and return it.
  /// The compute call runs outside the lock — it is the expensive part, and
  /// holding the mutex across it would serialize the parallel runner.
  template <typename Fn>
  Value get_or_compute(byte_view content, std::uint64_t salt, Fn&& compute) {
    return get_or_compute_keyed(content_hash64(content), content.size(), salt,
                                std::forward<Fn>(compute));
  }

  /// Same, but with a caller-supplied key — for memoizing functions whose
  /// input is not a byte string (e.g. seeded content generation keyed by the
  /// generator state). `key_hash` must be uniformly distributed already.
  template <typename Fn>
  Value get_or_compute_keyed(std::uint64_t key_hash, std::uint64_t length,
                             std::uint64_t salt, Fn&& compute) {
    const key k{key_hash, length, salt};
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto* hit = find_locked(k)) return *hit;
    }
    Value value = compute();
    std::lock_guard<std::mutex> lock(mu_);
    store_locked(k, value);
    return value;
  }

  std::optional<Value> find(byte_view content, std::uint64_t salt) {
    const key k{content_hash64(content), content.size(), salt};
    std::lock_guard<std::mutex> lock(mu_);
    if (auto* hit = find_locked(k)) return *hit;
    return std::nullopt;
  }

  void store(byte_view content, std::uint64_t salt, Value value) {
    const key k{content_hash64(content), content.size(), salt};
    std::lock_guard<std::mutex> lock(mu_);
    store_locked(k, std::move(value));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }
  std::size_t capacity() const { return capacity_; }

  content_cache_stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    stats_ = {};
  }

 private:
  struct key {
    std::uint64_t hash = 0;
    std::uint64_t length = 0;
    std::uint64_t salt = 0;
    bool operator==(const key&) const = default;
  };
  struct key_hasher {
    std::size_t operator()(const key& k) const noexcept {
      // hash is already uniform; fold in length and salt.
      return static_cast<std::size_t>(
          k.hash ^ (k.length * 0x9e3779b97f4a7c15ULL) ^ mix64(k.salt));
    }
  };
  struct entry {
    key k;
    Value value;
  };

  Value* find_locked(const key& k) {
    const auto it = index_.find(k);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    ++stats_.hits;
    return &it->second->value;
  }

  void store_locked(const key& k, Value value) {
    const auto it = index_.find(k);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= capacity_) {
      index_.erase(lru_.back().k);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(entry{k, std::move(value)});
    index_[k] = lru_.begin();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  ///< front = most recently used
  std::unordered_map<key, typename std::list<entry>::iterator, key_hasher>
      index_;
  content_cache_stats stats_;
};

/// The wire-size cache the sync client consults in shipped_size():
/// (content, level) → compressed payload bytes.
class content_cache {
 public:
  explicit content_cache(std::size_t capacity = 16 * 1024)
      : sizes_(capacity) {}

  /// Memoized wire-payload size: returns the cached result for
  /// (content, level) or computes, stores, and returns it.
  std::uint64_t shipped_size(byte_view content, int level,
                             std::uint64_t (*compute)(byte_view, int)) {
    return sizes_.get_or_compute(
        content, static_cast<std::uint64_t>(level),
        [&] { return compute(content, level); });
  }

  /// Keyed variant for rope-backed content: `key_hash` must equal
  /// content_hash64 of the flat bytes, so rope and flat callers share
  /// entries for the same logical content.
  template <typename Fn>
  std::uint64_t shipped_size_keyed(std::uint64_t key_hash,
                                   std::uint64_t length, int level,
                                   Fn&& compute) {
    return sizes_.get_or_compute_keyed(key_hash, length,
                                       static_cast<std::uint64_t>(level),
                                       std::forward<Fn>(compute));
  }

  std::optional<std::uint64_t> find_size(byte_view content, int level) {
    return sizes_.find(content, static_cast<std::uint64_t>(level));
  }
  void store_size(byte_view content, int level, std::uint64_t size) {
    sizes_.store(content, static_cast<std::uint64_t>(level), size);
  }

  std::size_t size() const { return sizes_.size(); }
  std::size_t capacity() const { return sizes_.capacity(); }
  content_cache_stats stats() const { return sizes_.stats(); }
  void clear() { sizes_.clear(); }

  /// The process-wide cache shared by default across experiments (and, under
  /// the parallel runner, across worker threads).
  static content_cache& global();

 private:
  content_memo<std::uint64_t> sizes_;
};

}  // namespace cloudsync
