#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cloudsync {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t v, int s) {
  return v << s | v >> (64 - s);
}

// A small dictionary is enough: what matters is realistic compressibility of
// "random English words", not linguistics.
constexpr const char* kWords[] = {
    "the",     "of",      "and",      "to",       "in",      "is",
    "you",     "that",    "it",       "he",       "was",     "for",
    "on",      "are",     "as",       "with",     "his",     "they",
    "cloud",   "storage", "service",  "traffic",  "sync",    "data",
    "file",    "update",  "network",  "measure",  "system",  "design",
    "block",   "chunk",   "user",     "client",   "server",  "folder",
    "upload",  "download","bandwidth","latency",  "energy",  "mobile",
    "device",  "protocol","transfer", "efficient","metric",  "paper"};
constexpr std::size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

}  // namespace

rng::rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  return lo + uniform(hi - lo + 1);
}

double rng::uniform_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p) { return uniform_real() < p; }

double rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform_real();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_real();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double rng::exponential(double lambda) {
  double u = uniform_real();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::uint64_t rng::zipf(std::uint64_t n, double s) {
  // Inverse-CDF on the continuous approximation of the Zipf distribution.
  const double u = uniform_real();
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    const double rank = std::exp(u * h) - 1.0;
    const auto r = static_cast<std::uint64_t>(rank);
    return r >= n ? n - 1 : r;
  }
  const double p = 1.0 - s;
  const double hn = (std::pow(static_cast<double>(n) + 1.0, p) - 1.0) / p;
  const double rank = std::pow(u * hn * p + 1.0, 1.0 / p) - 1.0;
  const auto r = static_cast<std::uint64_t>(rank);
  return r >= n ? n - 1 : r;
}

byte_buffer random_bytes(rng& r, std::size_t n) {
  byte_buffer out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = r.next();
    for (int k = 0; k < 8; ++k) {
      out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = r.next();
    for (int k = 0; i < n; ++i, ++k) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return out;
}

byte_buffer random_text(rng& r, std::size_t n) {
  // Dictionary words mixed with unique identifier-like tokens. Calibrated so
  // that best-effort LZSS lands near WinZip's ratio on the paper's
  // "random English words" file (10 MB -> ~4.5 MB, ratio ≈ 2.2).
  byte_buffer out;
  out.reserve(n + 24);
  while (out.size() < n) {
    if (r.chance(0.17)) {
      // Fresh token: numbers, names, hashes — the high-entropy part of
      // realistic text.
      const std::size_t len = 4 + r.uniform(8);
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t v = r.uniform(36);
        out.push_back(static_cast<std::uint8_t>(
            v < 26 ? 'a' + v : '0' + (v - 26)));
      }
    } else {
      const char* w = kWords[r.uniform(kWordCount)];
      while (*w != '\0') out.push_back(static_cast<std::uint8_t>(*w++));
    }
    out.push_back(r.chance(0.1) ? '\n' : ' ');
  }
  out.resize(n);
  return out;
}

byte_buffer synthetic_payload(rng& r, std::size_t n, double target_ratio) {
  if (target_ratio <= 1.05) return random_bytes(r, n);
  // Interleave incompressible runs with highly repetitive runs. A repetitive
  // run compresses to ~nothing, so a fraction q of repetitive content yields
  // ratio ~ 1 / (1 - q).
  const double q = 1.0 - 1.0 / target_ratio;
  byte_buffer out;
  out.reserve(n);
  constexpr std::size_t kRun = 256;
  while (out.size() < n) {
    const std::size_t want = std::min(kRun, n - out.size());
    if (r.uniform_real() < q) {
      const auto fill = static_cast<std::uint8_t>('a' + r.uniform(26));
      out.insert(out.end(), want, fill);
    } else {
      const byte_buffer chunk = random_bytes(r, want);
      append(out, chunk);
    }
  }
  return out;
}

}  // namespace cloudsync
