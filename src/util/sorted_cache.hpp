// Generation-keyed sorted snapshot for unordered-map list() paths.
//
// PR 4 moved the storage maps (memfs, object_store, metadata_service) to
// unordered_map and preserved the original ordered outputs by sorting inside
// every list() call — an O(n log n) sort on each call even when nothing
// changed in between, and list() is called repeatedly by rescan loops,
// invariant checks, and the sharded server's stats snapshots. This helper
// caches one sorted snapshot and re-fills it only after the owner reports a
// mutation (invalidate()).
//
// Not internally synchronized: a const list() may refill the cache, so the
// owner's locking discipline (single-threaded experiment env, or the sync
// server's per-shard lock) must cover readers too — the same contract the
// owners' mutable op-stats counters already rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cloudsync {

template <typename T>
class sorted_snapshot_cache {
 public:
  /// The owner mutated the underlying key set; the next get() re-fills.
  void invalidate() { ++generation_; }

  /// The sorted snapshot for the current generation. `fill` receives an
  /// empty vector and appends the unsorted items; it runs only when the
  /// generation moved since the last call.
  template <typename Fill>
  const std::vector<T>& get(Fill&& fill) const {
    if (filled_generation_ != generation_) {
      items_.clear();
      fill(items_);
      std::sort(items_.begin(), items_.end());
      filled_generation_ = generation_;
    }
    return items_;
  }

 private:
  std::uint64_t generation_ = 1;
  mutable std::uint64_t filled_generation_ = 0;  ///< 0 = never filled
  mutable std::vector<T> items_;
};

}  // namespace cloudsync
