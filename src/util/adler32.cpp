#include "util/adler32.hpp"

#include <cassert>

namespace cloudsync {

// One pass over `data` folding 64 bytes per step. For a block d0..d(N-1)
// entered with sums (a, b), the per-byte recurrence {a += d; b += a;} ends at
//   a' = a + Σ d_i         b' = b + N·a + Σ (N−i)·d_i
// and Σ (N−i)·d_i = N·Σ d_i − Σ i·d_i. The two Σ terms are independent
// reductions with no loop-carried chain, so the compiler vectorizes them;
// all arithmetic is uint32 wraparound, so the regrouping is exact and the
// packed value matches the naive loop bit for bit.
void weak_accumulate(byte_view data, std::uint32_t& a_io,
                     std::uint32_t& b_io) {
  constexpr std::uint32_t kBlock = 64;
  std::uint32_t a = a_io, b = b_io;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= kBlock) {
    b += kBlock * a;
    std::uint32_t s = 0, wi = 0;
    for (std::uint32_t i = 0; i < kBlock; ++i) {
      s += p[i];
      wi += i * p[i];
    }
    a += s;
    b += kBlock * s - wi;
    p += kBlock;
    n -= kBlock;
  }
  while (n-- > 0) {
    a += *p++;
    b += a;
  }
  a_io = a;
  b_io = b;
}

std::uint32_t weak_checksum(byte_view block) {
  std::uint32_t a = 0, b = 0;
  weak_accumulate(block, a, b);
  return (b << 16) | (a & 0xffffu);
}

void rolling_checksum::reset(byte_view data) {
  assert(data.size() == window_);
  a_ = 0;
  b_ = 0;
  weak_accumulate(data, a_, b_);
}

}  // namespace cloudsync
