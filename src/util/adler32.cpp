#include "util/adler32.hpp"

#include <cassert>

namespace cloudsync {

std::uint32_t weak_checksum(byte_view block) {
  std::uint32_t a = 0, b = 0;
  for (std::uint8_t byte : block) {
    a += byte;
    b += a;
  }
  return (b << 16) | (a & 0xffffu);
}

void rolling_checksum::reset(byte_view data) {
  assert(data.size() == window_);
  a_ = 0;
  b_ = 0;
  for (std::uint8_t byte : data) {
    a_ += byte;
    b_ += a_;
  }
}

}  // namespace cloudsync
