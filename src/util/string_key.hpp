// Heterogeneous string keying for hash maps on hot paths.
//
// `std::unordered_map<std::string, V, string_key_hash, string_key_eq>`
// accepts std::string_view (and const char*) lookups without materializing a
// temporary std::string, which is what the per-file lookup paths in memfs /
// object_store / metadata_service hit thousands of times per replayed file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace cloudsync {

struct string_key_hash {
  using is_transparent = void;

  // FNV-1a: short sync-folder paths hash in a handful of cycles.
  static std::size_t fnv1a(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }

  std::size_t operator()(std::string_view s) const { return fnv1a(s); }
  std::size_t operator()(const std::string& s) const {
    return fnv1a(std::string_view{s});
  }
  std::size_t operator()(const char* s) const {
    return fnv1a(std::string_view{s});
  }
};

using string_key_eq = std::equal_to<>;

}  // namespace cloudsync
