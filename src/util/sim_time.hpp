// Virtual time used by the discrete-event simulation.
//
// All simulation time is integral microseconds in a strong type so it can
// never be confused with byte counts or wall-clock time.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace cloudsync {

/// A point or span on the virtual clock, in microseconds.
class sim_time {
 public:
  constexpr sim_time() = default;

  static constexpr sim_time from_usec(std::int64_t us) { return sim_time{us}; }
  static constexpr sim_time from_msec(double ms) {
    return sim_time{static_cast<std::int64_t>(ms * 1000.0)};
  }
  static constexpr sim_time from_sec(double s) {
    return sim_time{static_cast<std::int64_t>(s * 1'000'000.0)};
  }
  static constexpr sim_time max() {
    return sim_time{INT64_MAX};
  }

  constexpr std::int64_t usec() const { return us_; }
  constexpr double msec() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const sim_time&) const = default;

  constexpr sim_time operator+(sim_time o) const { return sim_time{us_ + o.us_}; }
  constexpr sim_time operator-(sim_time o) const { return sim_time{us_ - o.us_}; }
  constexpr sim_time& operator+=(sim_time o) {
    us_ += o.us_;
    return *this;
  }
  constexpr sim_time operator*(double k) const {
    return sim_time{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }

  std::string str() const;

 private:
  constexpr explicit sim_time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace cloudsync
