// Fixed-size digest value type shared by all hash implementations.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.hpp"

namespace cloudsync {

/// Value type for an N-byte message digest (MD5 = 16, SHA-1 = 20, SHA-256 = 32).
template <std::size_t N>
struct digest {
  std::array<std::uint8_t, N> bytes{};

  auto operator<=>(const digest&) const = default;

  std::string hex() const { return to_hex(byte_view{bytes.data(), N}); }

  /// Cheap 64-bit key for hash maps: digests are uniformly distributed, so
  /// the first 8 bytes are already a good hash.
  std::uint64_t prefix64() const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8 && i < N; ++i) {
      v = v << 8 | bytes[i];
    }
    return v;
  }
};

using md5_digest = digest<16>;
using sha1_digest = digest<20>;
using sha256_digest = digest<32>;

}  // namespace cloudsync

namespace std {
template <size_t N>
struct hash<cloudsync::digest<N>> {
  size_t operator()(const cloudsync::digest<N>& d) const noexcept {
    return static_cast<size_t>(d.prefix64());
  }
};
}  // namespace std
