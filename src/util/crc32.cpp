#include "util/crc32.hpp"

#include <array>
#include <cstring>

namespace cloudsync {

namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;  // reflected 0x04C11DB7

// Slice-by-8 tables: kTable[0] is the classic byte-at-a-time table, and
// kTable[k][b] equals the CRC of byte b followed by k zero bytes, so eight
// input bytes can be folded per step. Same polynomial division, so the
// result is identical to the byte-at-a-time loop for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = t[0][c & 0xffu] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32(byte_view data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    lo = __builtin_bswap32(lo);
    hi = __builtin_bswap32(hi);
#endif
    lo ^= c;
    c = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
        kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
        kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace cloudsync
