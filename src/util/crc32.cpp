#include "util/crc32.hpp"

#include <array>

namespace cloudsync {

namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(byte_view data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace cloudsync
