// Deterministic PRNG and the synthetic-data distributions used throughout.
//
// Everything in this library must be reproducible bit-for-bit, so we ship our
// own xoshiro256** generator rather than relying on implementation-defined
// std::random distributions.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace cloudsync {

/// Full xoshiro256** state: lets a memo of seeded generation key by the
/// pre-call state and restore the post-call state, making a cache hit
/// observationally identical to re-running the generator.
struct rng_state {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool operator==(const rng_state&) const = default;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class rng {
 public:
  explicit rng(std::uint64_t seed);

  rng_state state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }
  void restore(const rng_state& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// True with probability p.
  bool chance(double p);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda.
  double exponential(double lambda);

  /// Zipf-like rank selection over `n` items with exponent `s` (rejection-free
  /// inverse-CDF on the harmonic approximation; fine for workload skew).
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  std::uint64_t s_[4];
};

/// `n` independent uniform bytes — incompressible payload.
byte_buffer random_bytes(rng& r, std::size_t n);

/// `n` bytes of space-separated pseudo-English words — compressible payload,
/// mirroring the paper's "text file filled with random English words".
byte_buffer random_text(rng& r, std::size_t n);

/// Text that compresses to roughly `target_ratio` (= original/compressed) by
/// mixing random bytes with repeated phrases. target_ratio >= 1.
byte_buffer synthetic_payload(rng& r, std::size_t n, double target_ratio);

}  // namespace cloudsync
