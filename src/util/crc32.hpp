// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//
// Used for cheap frame integrity checks on serialised deltas and trace files.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cloudsync {

/// Continue a CRC-32 computation. Start with seed = 0.
std::uint32_t crc32(byte_view data, std::uint32_t seed = 0);

}  // namespace cloudsync
