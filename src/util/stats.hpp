// Summary statistics and empirical CDFs for trace analytics and bench output.
#pragma once

#include <cstddef>
#include <vector>

namespace cloudsync {

/// Streaming summary: count / mean / min / max / variance (Welford).
class running_stats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a collected sample.
class empirical_cdf {
 public:
  explicit empirical_cdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;

  /// Inverse CDF; q in [0, 1].
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  std::size_t size() const { return sorted_.size(); }

  /// Evenly spaced (value, cumulative-fraction) points for plotting, at most
  /// `max_points` of them.
  std::vector<std::pair<double, double>> points(std::size_t max_points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cloudsync
