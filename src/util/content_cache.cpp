#include "util/content_cache.hpp"

#include <algorithm>
#include <cstring>

namespace cloudsync {

std::uint64_t content_hash64(byte_view data) {
  // Four independent FNV-style lanes over 32-byte strides: the multiply
  // chains run in parallel on modern cores, so long inputs hash ~4x faster
  // than single-lane FNV while staying dependency-free to implement.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h0 = 0xcbf29ce484222325ULL;
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4fULL;
  std::uint64_t h3 = 0x165667b19e3779f9ULL;
  std::size_t i = 0;
  for (; i + 32 <= data.size(); i += 32) {
    std::uint64_t lane[4];
    std::memcpy(lane, data.data() + i, 32);
    h0 = (h0 ^ lane[0]) * kPrime;
    h1 = (h1 ^ lane[1]) * kPrime;
    h2 = (h2 ^ lane[2]) * kPrime;
    h3 = (h3 ^ lane[3]) * kPrime;
  }
  std::uint64_t h = mix64(h0) ^ mix64(h1 + 1) ^ mix64(h2 + 2) ^ mix64(h3 + 3);
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h = (h ^ lane) * kPrime;
  }
  for (; i < data.size(); ++i) {
    h = (h ^ data[i]) * kPrime;
  }
  return mix64(h);
}

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

void content_hasher64::stride(const std::uint8_t* p) {
  std::uint64_t lane[4];
  std::memcpy(lane, p, 32);
  h0_ = (h0_ ^ lane[0]) * kFnvPrime;
  h1_ = (h1_ ^ lane[1]) * kFnvPrime;
  h2_ = (h2_ ^ lane[2]) * kFnvPrime;
  h3_ = (h3_ ^ lane[3]) * kFnvPrime;
}

void content_hasher64::update(byte_view data) {
  std::size_t i = 0;
  if (carry_len_ > 0) {
    const std::size_t take = std::min<std::size_t>(32 - carry_len_,
                                                   data.size());
    std::memcpy(carry_ + carry_len_, data.data(), take);
    carry_len_ += take;
    i = take;
    if (carry_len_ < 32) return;
    stride(carry_);
    carry_len_ = 0;
  }
  for (; i + 32 <= data.size(); i += 32) stride(data.data() + i);
  const std::size_t rem = data.size() - i;
  if (rem > 0) std::memcpy(carry_, data.data() + i, rem);
  carry_len_ = rem;
}

std::uint64_t content_hasher64::finish() const {
  // Identical tail handling to content_hash64: the carry is exactly the
  // sub-32-byte remainder the batch loop leaves behind.
  std::uint64_t h =
      mix64(h0_) ^ mix64(h1_ + 1) ^ mix64(h2_ + 2) ^ mix64(h3_ + 3);
  std::size_t i = 0;
  for (; i + 8 <= carry_len_; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, carry_ + i, 8);
    h = (h ^ lane) * kFnvPrime;
  }
  for (; i < carry_len_; ++i) {
    h = (h ^ carry_[i]) * kFnvPrime;
  }
  return mix64(h);
}

content_cache& content_cache::global() {
  static content_cache cache;
  return cache;
}

}  // namespace cloudsync
