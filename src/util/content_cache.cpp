#include "util/content_cache.hpp"

#include <cstring>

namespace cloudsync {

std::uint64_t content_hash64(byte_view data) {
  // Four independent FNV-style lanes over 32-byte strides: the multiply
  // chains run in parallel on modern cores, so long inputs hash ~4x faster
  // than single-lane FNV while staying dependency-free to implement.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h0 = 0xcbf29ce484222325ULL;
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4fULL;
  std::uint64_t h3 = 0x165667b19e3779f9ULL;
  std::size_t i = 0;
  for (; i + 32 <= data.size(); i += 32) {
    std::uint64_t lane[4];
    std::memcpy(lane, data.data() + i, 32);
    h0 = (h0 ^ lane[0]) * kPrime;
    h1 = (h1 ^ lane[1]) * kPrime;
    h2 = (h2 ^ lane[2]) * kPrime;
    h3 = (h3 ^ lane[3]) * kPrime;
  }
  std::uint64_t h = mix64(h0) ^ mix64(h1 + 1) ^ mix64(h2 + 2) ^ mix64(h3 + 3);
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h = (h ^ lane) * kPrime;
  }
  for (; i < data.size(); ++i) {
    h = (h ^ data[i]) * kPrime;
  }
  return mix64(h);
}

content_cache& content_cache::global() {
  static content_cache cache;
  return cache;
}

}  // namespace cloudsync
