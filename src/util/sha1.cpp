#include "util/sha1.hpp"

#include <cstring>

namespace cloudsync {

namespace {

inline std::uint32_t rotl(std::uint32_t v, int s) {
  return v << s | v >> (32 - s);
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

sha1_hasher::sha1_hasher() {
  state_[0] = 0x67452301u;
  state_[1] = 0xefcdab89u;
  state_[2] = 0x98badcfeu;
  state_[3] = 0x10325476u;
  state_[4] = 0xc3d2e1f0u;
}

// The 80 rounds unrolled in five-register rotation with the schedule kept as
// a 16-word ring (computed just-in-time) instead of an 80-word array. Same
// mod-2^32 arithmetic as the FIPS loop, so digests are bit-identical.
void sha1_hasher::process_block(const std::uint8_t* block) {
  std::uint32_t w[16];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

#define CLOUDSYNC_SHA1_W(j)                                          \
  (w[(j) & 15] = rotl(w[((j) - 3) & 15] ^ w[((j) - 8) & 15] ^        \
                          w[((j) - 14) & 15] ^ w[(j) & 15],          \
                      1))
#define CLOUDSYNC_SHA1_RND(a, b, c, d, e, f, k, wi)                  \
  {                                                                  \
    e += rotl(a, 5) + (f) + (k) + (wi);                              \
    b = rotl(b, 30);                                                 \
  }

  for (int i = 0; i < 15; i += 5) {
    CLOUDSYNC_SHA1_RND(a, b, c, d, e, (b & c) | (~b & d), 0x5a827999u,
                       w[i + 0]);
    CLOUDSYNC_SHA1_RND(e, a, b, c, d, (a & b) | (~a & c), 0x5a827999u,
                       w[i + 1]);
    CLOUDSYNC_SHA1_RND(d, e, a, b, c, (e & a) | (~e & b), 0x5a827999u,
                       w[i + 2]);
    CLOUDSYNC_SHA1_RND(c, d, e, a, b, (d & e) | (~d & a), 0x5a827999u,
                       w[i + 3]);
    CLOUDSYNC_SHA1_RND(b, c, d, e, a, (c & d) | (~c & e), 0x5a827999u,
                       w[i + 4]);
  }
  CLOUDSYNC_SHA1_RND(a, b, c, d, e, (b & c) | (~b & d), 0x5a827999u, w[15]);
  CLOUDSYNC_SHA1_RND(e, a, b, c, d, (a & b) | (~a & c), 0x5a827999u,
                     CLOUDSYNC_SHA1_W(16));
  CLOUDSYNC_SHA1_RND(d, e, a, b, c, (e & a) | (~e & b), 0x5a827999u,
                     CLOUDSYNC_SHA1_W(17));
  CLOUDSYNC_SHA1_RND(c, d, e, a, b, (d & e) | (~d & a), 0x5a827999u,
                     CLOUDSYNC_SHA1_W(18));
  CLOUDSYNC_SHA1_RND(b, c, d, e, a, (c & d) | (~c & e), 0x5a827999u,
                     CLOUDSYNC_SHA1_W(19));
  for (int i = 20; i < 40; i += 5) {
    CLOUDSYNC_SHA1_RND(a, b, c, d, e, b ^ c ^ d, 0x6ed9eba1u,
                       CLOUDSYNC_SHA1_W(i + 0));
    CLOUDSYNC_SHA1_RND(e, a, b, c, d, a ^ b ^ c, 0x6ed9eba1u,
                       CLOUDSYNC_SHA1_W(i + 1));
    CLOUDSYNC_SHA1_RND(d, e, a, b, c, e ^ a ^ b, 0x6ed9eba1u,
                       CLOUDSYNC_SHA1_W(i + 2));
    CLOUDSYNC_SHA1_RND(c, d, e, a, b, d ^ e ^ a, 0x6ed9eba1u,
                       CLOUDSYNC_SHA1_W(i + 3));
    CLOUDSYNC_SHA1_RND(b, c, d, e, a, c ^ d ^ e, 0x6ed9eba1u,
                       CLOUDSYNC_SHA1_W(i + 4));
  }
  for (int i = 40; i < 60; i += 5) {
    CLOUDSYNC_SHA1_RND(a, b, c, d, e, (b & c) | (b & d) | (c & d), 0x8f1bbcdcu,
                       CLOUDSYNC_SHA1_W(i + 0));
    CLOUDSYNC_SHA1_RND(e, a, b, c, d, (a & b) | (a & c) | (b & c), 0x8f1bbcdcu,
                       CLOUDSYNC_SHA1_W(i + 1));
    CLOUDSYNC_SHA1_RND(d, e, a, b, c, (e & a) | (e & b) | (a & b), 0x8f1bbcdcu,
                       CLOUDSYNC_SHA1_W(i + 2));
    CLOUDSYNC_SHA1_RND(c, d, e, a, b, (d & e) | (d & a) | (e & a), 0x8f1bbcdcu,
                       CLOUDSYNC_SHA1_W(i + 3));
    CLOUDSYNC_SHA1_RND(b, c, d, e, a, (c & d) | (c & e) | (d & e), 0x8f1bbcdcu,
                       CLOUDSYNC_SHA1_W(i + 4));
  }
  for (int i = 60; i < 80; i += 5) {
    CLOUDSYNC_SHA1_RND(a, b, c, d, e, b ^ c ^ d, 0xca62c1d6u,
                       CLOUDSYNC_SHA1_W(i + 0));
    CLOUDSYNC_SHA1_RND(e, a, b, c, d, a ^ b ^ c, 0xca62c1d6u,
                       CLOUDSYNC_SHA1_W(i + 1));
    CLOUDSYNC_SHA1_RND(d, e, a, b, c, e ^ a ^ b, 0xca62c1d6u,
                       CLOUDSYNC_SHA1_W(i + 2));
    CLOUDSYNC_SHA1_RND(c, d, e, a, b, d ^ e ^ a, 0xca62c1d6u,
                       CLOUDSYNC_SHA1_W(i + 3));
    CLOUDSYNC_SHA1_RND(b, c, d, e, a, c ^ d ^ e, 0xca62c1d6u,
                       CLOUDSYNC_SHA1_W(i + 4));
  }
#undef CLOUDSYNC_SHA1_RND
#undef CLOUDSYNC_SHA1_W

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

sha1_hasher& sha1_hasher::update(byte_view data) {
  total_len_ += data.size();
  std::size_t off = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }

  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }

  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
  return *this;
}

sha1_digest sha1_hasher::finish() {
  const std::uint64_t bit_len = total_len_ * 8;

  const std::uint8_t pad_byte = 0x80;
  update(byte_view{&pad_byte, 1});
  static constexpr std::uint8_t zeros[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t need = buffer_len_ < 56 ? 56 - buffer_len_
                                              : 64 - buffer_len_;
    update(byte_view{zeros, need});
  }
  // Big-endian 64-bit bit count.
  std::uint8_t len_bytes[8];
  store_be32(len_bytes, static_cast<std::uint32_t>(bit_len >> 32));
  store_be32(len_bytes + 4, static_cast<std::uint32_t>(bit_len));
  std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
  process_block(buffer_);

  sha1_digest out;
  for (int i = 0; i < 5; ++i) store_be32(out.bytes.data() + 4 * i, state_[i]);
  return out;
}

sha1_digest sha1(byte_view data) { return sha1_hasher{}.update(data).finish(); }

}  // namespace cloudsync
