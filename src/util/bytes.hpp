// Basic byte-buffer aliases and helpers shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cloudsync {

/// Owned, contiguous run of raw bytes. The unit of all payload handling.
using byte_buffer = std::vector<std::uint8_t>;

/// Non-owning view over bytes.
using byte_view = std::span<const std::uint8_t>;

/// View the raw bytes of a string without copying.
inline byte_view as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a string's bytes into an owned buffer.
inline byte_buffer to_buffer(std::string_view s) {
  return byte_buffer(s.begin(), s.end());
}

/// Copy a byte view into a std::string (useful for test assertions).
inline std::string to_string(byte_view b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Append `src` to `dst`.
inline void append(byte_buffer& dst, byte_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Lowercase hex encoding of arbitrary bytes.
std::string to_hex(byte_view data);

/// Inverse of to_hex. Throws std::invalid_argument on malformed input.
byte_buffer from_hex(std::string_view hex);

}  // namespace cloudsync
