// Algorithm 1 from the paper: the Iterative Self Duplication Algorithm.
//
// Infers a service's deduplication granularity purely from observed sync
// traffic, by uploading a fresh file f1 of B1 bytes, then f2 = f1 + f1, and
// classifying the second upload's traffic:
//   - Tr2 ≈ overhead only  → B divides B1 (dedup hit)
//   - Tr2 < 2·B1, not small → B1 > B (partial hit)
//   - Tr2 ≥ 2·B1           → B1 < B (no hit)
//
// Extension over the published pseudo-code: a "small" Tr2 only proves that B
// divides B1, so after the first hit we keep bisecting downward to find the
// minimal block size (then round to the customary power of two).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace cloudsync {

struct dedup_probe_result {
  bool full_file_dedup = false;   ///< identical re-upload was ~free
  bool block_dedup = false;       ///< self-duplication detected a block size
  std::size_t block_size = 0;     ///< inferred B (power of two), if block_dedup
  int upload_rounds = 0;          ///< uploads performed by the probe
  std::vector<std::string> log;   ///< step-by-step narration

  /// Table-9 style cell: "No", "Full file", or "4 MB".
  std::string granularity_string() const;
};

/// Probe the service described by `cfg`. With `cross_user`, the second
/// upload of each pair is performed by a different user account.
dedup_probe_result probe_dedup_granularity(const experiment_config& cfg,
                                           bool cross_user);

}  // namespace cloudsync
