#include "core/service_probe.hpp"

#include <algorithm>

#include "util/text_table.hpp"
#include "util/units.hpp"

namespace cloudsync {

namespace {

/// Does an "append 1 KB every `period`" stream collapse into one commit?
/// Fixed debounce defers absorb the whole stream (commit count 1); mere
/// engine throttling still commits repeatedly.
bool stream_fully_batched(const experiment_config& cfg, double period_sec) {
  experiment_env env(cfg);
  station& st = env.primary();
  st.fs.create("probe/defer.dat", byte_buffer{}, env.clock().now());
  env.settle();
  const std::uint64_t before = st.client->commit_count();
  for (int i = 1; i <= 16; ++i) {
    env.clock().schedule_at(
        sim_time::from_sec(10.0 + period_sec * i), [&env, &st] {
          append_random(st.fs, "probe/defer.dat", env.random(), 1024,
                        env.clock().now());
        });
  }
  env.settle();
  return st.client->commit_count() - before <= 1;
}

}  // namespace

probed_characteristics probe_service(const experiment_config& cfg,
                                     const probe_options& options) {
  probed_characteristics out;

  // Experiment 1: per-event overhead from a 1 B creation.
  out.per_event_overhead = measure_creation_traffic(cfg, 1);

  // Experiment 3: modify one byte of a 1 MB incompressible file. Full-file
  // sync re-ships ~the megabyte; IDS ships a chunk plus overhead.
  {
    const std::uint64_t mod = measure_modification_traffic(cfg, 1 * MiB);
    const std::uint64_t full = measure_creation_traffic(cfg, 1 * MiB);
    out.incremental_sync = mod * 2 < full;
    if (out.incremental_sync) {
      out.est_delta_chunk =
          mod > out.per_event_overhead ? mod - out.per_event_overhead : 0;
    }
  }

  // Experiment 4: compare compressible vs incompressible transfers.
  {
    const std::uint64_t text_up = measure_text_upload_traffic(cfg, 2 * MiB);
    const std::uint64_t raw_up = measure_creation_traffic(cfg, 2 * MiB);
    out.est_upload_ratio = static_cast<double>(raw_up) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, text_up));
    out.compresses_upload = out.est_upload_ratio > 1.15;

    const std::uint64_t text_dn = measure_text_download_traffic(cfg, 2 * MiB);
    // Download the incompressible file for the baseline.
    experiment_env env(cfg);
    station& st = env.primary();
    st.fs.create("probe/raw.bin", make_compressed_file(env.random(), 2 * MiB),
                 env.clock().now());
    env.settle();
    const auto snap = st.client->meter().snap();
    st.client->download("probe/raw.bin");
    env.settle();
    const std::uint64_t raw_dn = experiment_env::traffic_since(st, snap);
    out.est_download_ratio = static_cast<double>(raw_dn) /
                             static_cast<double>(std::max<std::uint64_t>(
                                 1, text_dn));
    out.compresses_download = out.est_download_ratio > 1.15;
  }

  // Experiment 1': 50 x 1 KB batch.
  {
    const std::uint64_t traffic =
        measure_batch_creation_traffic(cfg, 50, 1 * KiB);
    out.batch_tue = tue(traffic, 50 * KiB);
    out.batched_sync = out.batch_tue < 3.0;
  }

  // Experiment 6: find the largest inter-update period the service still
  // fully absorbs, then refine — the paper's integer-scan + float-refine.
  {
    double lo = 0.0;  // fully batched at this period
    double hi = 0.0;  // first period seen NOT fully batched
    for (double x = 1.0; x <= options.max_defer_scan_sec; x += 1.0) {
      if (stream_fully_batched(cfg, x)) {
        lo = x;
      } else {
        hi = x;
        break;
      }
    }
    if (lo > 0.0 && hi > lo) {
      while (hi - lo > options.defer_resolution_sec) {
        const double mid = (lo + hi) / 2.0;
        (stream_fully_batched(cfg, mid) ? lo : hi) = mid;
      }
      out.has_fixed_defer = true;
      out.est_defer_sec = (lo + hi) / 2.0;
    } else if (lo > 0.0) {
      // Batched across the whole scan range: deferment >= the range.
      out.has_fixed_defer = true;
      out.est_defer_sec = lo;
    }
  }

  // Experiment 5: Algorithm 1, both scopes.
  if (options.probe_dedup) {
    out.dedup_same_user = probe_dedup_granularity(cfg, false);
    out.dedup_cross_user = probe_dedup_granularity(cfg, true);
  }

  return out;
}

std::string probed_characteristics::summary() const {
  text_table t;
  t.header({"Design choice", "Inferred"});
  t.row({"per-event overhead",
         format_bytes(static_cast<double>(per_event_overhead))});
  t.row({"sync granularity",
         incremental_sync
             ? strfmt("incremental (chunk ~%s)",
                      format_bytes(static_cast<double>(est_delta_chunk))
                          .c_str())
             : "full-file"});
  t.row({"upload compression",
         compresses_upload ? strfmt("yes (ratio ~%.2f)", est_upload_ratio)
                           : "no"});
  t.row({"download compression",
         compresses_download ? strfmt("yes (ratio ~%.2f)", est_download_ratio)
                             : "no"});
  t.row({"batched data sync (BDS)",
         batched_sync ? strfmt("yes (batch TUE %.1f)", batch_tue)
                      : strfmt("no (batch TUE %.1f)", batch_tue)});
  t.row({"sync deferment",
         has_fixed_defer ? strfmt("~%.2f s", est_defer_sec) : "none found"});
  t.row({"dedup (same user)", dedup_same_user.granularity_string()});
  t.row({"dedup (cross user)", dedup_cross_user.granularity_string()});
  return t.str();
}

}  // namespace cloudsync
