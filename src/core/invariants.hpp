// Crash-consistency invariant checker.
//
// After a crash-injected run reaches quiescence (no pending events, no dirty
// paths), these checks prove the recovery subsystem preserved correctness —
// the properties that make the resumable-transfer TUE numbers meaningful:
//
//   convergence         — the client's sync folder and the cloud namespace
//                         hold the same set of live files with byte-identical
//                         content (no lost update, no torn write)
//   journal quiescence  — no open journal records and no open upload
//                         sessions survive (every crashed transaction was
//                         resumed, rolled forward, or discarded)
//   no duplicate commit — each path's cloud version equals the journal's
//                         cumulative committed-transaction count for it (a
//                         replayed commit would overshoot; a lost one would
//                         undershoot). Valid when this client is the path's
//                         only writer, which the crash harness guarantees.
//   meter conservation  — the per-incarnation meters retired at each crash
//                         plus the live meter sum exactly to the station
//                         aggregate, per direction and category (no traffic
//                         vanishes with a dead client).
//
// Violations are collected, not thrown: a bench cell reports every broken
// invariant at once instead of dying on the first.
#pragma once

#include <string>
#include <vector>

#include "client/sync_journal.hpp"
#include "fs/memfs.hpp"
#include "net/traffic_meter.hpp"
#include "storage/cloud.hpp"

namespace cloudsync {

struct invariant_report {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void fail(std::string what) { violations.push_back(std::move(what)); }
  /// One line per violation, or "all invariants hold".
  std::string summary() const;
};

/// Client files == cloud objects: same live paths, byte-identical content.
void check_convergence(const memfs& fs, const cloud& cl, user_id user,
                       invariant_report& rep);

/// No open journal records; no open upload sessions on the server.
void check_journal_quiescent(const sync_journal& journal, const cloud& cl,
                             invariant_report& rep);

/// Cloud manifest version == journal committed-transaction count per path
/// (single-writer): catches both replayed and silently dropped commits.
void check_no_duplicate_commits(const sync_journal& journal, const cloud& cl,
                                user_id user, invariant_report& rep);

/// `combined` must equal the element-wise sum of `parts` for every
/// (direction, category) cell.
void check_meter_conservation(const traffic_meter& combined,
                              const std::vector<const traffic_meter*>& parts,
                              invariant_report& rep);

}  // namespace cloudsync
