// Monetary cost of sync traffic (paper §1).
//
// The paper estimates Dropbox's daily bill from the ISP-level trace: 1 billion
// file updates/day × 5.18 MB average outbound traffic × $0.05/GB (Amazon S3
// charges outbound only) ≈ $260,000/day. This module packages that arithmetic
// so benches and examples can price any measured traffic.
#pragma once

#include <cstdint>

#include "net/traffic_meter.hpp"

namespace cloudsync {

struct pricing {
  double usd_per_outbound_gb = 0.05;  ///< S3 Jan-2014 list price
  double usd_per_inbound_gb = 0.0;    ///< S3 charges outbound only
  double usd_per_million_requests = 0.0;  ///< optional request pricing

  static pricing s3_2014() { return {}; }
};

struct traffic_bill {
  double outbound_usd = 0;
  double inbound_usd = 0;
  double request_usd = 0;

  double total_usd() const { return outbound_usd + inbound_usd + request_usd; }
};

/// Price raw byte counts. "Outbound" is cloud → client, i.e. what the
/// provider pays its infrastructure for.
traffic_bill price_traffic(std::uint64_t outbound_bytes,
                           std::uint64_t inbound_bytes,
                           std::uint64_t requests, const pricing& p);

/// Price a client-side traffic meter: the meter's *down* direction is the
/// provider's outbound traffic.
traffic_bill price_meter(const traffic_meter& meter, std::uint64_t requests,
                         const pricing& p);

/// The paper's fleet-scale projection: `daily_syncs` sync operations per day
/// at `avg_outbound_bytes` + `avg_inbound_bytes` each. Returns USD per day.
double project_daily_cost(double daily_syncs, double avg_outbound_bytes,
                          double avg_inbound_bytes, const pricing& p);

}  // namespace cloudsync
