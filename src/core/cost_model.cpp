#include "core/cost_model.hpp"

namespace cloudsync {

namespace {
constexpr double kGB = 1e9;  // decimal gigabyte, as ISPs and S3 bill
}

traffic_bill price_traffic(std::uint64_t outbound_bytes,
                           std::uint64_t inbound_bytes,
                           std::uint64_t requests, const pricing& p) {
  traffic_bill bill;
  bill.outbound_usd =
      static_cast<double>(outbound_bytes) / kGB * p.usd_per_outbound_gb;
  bill.inbound_usd =
      static_cast<double>(inbound_bytes) / kGB * p.usd_per_inbound_gb;
  bill.request_usd =
      static_cast<double>(requests) / 1e6 * p.usd_per_million_requests;
  return bill;
}

traffic_bill price_meter(const traffic_meter& meter, std::uint64_t requests,
                         const pricing& p) {
  return price_traffic(meter.total(direction::down),
                       meter.total(direction::up), requests, p);
}

double project_daily_cost(double daily_syncs, double avg_outbound_bytes,
                          double avg_inbound_bytes, const pricing& p) {
  return daily_syncs * (avg_outbound_bytes / kGB * p.usd_per_outbound_gb +
                        avg_inbound_bytes / kGB * p.usd_per_inbound_gb);
}

}  // namespace cloudsync
