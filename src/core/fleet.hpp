// Macro-level analysis (paper §3.1): replay the calibrated trace through
// full sync stacks, per service, and report fleet-level traffic efficiency —
// the "further macro-level analysis" the trace was collected to enable.
//
// Each trace record becomes a real file in a simulated user's sync folder:
// created at its (time-compressed) creation instant with content matching
// its recorded size, compressibility, and duplicate identity, then modified
// `modify_count` times. Everything then flows through the service's actual
// pipeline — BDS, IDS, dedup, compression, deferment — and the meters tell
// us what the fleet would have paid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/experiment.hpp"
#include "trace/generator.hpp"

namespace cloudsync {

struct fleet_config {
  trace_params trace{};  ///< generator knobs (scale is overridden below)
  access_method method = access_method::pc_client;
  link_config link = link_config::minnesota();
  hardware_profile hardware = hardware_profile::m1();

  /// Cap on files replayed per service (runtime guard; the trace's relative
  /// service proportions are preserved up to this cap). Files beyond the cap
  /// are dropped and counted in fleet_service_report::dropped_files. With
  /// the CoW content store keeping memory O(unique bytes), the default is
  /// the whole trace; benches that want the historical scope set it lower.
  std::size_t max_files_per_service = SIZE_MAX;

  /// REMOVED MECHANISM, field kept one release for ABI/layout stability:
  /// the replay-time file-size clamp is gone and this value is ignored —
  /// every file replays at its recorded size (big files become bounded-pool
  /// ropes, so fleet memory does not depend on file size). To bound sizes,
  /// set trace.max_file_bytes: clamping at generation keeps trace
  /// identities consistent.
  std::uint64_t file_size_cap = 0;

  /// Trace timestamps are divided by this factor so months of user activity
  /// replay in a bounded number of simulated hours.
  double time_compression = 2000.0;

  pricing price = pricing::s3_2014();

  /// Worker threads for the per-service replays (each replay owns its whole
  /// simulation world, so they run in parallel). 0 = auto-detect; 1 = serial.
  /// Reports are index-ordered, so results are identical at any setting.
  unsigned replay_threads = 0;

  /// Give every replayed station a client block-cache tier (see
  /// experiment_config::cache_tier) — limited-disk fleet replays. Off by
  /// default; each station owns its cache, so thread-count identity holds.
  bool cache_tier = false;
  cache_config cache{};
};

struct fleet_service_report {
  std::string service;
  std::size_t files = 0;
  /// Trace records for this service beyond max_files_per_service — silently
  /// dropping them hid how much of the trace a capped replay covered.
  std::size_t dropped_files = 0;
  std::size_t users = 0;
  std::uint64_t update_bytes = 0;  ///< created + modified payload
  std::uint64_t sync_traffic = 0;
  std::uint64_t commits = 0;
  /// Backend gauges at the end of the replay (backend_op_stats): bytes the
  /// store retains including version history, and bytes in live objects.
  std::uint64_t backend_retained_bytes = 0;
  std::uint64_t backend_live_bytes = 0;
  double mean_staleness_sec = 0;
  traffic_bill bill;  ///< provider-side cost of this replay

  double tue() const {
    return update_bytes == 0 ? 0.0
                             : static_cast<double>(sync_traffic) /
                                   static_cast<double>(update_bytes);
  }
};

/// Replay the trace against every mainstream service profile. Reports come
/// back in the paper's service order.
std::vector<fleet_service_report> replay_trace_fleet(
    const fleet_config& cfg = {});

}  // namespace cloudsync
