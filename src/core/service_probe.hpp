// Black-box service fingerprinting: the paper's entire measurement
// methodology packaged as one call. Given only a sync client to drive and a
// traffic meter to read (no access to profile internals), infer every design
// choice the paper reverse-engineered:
//
//   per-event overhead      (Experiment 1, 1 B creation)
//   sync granularity / IDS  (Experiment 3, random-byte modification)
//   upload/download compression (Experiment 4, text vs incompressible)
//   BDS                     (Experiment 1', batched creations)
//   fixed sync deferment    (Experiment 6, X KB / X sec scan + refinement)
//   dedup granularity       (Experiment 5, Algorithm 1)
//
// This is how the paper would approach iCloud Drive (§9's future work): no
// documentation, only packets.
#pragma once

#include <string>

#include "core/dedup_probe.hpp"
#include "core/experiment.hpp"

namespace cloudsync {

struct probed_characteristics {
  // Experiment 1: overhead.
  std::uint64_t per_event_overhead = 0;  ///< 1 B creation traffic

  // Experiment 3: sync granularity.
  bool incremental_sync = false;
  std::uint64_t est_delta_chunk = 0;  ///< traffic − overhead, if IDS

  // Experiment 4: compression.
  bool compresses_upload = false;
  double est_upload_ratio = 1.0;  ///< incompressible-traffic / text-traffic
  bool compresses_download = false;
  double est_download_ratio = 1.0;

  // Experiment 1': batched data sync.
  bool batched_sync = false;
  double batch_tue = 0.0;

  // Experiment 6: sync deferment.
  bool has_fixed_defer = false;
  double est_defer_sec = 0.0;  ///< refined to the probe's step size

  // Experiment 5: deduplication.
  dedup_probe_result dedup_same_user;
  dedup_probe_result dedup_cross_user;

  /// Human-readable report card.
  std::string summary() const;
};

struct probe_options {
  /// Largest deferment the Experiment-6 scan looks for, in seconds.
  double max_defer_scan_sec = 12.0;
  /// Refinement granularity for the deferment estimate.
  double defer_resolution_sec = 0.5;
  /// Include the (slower) Algorithm-1 dedup probes.
  bool probe_dedup = true;
};

/// Run the full fingerprinting suite against the service in `cfg`.
probed_characteristics probe_service(const experiment_config& cfg,
                                     const probe_options& options = {});

}  // namespace cloudsync
