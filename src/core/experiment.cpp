#include "core/experiment.hpp"

#include <functional>
#include <stdexcept>

namespace cloudsync {

namespace {
cloud_config cloud_config_for(const experiment_config& cfg) {
  cloud_config cc;
  cc.dedup = cfg.profile.dedup;
  cc.use_chunk_store = cfg.use_chunk_store;
  cc.chunk_store_chunk_size = cfg.profile.delta_chunk_size;
  cc.fingerprint_cache =
      cfg.use_content_cache ? &global_fingerprint_cache() : nullptr;
  return cc;
}
}  // namespace

experiment_env::experiment_env(experiment_config cfg)
    : cfg_(std::move(cfg)), cloud_(cloud_config_for(cfg_)), rng_(cfg_.seed) {
  // Seeded from the experiment seed so the same config replays the same
  // failure schedule. Always constructed and wired: with a disabled plan the
  // injector is structurally inert (no RNG draws, no thrown faults), so
  // fault-free runs stay byte-identical — and tests can arm count-based
  // faults mid-run through faults().
  faults_ = std::make_unique<fault_injector>(cfg_.faults, cfg_.seed);
  cloud_.set_fault_injector(faults_.get());
  add_station(0);
}

traffic_meter station::aggregate_meter() const {
  traffic_meter sum;
  for (const traffic_meter& m : retired_meters) sum.add(m);
  if (client) sum.add(client->meter());
  return sum;
}

std::uint64_t station::total_retries() const {
  return retired_retries + (client ? client->retry_count() : 0);
}
std::uint64_t station::total_requeues() const {
  return retired_requeues + (client ? client->requeue_count() : 0);
}
std::uint64_t station::total_fallbacks() const {
  return retired_fallbacks + (client ? client->fallback_count() : 0);
}
std::uint64_t station::total_resumes() const {
  return retired_resumes + (client ? client->resume_count() : 0);
}
std::uint64_t station::total_recovery_restarts() const {
  return retired_recovery_restarts +
         (client ? client->recovery_restart_count() : 0);
}

station& experiment_env::add_station(user_id user) {
  auto st = std::make_unique<station>();
  st->user = user;
  stations_.push_back(std::move(st));
  build_client(*stations_.back());
  return *stations_.back();
}

void experiment_env::build_client(station& st) {
  sync_options opts;
  opts.profile = cfg_.profile;
  opts.method = cfg_.method;
  opts.hardware = cfg_.hardware;
  opts.link = cfg_.link;
  opts.cache = cfg_.use_content_cache ? &content_cache::global() : nullptr;
  opts.faults = faults_.get();
  opts.retry = cfg_.retry;
  opts.transfer = cfg_.transfer;
  opts.protocol = cfg_.protocol;
  opts.whole_file_planning = cfg_.whole_file_planning;
  if (cfg_.journal) {
    opts.journal = &st.journal;
    opts.recovery = cfg_.recovery;
  }
  if (cfg_.cache_tier) {
    // Station-durable like the journal: built once, survives incarnations.
    if (st.cache == nullptr) {
      st.cache = std::make_unique<block_cache>(cfg_.cache);
    }
    opts.cache_tier = st.cache.get();
  }
  opts.reuse_device = st.device;  // 0 on first build = register fresh
  st.client = std::make_unique<sync_client>(clock_, st.fs, cloud_, st.user,
                                            std::move(opts));
  st.device = st.client->device();
}

void experiment_env::handle_crash(const client_crash& crash) {
  for (const auto& stp : stations_) {
    station& st = *stp;
    if (st.client == nullptr || st.client->device() != crash.device()) {
      continue;
    }
    ++st.crashes;
    // Retire the dead incarnation: its traffic stays on the books (the
    // invariant checker proves conservation), its counters accumulate, its
    // in-memory sync state dies with it. The journal and filesystem are the
    // station's durable state and survive untouched.
    st.retired_meters.push_back(st.client->meter());
    st.retired_retries += st.client->retry_count();
    st.retired_requeues += st.client->requeue_count();
    st.retired_fallbacks += st.client->fallback_count();
    st.retired_resumes += st.client->resume_count();
    st.retired_recovery_restarts += st.client->recovery_restart_count();
    st.client.reset();  // cancels its clock events, detaches its watcher
    station* stptr = &st;
    clock_.schedule_at(clock_.now() + cfg_.restart_delay, [this, stptr] {
      build_client(*stptr);
      stptr->client->recover();
    });
    return;
  }
  throw std::logic_error("experiment_env: crash from unknown device");
}

void experiment_env::settle() {
  // Commits can reschedule themselves while transfers drain, so alternate
  // between running the queue and advancing past busy periods.
  for (int guard = 0; guard < 1000; ++guard) {
    try {
      clock_.run_all();
    } catch (const client_crash& crash) {
      // The kill unwound through the event that was running (sim_clock pops
      // before invoking, so the queue stays consistent); restart the station
      // and keep settling.
      handle_crash(crash);
      continue;
    }
    sim_time latest = clock_.now();
    bool pending = false;
    for (const auto& st : stations_) {
      if (st->client == nullptr) continue;  // restart event is in the queue
      latest = std::max(latest, st->client->busy_until());
      pending = pending || st->client->has_pending();
    }
    clock_.advance_to(latest);
    if (!pending && clock_.pending() == 0) return;
  }
}

namespace {

/// Create a file and settle; returns the traffic of that creation.
std::uint64_t create_and_sync(experiment_env& env, const std::string& path,
                              byte_buffer content) {
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  st.fs.create(path, std::move(content), env.clock().now());
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

}  // namespace

std::uint64_t measure_creation_traffic(const experiment_config& cfg,
                                       std::uint64_t z) {
  experiment_env env(cfg);
  return create_and_sync(env, "exp1/file.bin",
                         env.gen_compressed(z));
}

std::uint64_t measure_batch_creation_traffic(const experiment_config& cfg,
                                             std::size_t n,
                                             std::uint64_t each) {
  experiment_env env(cfg);
  station& st = env.primary();
  const auto snap = st.client->meter().snap();
  // "Move all of them into the sync folder in a batch": all created at the
  // same instant, like a folder move.
  for (std::size_t i = 0; i < n; ++i) {
    st.fs.create("exp1b/f" + std::to_string(i),
                 env.gen_compressed(each),
                 env.clock().now());
  }
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

std::uint64_t measure_deletion_traffic(const experiment_config& cfg,
                                       std::uint64_t z) {
  experiment_env env(cfg);
  station& st = env.primary();
  create_and_sync(env, "exp2/file.bin", env.gen_compressed(z));
  const auto snap = st.client->meter().snap();
  st.fs.remove("exp2/file.bin", env.clock().now());
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

std::uint64_t measure_modification_traffic(const experiment_config& cfg,
                                           std::uint64_t z) {
  experiment_env env(cfg);
  station& st = env.primary();
  create_and_sync(env, "exp3/file.bin", env.gen_compressed(z));
  const auto snap = st.client->meter().snap();
  modify_random_byte(st.fs, "exp3/file.bin", env.random(), env.clock().now());
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

std::uint64_t measure_text_upload_traffic(const experiment_config& cfg,
                                          std::uint64_t x) {
  experiment_env env(cfg);
  return create_and_sync(env, "exp4/text.txt",
                         env.gen_text(x));
}

std::uint64_t measure_text_download_traffic(const experiment_config& cfg,
                                            std::uint64_t x) {
  experiment_env env(cfg);
  station& st = env.primary();
  create_and_sync(env, "exp4/text.txt", env.gen_text(x));
  const auto snap = st.client->meter().snap();
  st.client->download("exp4/text.txt");
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

append_experiment_result run_append_experiment(const experiment_config& cfg,
                                               double append_kb,
                                               double period_sec,
                                               std::uint64_t total_bytes) {
  experiment_env env(cfg);
  station& st = env.primary();
  const std::string path = "exp6/doc.dat";
  st.fs.create(path, byte_buffer{}, env.clock().now());
  env.settle();

  const auto snap = st.client->meter().snap();
  const std::uint64_t commits_before = st.client->commit_count();

  const auto chunk = static_cast<std::size_t>(append_kb * 1024.0);
  std::uint64_t appended = 0;
  std::size_t i = 0;
  while (appended < total_bytes) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            chunk, total_bytes - appended));
    const sim_time at =
        sim_time::from_sec(period_sec * static_cast<double>(i + 1));
    env.clock().schedule_at(at, [&env, &st, path, n] {
      append_random(st.fs, path, env.random(), n, env.clock().now());
    });
    appended += n;
    ++i;
  }
  env.settle();

  append_experiment_result res;
  res.total_traffic = experiment_env::traffic_since(st, snap);
  res.data_update_bytes = total_bytes;
  res.commits = st.client->commit_count() - commits_before;
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  return res;
}

failure_run_result run_failure_experiment(const experiment_config& cfg,
                                          std::size_t files,
                                          std::uint64_t file_bytes) {
  experiment_env env(cfg);
  station& st = env.primary();

  const sim_time start = env.clock().now();
  const auto snap = st.client->meter().snap();
  const std::uint64_t retry_before =
      st.client->meter().by_category(traffic_category::retry);

  // Phase 1: distinct creations, spaced far enough apart that each syncs as
  // its own commit (full-upload path).
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "fail/f" + std::to_string(i);
    const sim_time at = start + sim_time::from_sec(10.0 * (i + 1));
    env.clock().schedule_at(at, [&env, &st, path, file_bytes] {
      st.fs.create(path, env.gen_compressed(file_bytes), env.clock().now());
    });
  }
  env.settle();

  // Phase 2: one-byte modifications (delta-sync path where the service
  // supports it), again one commit per file.
  const sim_time mid = std::max(env.clock().now(), st.client->busy_until());
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "fail/f" + std::to_string(i);
    const sim_time at = mid + sim_time::from_sec(10.0 * (i + 1));
    env.clock().schedule_at(at, [&env, &st, path] {
      modify_random_byte(st.fs, path, env.random(), env.clock().now());
    });
  }
  env.settle();

  failure_run_result res;
  res.total_traffic = experiment_env::traffic_since(st, snap);
  res.retry_traffic =
      st.client->meter().by_category(traffic_category::retry) - retry_before;
  res.data_update_bytes = files * file_bytes + files;  // creations + 1B edits
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  res.completion_sec = (st.client->busy_until() - start).sec();
  res.retries = st.client->retry_count();
  res.requeues = st.client->requeue_count();
  res.fallbacks = st.client->fallback_count();
  res.faults_injected = env.faults().injected_total();
  return res;
}

crash_run_result run_crash_experiment(const experiment_config& cfg,
                                      std::size_t files,
                                      std::uint64_t file_bytes) {
  experiment_config jcfg = cfg;
  jcfg.journal = true;  // crash recovery is meaningless without the journal
  experiment_env env(jcfg);
  station& st = env.primary();

  const sim_time start = env.clock().now();

  // Phase 1: distinct creations, spaced so each syncs as its own commit
  // (full-upload sessions). The fs events fire whether or not the client is
  // alive at that instant — a crash-downed client learns about them from the
  // recovery rescan, like a real machine rebooting after edits.
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "crash/f" + std::to_string(i);
    const sim_time at = start + sim_time::from_sec(10.0 * (i + 1));
    env.clock().schedule_at(at, [&env, &st, path, file_bytes] {
      st.fs.create(path, env.gen_compressed(file_bytes), env.clock().now());
    });
  }
  env.settle();

  // Phase 2: one-byte modifications (delta-sync sessions where the service
  // supports them).
  const sim_time mid = std::max(env.clock().now(),
                                st.client ? st.client->busy_until()
                                          : env.clock().now());
  for (std::size_t i = 0; i < files; ++i) {
    const std::string path = "crash/f" + std::to_string(i);
    const sim_time at = mid + sim_time::from_sec(10.0 * (i + 1));
    env.clock().schedule_at(at, [&env, &st, path] {
      modify_random_byte(st.fs, path, env.random(), env.clock().now());
    });
  }
  env.settle();

  crash_run_result res;
  const traffic_meter aggregate = st.aggregate_meter();
  res.total_traffic = aggregate.total();
  res.resume_traffic = aggregate.by_category(traffic_category::resume);
  res.retry_traffic = aggregate.by_category(traffic_category::retry);
  res.data_update_bytes = files * file_bytes + files;  // creations + 1B edits
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  res.completion_sec =
      ((st.client ? st.client->busy_until() : env.clock().now()) - start)
          .sec();
  res.crashes = st.crashes;
  res.resumes = st.total_resumes();
  res.recovery_restarts = st.total_recovery_restarts();
  res.journal_begun = st.journal.begun_count();
  res.journal_committed = st.journal.committed_count();
  res.journal_aborted = st.journal.aborted_count();

  check_convergence(st.fs, env.the_cloud(), st.user, res.invariants);
  check_journal_quiescent(st.journal, env.the_cloud(), res.invariants);
  check_no_duplicate_commits(st.journal, env.the_cloud(), st.user,
                             res.invariants);
  std::vector<const traffic_meter*> parts;
  for (const traffic_meter& m : st.retired_meters) parts.push_back(&m);
  if (st.client) parts.push_back(&st.client->meter());
  check_meter_conservation(aggregate, parts, res.invariants);
  return res;
}

transfer_run_result run_transfer_experiment(const experiment_config& cfg,
                                            std::size_t files,
                                            std::uint64_t file_bytes) {
  experiment_config jcfg = cfg;
  jcfg.journal = true;  // sessions (and thus striping) need the journal
  experiment_env env(jcfg);
  station& st = env.primary();

  transfer_run_result res;

  // Each transaction runs alone: schedule the fs event, settle, take the
  // event → all-idle latency as one delay sample. Serialising transactions
  // keeps every sample attributable to exactly one transfer (requeues and
  // recovery after a give-up stay inside their transaction's sample — that
  // tail is precisely what redundancy is supposed to cut).
  const auto run_one = [&](const std::string& path) {
    const sim_time at =
        std::max(env.clock().now(),
                 st.client ? st.client->busy_until() : env.clock().now()) +
        sim_time::from_sec(5);
    env.clock().schedule_at(at, [&env, &st, path, file_bytes, at] {
      if (st.fs.exists(path)) {
        st.fs.write(path, env.gen_compressed(file_bytes), at);
      } else {
        st.fs.create(path, env.gen_compressed(file_bytes), at);
      }
    });
    env.settle();
    const sim_time idle =
        st.client ? st.client->busy_until() : env.clock().now();
    res.delay_samples_sec.push_back(std::max(0.0, (idle - at).sec()));
  };

  // Phase 1: incompressible creations — full-upload sessions split into
  // recovery.chunk_bytes ranges. Phase 2: full rewrites with fresh content
  // of the same size — the incremental path ships a payload on the order of
  // the file again, still multi-chunk.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::size_t i = 0; i < files; ++i) {
      run_one("xfer/f" + std::to_string(i));
    }
  }

  const traffic_meter aggregate = st.aggregate_meter();
  res.total_traffic = aggregate.total();
  res.payload_traffic = aggregate.by_category(traffic_category::payload);
  res.retry_traffic = aggregate.by_category(traffic_category::retry);
  res.redundancy_traffic =
      aggregate.by_category(traffic_category::redundancy);
  res.resume_traffic = aggregate.by_category(traffic_category::resume);
  res.data_update_bytes = 2 * files * file_bytes;
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  res.retries = st.total_retries();
  res.requeues = st.total_requeues();
  res.fallbacks = st.total_fallbacks();
  res.faults_injected = env.faults().injected_total_all_domains();
  if (st.client != nullptr && st.client->transfer_sched() != nullptr) {
    res.sched = st.client->transfer_sched()->stats();
    res.per_connection = st.client->transfer_sched()->per_connection();
  }
  return res;
}

const char* to_string(protocol_workload wl) {
  switch (wl) {
    case protocol_workload::small_edits: return "small_edits";
    case protocol_workload::fresh_rewrites: return "fresh_rewrites";
    case protocol_workload::duplicate_copy: return "duplicate_copy";
  }
  return "workload?";
}

protocol_run_result run_protocol_experiment(const experiment_config& cfg,
                                            protocol_workload wl,
                                            std::size_t files,
                                            std::uint64_t file_bytes) {
  experiment_env env(cfg);
  station& st = env.primary();

  // Serialized transactions: each fs event fires once the client is idle,
  // so every commit carries exactly one update and the selector's
  // calibration state evolves in a fixed order (the env is single-threaded;
  // grid parallelism is across envs).
  const auto step =
      [&](const std::string& path,
          std::function<void(const std::string&, sim_time)> action) {
        const sim_time at =
            std::max(env.clock().now(), st.client->busy_until()) +
            sim_time::from_sec(5);
        env.clock().schedule_at(
            at, [path, action = std::move(action), at] { action(path, at); });
        env.settle();
      };
  const auto create_with = [&](const std::string& path, byte_buffer content) {
    step(path, [&st, content = std::move(content)](const std::string& p,
                                                   sim_time at) {
      st.fs.create(p, byte_buffer(content), at);
    });
  };

  std::uint64_t data_update = 0;
  switch (wl) {
    case protocol_workload::small_edits: {
      for (std::size_t i = 0; i < files; ++i) {
        create_with("prot/t" + std::to_string(i),
                    env.gen_text(static_cast<std::size_t>(file_bytes)));
      }
      data_update += files * file_bytes;
      for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < files; ++i) {
          step("prot/t" + std::to_string(i),
               [&env, &st](const std::string& p, sim_time at) {
                 modify_random_byte(st.fs, p, env.random(), at);
               });
        }
      }
      data_update += 2 * files;
      break;
    }
    case protocol_workload::fresh_rewrites: {
      for (std::size_t i = 0; i < files; ++i) {
        create_with("prot/r" + std::to_string(i),
                    env.gen_compressed(static_cast<std::size_t>(file_bytes)));
      }
      for (std::size_t i = 0; i < files; ++i) {
        step("prot/r" + std::to_string(i),
             [&env, &st, file_bytes](const std::string& p, sim_time at) {
               st.fs.write(
                   p,
                   env.gen_compressed(static_cast<std::size_t>(file_bytes)),
                   at);
             });
      }
      data_update += 2 * files * file_bytes;
      break;
    }
    case protocol_workload::duplicate_copy: {
      // Phase-ordered: every distinct file syncs before its copy appears, so
      // the dedup index (and the adaptive selector's synced-hash knowledge)
      // is warm when the duplicates arrive.
      std::vector<byte_buffer> contents;
      contents.reserve(files);
      for (std::size_t i = 0; i < files; ++i) {
        contents.push_back(
            env.gen_compressed(static_cast<std::size_t>(file_bytes)));
      }
      for (std::size_t i = 0; i < files; ++i) {
        create_with("prot/a" + std::to_string(i), byte_buffer(contents[i]));
      }
      for (std::size_t i = 0; i < files; ++i) {
        create_with("prot/b" + std::to_string(i), byte_buffer(contents[i]));
      }
      data_update += 2 * files * file_bytes;
      break;
    }
  }

  protocol_run_result res;
  res.meter = st.aggregate_meter();
  res.total_traffic = res.meter.total();
  res.data_update_bytes = data_update;
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  res.commits = st.client->commit_count();
  res.selector = st.client->protocol_stats();
  return res;
}

const char* to_string(cache_workload wl) {
  switch (wl) {
    case cache_workload::looping_scan: return "looping_scan";
    case cache_workload::frequent_mods: return "frequent_mods";
    case cache_workload::cold_start: return "cold_start";
  }
  return "workload?";
}

cache_run_result run_cache_experiment(const experiment_config& cfg,
                                      cache_workload wl, std::size_t files,
                                      std::uint64_t file_bytes,
                                      std::size_t pin_first) {
  experiment_env env(cfg);
  station& st = env.primary();

  const auto path_of = [](std::size_t i) {
    return "cache/f" + std::to_string(i);
  };

  // Serialized step, as in run_protocol_experiment: each action fires once
  // the client is idle and settles before the next, so runs are identical
  // at any grid thread count (the env itself is single-threaded).
  const auto step = [&](std::function<void(sim_time)> action) {
    const sim_time at = std::max(env.clock().now(), st.client->busy_until()) +
                        sim_time::from_sec(5);
    env.clock().schedule_at(at,
                            [action = std::move(action), at] { action(at); });
    env.settle();
  };
  const auto read_step = [&](std::size_t i) {
    step([&st, p = path_of(i)](sim_time) { (void)st.client->read_file(p); });
  };

  // Creation phase, common to all workloads.
  std::uint64_t data_update = 0;
  for (std::size_t i = 0; i < files; ++i) {
    byte_buffer content =
        wl == cache_workload::frequent_mods
            ? env.gen_text(static_cast<std::size_t>(file_bytes))
            : env.gen_compressed(static_cast<std::size_t>(file_bytes));
    step([&st, p = path_of(i), content = std::move(content)](sim_time at) {
      st.fs.create(p, byte_buffer(content), at);
    });
  }
  data_update += files * file_bytes;
  for (std::size_t i = 0; i < pin_first && i < files; ++i) {
    if (st.cache != nullptr) st.cache->pin(path_of(i));
  }

  switch (wl) {
    case cache_workload::looping_scan: {
      // Rounds of a re-referenced hot set interleaved with a full scan:
      // the scan floods recency; only a frequency-aware policy keeps the
      // hot set resident across rounds.
      constexpr int kRounds = 3;
      constexpr int kHotRepeats = 3;
      const std::size_t hot = std::max<std::size_t>(1, files / 4);
      for (int r = 0; r < kRounds; ++r) {
        for (int k = 0; k < kHotRepeats; ++k) {
          for (std::size_t i = 0; i < hot; ++i) read_step(i);
        }
        for (std::size_t i = 0; i < files; ++i) read_step(i);
      }
      break;
    }
    case cache_workload::frequent_mods: {
      // Bursts of small in-place edits, scheduled at absolute times up
      // front (one settle at the end): the write modes must see the exact
      // same event sequence for their TUE to be comparable, and per-step
      // settling would drain every write-back window before the next edit.
      constexpr int kRounds = 3;
      constexpr int kEditsPerBurst = 3;
      const double round_gap = 60.0, edit_gap = 2.0, file_gap = 0.1;
      const sim_time t0 = std::max(env.clock().now(),
                                   st.client->busy_until()) +
                          sim_time::from_sec(5);
      for (int r = 0; r < kRounds; ++r) {
        for (std::size_t i = 0; i < files; ++i) {
          for (int k = 0; k < kEditsPerBurst; ++k) {
            const sim_time at =
                t0 + sim_time::from_sec(r * round_gap +
                                        static_cast<double>(i) * file_gap +
                                        k * edit_gap);
            env.clock().schedule_at(at, [&env, &st, p = path_of(i), at] {
              modify_random_byte(st.fs, p, env.random(), at);
            });
          }
        }
      }
      env.settle();
      data_update +=
          static_cast<std::uint64_t>(kRounds) * kEditsPerBurst * files;
      break;
    }
    case cache_workload::cold_start: {
      // A purged device cache: every clean block dropped, then everything
      // read back — pure miss-driven re-hydration.
      if (st.cache != nullptr) st.cache->drop_clean_blocks();
      for (std::size_t i = 0; i < files; ++i) read_step(i);
      break;
    }
  }
  env.settle();

  cache_run_result res;
  res.meter = st.aggregate_meter();
  res.total_traffic = res.meter.total();
  res.rehydrate_traffic = res.meter.by_category(traffic_category::rehydrate);
  res.data_update_bytes = data_update;
  res.tue = tue(res.total_traffic, res.data_update_bytes);
  res.commits = st.client->commit_count();
  if (st.cache != nullptr) {
    res.cache = st.cache->stats();
    res.hit_ratio = res.cache.hit_ratio();
    res.resident_blocks = st.cache->resident_blocks();
    res.resident_bytes = st.cache->resident_bytes();
    res.pinned_paths = st.cache->pinned_paths();
    res.tracked_paths = st.cache->tracked_paths();
  }
  return res;
}

}  // namespace cloudsync
