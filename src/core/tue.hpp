// TUE — Traffic Usage Efficiency (paper Eq. 1):
//
//   TUE = total data sync traffic / data update size
//
// where the data update size is the size of altered bits relative to the
// cloud-stored file (compressed size when the service compresses).
#pragma once

#include <cstdint>

namespace cloudsync {

inline double tue(std::uint64_t sync_traffic_bytes,
                  std::uint64_t data_update_bytes) {
  if (data_update_bytes == 0) return 0.0;
  return static_cast<double>(sync_traffic_bytes) /
         static_cast<double>(data_update_bytes);
}

}  // namespace cloudsync
