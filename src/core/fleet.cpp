#include "core/fleet.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "core/parallel_runner.hpp"
#include "store/content_ref.hpp"
#include "store/content_store.hpp"
#include "util/content_cache.hpp"

namespace cloudsync {

namespace {

/// Above this size a record's content is built as a rope tiling a bounded
/// pool of seeded segments instead of one lazy whole-file chunk, so reading
/// (signing, diffing, uploading) a multi-GB file materializes O(pool) unique
/// bytes, never O(file).
constexpr std::uint64_t kPooledFileThreshold = 64 * MiB;
constexpr std::size_t kPoolSegmentBytes = 1 * MiB;
constexpr std::size_t kPoolSegments = 32;  ///< 32 MiB unique per big file

content_ref pooled_record_content(std::uint64_t seed, std::uint64_t size,
                                  double ratio) {
  std::vector<content_ref> pool;
  pool.reserve(kPoolSegments);
  for (std::size_t i = 0; i < kPoolSegments; ++i) {
    const std::uint64_t sub = mix64(seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    pool.push_back(content_ref::lazy(kPoolSegmentBytes, [sub, ratio] {
      rng r(sub);
      return synthetic_payload(r, kPoolSegmentBytes, ratio);
    }));
  }
  // Deterministic tiling: segment j of the file is a seeded pick from the
  // pool, so duplicate records (same seed/size/ratio) still alias the same
  // chunks and the bytes are stable across runs and window splits.
  content_ref::builder out;
  std::uint64_t off = 0;
  for (std::uint64_t j = 0; off < size; ++j) {
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPoolSegmentBytes, size - off));
    out.append(pool[mix64(seed ^ j) % kPoolSegments], 0, len);
    off += len;
  }
  return out.build();
}

/// Deterministic content for a trace record: seeded by the record's content
/// identity so exact duplicates get byte-identical files, sized and shaped
/// to match the recorded size and compression ratio.
///
/// In CoW mode, records with the same content identity alias one process-wide
/// lazy ref — the bytes are generated from the seed on first read and every
/// duplicate shares the same chunks, so fleet memory is O(unique bytes). In
/// flat mode each call generates a private buffer, reproducing the historical
/// per-file duplication (that is the baseline the bench compares against).
content_ref record_content(const trace_file_record& rec) {
  const std::uint64_t size = rec.original_size;
  const std::uint64_t seed = rec.full_md5.prefix64();
  const double ratio = rec.compression_ratio();
  auto generate = [seed, size, ratio] {
    rng content_rng(seed);
    return synthetic_payload(content_rng, static_cast<std::size_t>(size),
                             ratio);
  };
  if (content_store::global().mode() == content_mode::flat) {
    return content_ref::from_buffer(generate());
  }
  // Identity memo: key is everything `generate` depends on, so a hit is the
  // same logical bytes. Thread-safe — parallel per-service replays share it.
  static content_memo<content_ref> memo(64 * 1024);
  std::uint64_t ratio_bits = 0;
  std::memcpy(&ratio_bits, &ratio, sizeof(ratio_bits));
  return memo.get_or_compute_keyed(mix64(seed), size, ratio_bits, [&] {
    if (size > kPooledFileThreshold) {
      return pooled_record_content(seed, size, ratio);
    }
    return content_ref::lazy(static_cast<std::size_t>(size), generate);
  });
}

fleet_service_report replay_service(const service_profile& profile,
                                    const std::vector<const trace_file_record*>&
                                        records,
                                    const fleet_config& cfg) {
  fleet_service_report report;
  report.service = profile.name;

  experiment_config ecfg{profile};
  ecfg.method = cfg.method;
  ecfg.link = cfg.link;
  ecfg.hardware = cfg.hardware;
  ecfg.cache_tier = cfg.cache_tier;
  ecfg.cache = cfg.cache;
  experiment_env env(ecfg);

  // One station per distinct trace user (cross-user dedup needs real
  // separate accounts).
  std::map<std::uint32_t, station*> stations;
  for (const trace_file_record* rec : records) {
    if (!stations.contains(rec->user)) {
      stations[rec->user] =
          stations.empty() ? &env.primary() : &env.add_station(rec->user);
    }
  }
  report.users = stations.size();

  // Schedule creations and modifications on the compressed timeline. File
  // sizes replay exactly as recorded: bounding them is the trace generator's
  // job (trace.max_file_bytes), never the replayer's.
  std::uint64_t update_bytes = 0;
  for (const trace_file_record* rec : records) {
    station* st = stations[rec->user];
    const sim_time created_at =
        sim_time::from_sec(rec->creation_time / cfg.time_compression);
    update_bytes += rec->original_size;
    env.clock().schedule_at(created_at, [st, rec, &env] {
      st->fs.create(rec->file_name, record_content(*rec),
                    env.clock().now());
    });
    // Modifications: spread after creation; random single-byte edits.
    for (std::uint32_t m = 0; m < rec->modify_count; ++m) {
      const sim_time at =
          created_at + sim_time::from_sec(30.0 * (m + 1));
      update_bytes += 1;
      env.clock().schedule_at(at, [st, rec, &env] {
        if (st->fs.exists(rec->file_name) &&
            st->fs.size(rec->file_name) > 0) {
          modify_random_byte(st->fs, rec->file_name, env.random(),
                             env.clock().now());
        }
      });
    }
  }
  env.settle();

  report.files = records.size();
  report.update_bytes = update_bytes;
  std::uint64_t down_bytes = 0, up_bytes = 0;
  running_stats staleness;
  for (const auto& [user, st] : stations) {
    report.sync_traffic += st->client->meter().total();
    report.commits += st->client->commit_count();
    up_bytes += st->client->meter().total(direction::up);
    down_bytes += st->client->meter().total(direction::down);
    const running_stats& s = st->client->staleness_sec();
    if (s.count() > 0) staleness.add(s.mean());  // mean of per-user means
  }
  report.mean_staleness_sec = staleness.mean();
  report.bill = price_traffic(down_bytes, up_bytes, report.commits,
                              cfg.price);
  report.backend_retained_bytes = env.the_cloud().store().stats().retained_bytes;
  report.backend_live_bytes = env.the_cloud().store().stats().live_bytes;
  return report;
}

}  // namespace

std::vector<fleet_service_report> replay_trace_fleet(const fleet_config& cfg) {
  const trace_dataset ds = generate_trace(cfg.trace);

  // Group records per service, capped; count what the cap drops so the
  // report can state how much of the trace each replay actually covered.
  std::map<std::string, std::vector<const trace_file_record*>> by_service;
  std::map<std::string, std::size_t> dropped;
  for (const trace_file_record& rec : ds.files) {
    auto& vec = by_service[rec.service];
    if (vec.size() < cfg.max_files_per_service) {
      vec.push_back(&rec);
    } else {
      ++dropped[rec.service];
    }
  }

  // Each per-service replay owns its entire simulation world (clock, cloud,
  // filesystems), so the services fan out across the pool; slot-indexed
  // writes keep the report order identical to the serial path.
  std::vector<const service_profile*> jobs;
  std::vector<service_profile> profiles = all_services();
  for (const service_profile& profile : profiles) {
    if (by_service.contains(profile.name)) jobs.push_back(&profile);
  }
  std::vector<fleet_service_report> reports(jobs.size());
  parallel_runner pool(cfg.replay_threads);
  pool.run_indexed(jobs.size(), [&](std::size_t i) {
    reports[i] =
        replay_service(*jobs[i], by_service.at(jobs[i]->name), cfg);
    const auto dit = dropped.find(jobs[i]->name);
    if (dit != dropped.end()) reports[i].dropped_files = dit->second;
  });
  return reports;
}

}  // namespace cloudsync
