#include "core/invariants.hpp"

#include <algorithm>
#include <sstream>

namespace cloudsync {

std::string invariant_report::summary() const {
  if (violations.empty()) return "all invariants hold";
  std::ostringstream os;
  for (const auto& v : violations) os << v << "\n";
  return os.str();
}

void check_convergence(const memfs& fs, const cloud& cl, user_id user,
                       invariant_report& rep) {
  const auto local = fs.list();
  const auto remote = cl.metadata().list(user);

  for (const auto& path : local) {
    if (std::find(remote.begin(), remote.end(), path) == remote.end()) {
      rep.fail("convergence: local file missing in cloud: " + path);
    }
  }
  for (const auto& path : remote) {
    if (!fs.exists(path)) {
      rep.fail("convergence: cloud file missing locally: " + path);
      continue;
    }
    const auto cloud_content = cl.file_content(user, path);
    if (!cloud_content) {
      rep.fail("convergence: cloud content unreadable: " + path);
      continue;
    }
    const content_ref local_content = fs.read(path);
    if (!cloud_content->equal(local_content)) {
      rep.fail("convergence: content mismatch: " + path + " (local " +
               std::to_string(local_content.size()) + " B, cloud " +
               std::to_string(cloud_content->size()) + " B)");
    }
  }
}

void check_journal_quiescent(const sync_journal& journal, const cloud& cl,
                             invariant_report& rep) {
  for (const auto& rec : journal.open_records()) {
    rep.fail(std::string("quiescence: open journal record: txn ") +
             std::to_string(rec.id) + " " + rec.path + " [" +
             to_string(rec.state) + "]");
  }
  if (cl.open_session_count() != 0) {
    rep.fail("quiescence: " + std::to_string(cl.open_session_count()) +
             " upload session(s) left open on the server");
  }
}

void check_no_duplicate_commits(const sync_journal& journal, const cloud& cl,
                                user_id user, invariant_report& rep) {
  for (const auto& path : cl.metadata().list(user)) {
    const file_manifest* man = cl.manifest(user, path);
    if (man == nullptr) continue;
    const std::uint64_t committed = journal.commits_for(path);
    if (man->version != committed) {
      rep.fail("commit count: " + path + ": cloud version " +
               std::to_string(man->version) + " != journal commits " +
               std::to_string(committed) +
               (man->version > committed ? " (duplicated update)"
                                         : " (lost update)"));
    }
  }
}

void check_meter_conservation(const traffic_meter& combined,
                              const std::vector<const traffic_meter*>& parts,
                              invariant_report& rep) {
  for (int d = 0; d < 2; ++d) {
    const auto dir = static_cast<direction>(d);
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
      const auto cat = static_cast<traffic_category>(c);
      std::uint64_t sum = 0;
      for (const traffic_meter* m : parts) sum += m->get(dir, cat);
      if (sum != combined.get(dir, cat)) {
        rep.fail(std::string("meter conservation: ") + to_string(cat) +
                 (dir == direction::up ? " up: " : " down: ") +
                 std::to_string(sum) + " summed != " +
                 std::to_string(combined.get(dir, cat)) + " combined");
      }
    }
  }
}

}  // namespace cloudsync
