// Experiment harness: wires clock + filesystems + cloud + sync clients into
// one controllable environment, and packages the paper's Experiments 1-7 as
// reusable measurement routines for the bench binaries and tests.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "client/sync_engine.hpp"
#include "core/invariants.hpp"
#include "core/tue.hpp"
#include "fs/file_ops.hpp"
#include "net/fault_injector.hpp"
#include "util/rng.hpp"

namespace cloudsync {

struct experiment_config {
  service_profile profile;
  access_method method = access_method::pc_client;
  link_config link = link_config::minnesota();
  hardware_profile hardware = hardware_profile::m1();
  std::uint64_t seed = 1234;
  /// Use the Cumulus-style chunk-store cloud substrate (§4.3 footnote)
  /// instead of whole-file objects behind the GET+PUT+DELETE mid-layer.
  bool use_chunk_store = false;
  /// Memoize compressed-size computations in the process-wide content cache
  /// (results are byte-identical either way; see docs/PERFORMANCE.md).
  bool use_content_cache = true;
  /// Deterministic failure schedule (default: disabled — the injector is
  /// wired but inert, so fault-free runs are byte-identical to older builds).
  fault_plan faults{};
  /// How clients retry transient faults (ignored while `faults` is disabled).
  retry_policy retry{};
  /// Give every station a durable write-ahead journal: sync transactions are
  /// journaled, uploads ship through resumable sessions, and settle()
  /// becomes crash-aware (an injected client_crash destroys the station's
  /// client and restarts it after `restart_delay`, running the recovery
  /// pass). Required for fault_plan::crash_prob to have any effect. Off by
  /// default — journal-less runs are byte-identical to older builds.
  bool journal = false;
  recovery_options recovery{};
  sim_time restart_delay = sim_time::from_sec(5);
  /// Plan uploads/deltas over flattened whole-file buffers instead of the
  /// streaming jobs (sync_options::whole_file_planning). Identity-leg only:
  /// proves streaming meters byte-identical traffic. Never use uncapped.
  bool whole_file_planning = false;
  /// Parallel transfer scheduler for every station's client (see
  /// net/transfer_scheduler.hpp). Disabled by default; enabled on a clean
  /// link it is byte-invisible (the controller never escalates).
  transfer_policy transfer{};
  /// Per-update protocol selection for every station's client (see
  /// client/protocol_cost.hpp). Default service_default mode is the
  /// historical branching — byte-identical to the pre-registry engine.
  protocol_options protocol{};
  /// Give every station a client block-cache tier (cache/block_cache.hpp):
  /// the bounded local replica of a limited-disk client, with eviction,
  /// pinning, miss-driven re-hydration, and write-through/write-back dirty
  /// flushing. Station-durable like the journal — residency and dirty
  /// blocks survive client crashes. Off by default; uncapped write-through
  /// is byte-identical to the cacheless engine.
  bool cache_tier = false;
  cache_config cache{};
};

/// One client machine attached to the environment: its own sync folder and
/// sync client, belonging to a user account. The folder, journal, and device
/// registration are the station's durable state — they survive client
/// crashes; the sync_client is the process, rebuilt by the harness after
/// each injected crash.
struct station {
  user_id user;
  memfs fs;
  sync_journal journal;              ///< used when config.journal is set
  std::unique_ptr<block_cache> cache;  ///< used when config.cache_tier is set
  std::unique_ptr<sync_client> client;
  device_id device = 0;              ///< stable across incarnations
  std::vector<traffic_meter> retired_meters;  ///< one per dead incarnation
  std::uint64_t crashes = 0;
  // Counters accumulated from dead incarnations (the live client's counters
  // are added on top when reporting).
  std::uint64_t retired_retries = 0;
  std::uint64_t retired_requeues = 0;
  std::uint64_t retired_fallbacks = 0;
  std::uint64_t retired_resumes = 0;
  std::uint64_t retired_recovery_restarts = 0;

  /// Sum of every incarnation's traffic, dead and alive.
  traffic_meter aggregate_meter() const;
  std::uint64_t total_retries() const;
  std::uint64_t total_requeues() const;
  std::uint64_t total_fallbacks() const;
  std::uint64_t total_resumes() const;
  std::uint64_t total_recovery_restarts() const;
};

class experiment_env {
 public:
  explicit experiment_env(experiment_config cfg);

  experiment_env(const experiment_env&) = delete;
  experiment_env& operator=(const experiment_env&) = delete;

  /// The primary station (user 0), created by the constructor.
  station& primary() { return *stations_.front(); }

  /// Attach another machine (e.g. a second user account for cross-user
  /// dedup probing, or a second device of the same user).
  station& add_station(user_id user);

  /// Run the event loop until every pending sync completed, and make the
  /// clock at least reach every station's busy-until point. With journaling
  /// on, injected client crashes are caught here: the dead incarnation's
  /// meter is retired, its client destroyed, and a restart + recovery pass
  /// scheduled restart_delay later — then settling continues until true
  /// quiescence (recovery itself may crash again; fault_plan::max_crashes
  /// bounds the cascade).
  void settle();

  /// Bytes of sync traffic a station accumulated since `snap`.
  static std::uint64_t traffic_since(const station& st,
                                     const traffic_meter::snapshot& snap) {
    return st.client->meter().total_since(snap);
  }

  sim_clock& clock() { return clock_; }
  cloud& the_cloud() { return cloud_; }
  rng& random() { return rng_; }
  const experiment_config& config() const { return cfg_; }
  /// The environment's fault injector (inert while cfg.faults is disabled
  /// and no count-based faults are armed). One injector serves the whole env
  /// (clock, cloud, and every station are single-threaded within an env, so
  /// its RNG draws are well-ordered).
  fault_injector& faults() { return *faults_; }

  /// Synthetic content generation, memoized process-wide when content
  /// caching is on (experiment grids replay the same seeds across services,
  /// so generation itself is a hot path). Bit-identical either way.
  byte_buffer gen_compressed(std::size_t z) {
    return cfg_.use_content_cache ? make_compressed_file_cached(rng_, z)
                                  : make_compressed_file(rng_, z);
  }
  byte_buffer gen_text(std::size_t x) {
    return cfg_.use_content_cache ? make_text_file_cached(rng_, x)
                                  : make_text_file(rng_, x);
  }

 private:
  /// Retire the crashed incarnation and schedule its restart + recovery.
  void handle_crash(const client_crash& crash);
  /// (Re)build a station's sync_client — same device id, same journal.
  void build_client(station& st);

  experiment_config cfg_;
  sim_clock clock_;
  cloud cloud_;
  rng rng_;
  std::unique_ptr<fault_injector> faults_;
  std::deque<std::unique_ptr<station>> stations_;
};

// ---------------------------------------------------------------------------
// Packaged measurements (one per paper experiment).
// ---------------------------------------------------------------------------

/// Experiment 1: create one highly-compressed (incompressible) file of
/// `z` bytes and return the total sync traffic.
std::uint64_t measure_creation_traffic(const experiment_config& cfg,
                                       std::uint64_t z);

/// Experiment 1': move `n` distinct compressed files of `each` bytes into
/// the sync folder at once; returns total traffic (Table 7).
std::uint64_t measure_batch_creation_traffic(const experiment_config& cfg,
                                             std::size_t n,
                                             std::uint64_t each);

/// Experiment 2: create a file of `z` bytes, let it sync, delete it; returns
/// the traffic of the deletion alone.
std::uint64_t measure_deletion_traffic(const experiment_config& cfg,
                                       std::uint64_t z);

/// Experiment 3: create + sync a `z`-byte compressed file, then modify one
/// random byte; returns the traffic of syncing the modification alone.
std::uint64_t measure_modification_traffic(const experiment_config& cfg,
                                           std::uint64_t z);

/// Experiment 4 upload half: create an `x`-byte random-English text file;
/// returns the upload sync traffic.
std::uint64_t measure_text_upload_traffic(const experiment_config& cfg,
                                          std::uint64_t x);

/// Experiment 4 download half: returns the traffic of downloading the same
/// text file from the cloud.
std::uint64_t measure_text_download_traffic(const experiment_config& cfg,
                                            std::uint64_t x);

/// Experiment 6/7: the "X KB / X sec" appending experiment. Appends
/// `append_kb` random KB every `period_sec` until `total_bytes` have been
/// appended, then settles. Returns the result below.
struct append_experiment_result {
  std::uint64_t total_traffic = 0;
  std::uint64_t data_update_bytes = 0;
  std::uint64_t commits = 0;
  double tue = 0;
};
append_experiment_result run_append_experiment(const experiment_config& cfg,
                                               double append_kb,
                                               double period_sec,
                                               std::uint64_t total_bytes);

/// Robustness experiment: create `files` distinct compressed files (spaced
/// so each syncs as its own commit), then flip one random byte in each —
/// exercising both the full-upload and delta-sync paths under the config's
/// fault plan. Reports traffic efficiency and completion time alongside the
/// retry-layer counters.
struct failure_run_result {
  std::uint64_t total_traffic = 0;   ///< all categories, both directions
  std::uint64_t retry_traffic = 0;   ///< traffic_category::retry share
  std::uint64_t data_update_bytes = 0;
  double tue = 0;
  double completion_sec = 0;  ///< workload start → all stations idle
  std::uint64_t retries = 0;
  std::uint64_t requeues = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t faults_injected = 0;
};
failure_run_result run_failure_experiment(const experiment_config& cfg,
                                          std::size_t files,
                                          std::uint64_t file_bytes);

/// Crash-recovery experiment: the same create-then-modify workload as
/// run_failure_experiment, but with journaling on and the config's crash
/// plan armed — clients die at kill sites, restart, and recover. After
/// quiescence the full invariant suite runs (convergence, journal/session
/// quiescence, commit counts, meter conservation); a violation is a bug, not
/// a measurement.
struct crash_run_result {
  std::uint64_t total_traffic = 0;    ///< every incarnation, all categories
  std::uint64_t resume_traffic = 0;   ///< traffic_category::resume share
  std::uint64_t retry_traffic = 0;    ///< traffic_category::retry share
  std::uint64_t data_update_bytes = 0;
  double tue = 0;
  double completion_sec = 0;
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;            ///< transactions continued in place
  std::uint64_t recovery_restarts = 0;  ///< transactions re-sent from scratch
  std::uint64_t journal_begun = 0;
  std::uint64_t journal_committed = 0;
  std::uint64_t journal_aborted = 0;
  invariant_report invariants;
};
crash_run_result run_crash_experiment(const experiment_config& cfg,
                                      std::size_t files,
                                      std::uint64_t file_bytes);

/// Tail-delay experiment for the parallel transfer scheduler: `files`
/// incompressible files are created and then fully rewritten, one
/// transaction at a time (each settled before the next starts), with
/// journaling forced on so every upload ships through a resumable session in
/// recovery.chunk_bytes ranges. Each transaction's sync delay (event → all
/// idle) becomes one sample of the delay distribution — the p99 of these is
/// what FEC striping and hedging buy — and the traffic meters split the cost
/// into payload, retry (reactive) and redundancy (proactive) bytes.
struct transfer_run_result {
  std::vector<double> delay_samples_sec;  ///< one per transaction, in order
  std::uint64_t total_traffic = 0;
  std::uint64_t payload_traffic = 0;
  std::uint64_t retry_traffic = 0;
  std::uint64_t redundancy_traffic = 0;
  std::uint64_t resume_traffic = 0;
  std::uint64_t data_update_bytes = 0;
  double tue = 0;
  std::uint64_t retries = 0;
  std::uint64_t requeues = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t faults_injected = 0;  ///< all fault domains
  /// Scheduler observability (zeros when cfg.transfer is disabled).
  transfer_stats sched;
  std::vector<connection_stats> per_connection;
};
transfer_run_result run_transfer_experiment(const experiment_config& cfg,
                                            std::size_t files,
                                            std::uint64_t file_bytes);

/// Protocol-selection experiment (bench/protocol_selector_report): one
/// deterministic trace workload replayed under cfg.protocol's selection
/// mode, every transaction settled alone so the selector's calibration state
/// evolves identically at any grid thread count. The three workloads span
/// the regimes where each built-in protocol wins:
///   small_edits     — text files, then rounds of one-byte in-place edits
///                     (delta sync's home turf);
///   fresh_rewrites  — incompressible files fully rewritten with new content
///                     (nothing to delta or dedup: full-file wins);
///   duplicate_copy  — distinct files, then byte-identical copies under new
///                     paths (whole-file dedup hits; CDC wins).
enum class protocol_workload : std::uint8_t {
  small_edits,
  fresh_rewrites,
  duplicate_copy,
};
const char* to_string(protocol_workload wl);

struct protocol_run_result {
  /// Aggregate meter — the per-(direction, category) identity object the
  /// bench's forced-vs-legacy and thread-determinism legs compare.
  traffic_meter meter;
  std::uint64_t total_traffic = 0;
  std::uint64_t data_update_bytes = 0;
  double tue = 0;
  std::uint64_t commits = 0;
  /// Selector observability: pick counts, calibration corrections, and the
  /// predicted-vs-actual error distribution (empty outside adaptive mode).
  protocol_selector_stats selector;
};
protocol_run_result run_protocol_experiment(const experiment_config& cfg,
                                            protocol_workload wl,
                                            std::size_t files,
                                            std::uint64_t file_bytes);

/// Limited-disk cache-tier experiment (bench/cache_tier_report): one
/// deterministic workload driven through a station whose client has a
/// block cache (cfg.cache_tier/cfg.cache — or none, for the cacheless
/// identity baseline). The three workloads span the cache's regimes:
///   looping_scan  — distinct files synced once, then rounds of repeated
///                   hot-set reads interleaved with full scans through
///                   read_file(): the classic access pattern where ARC's
///                   frequency list protects the hot set from scan churn;
///   frequent_mods — text files, then bursts of small in-place edits per
///                   file (paper §frequent mods): the workload where
///                   write-back coalescing beats write-through TUE;
///   cold_start    — files synced, every clean block dropped (a purged
///                   device cache), then everything read back: all misses,
///                   pure re-hydration traffic.
enum class cache_workload : std::uint8_t {
  looping_scan,
  frequent_mods,
  cold_start,
};
const char* to_string(cache_workload wl);

struct cache_run_result {
  /// Aggregate meter — the per-(direction, category) identity object the
  /// bench's uncapped-vs-cacheless and thread-determinism legs compare.
  traffic_meter meter;
  std::uint64_t total_traffic = 0;
  std::uint64_t rehydrate_traffic = 0;  ///< traffic_category::rehydrate share
  std::uint64_t data_update_bytes = 0;
  double tue = 0;
  double hit_ratio = 0;  ///< block reads served from residency
  std::uint64_t commits = 0;
  /// Cache observability (all zeros for the cacheless baseline).
  block_cache_stats cache;
  std::uint64_t resident_blocks = 0;  ///< end-of-run gauges
  std::uint64_t resident_bytes = 0;
  std::uint64_t pinned_paths = 0;
  std::uint64_t tracked_paths = 0;
};
/// `pin_first` pins the first N file paths after the creation phase —
/// eviction must route around them (tools/cache_stats --pin).
cache_run_result run_cache_experiment(const experiment_config& cfg,
                                      cache_workload wl, std::size_t files,
                                      std::uint64_t file_bytes,
                                      std::size_t pin_first = 0);

}  // namespace cloudsync
