// Thread pool that fans INDEPENDENT experiment evaluations across cores.
//
// The simulator's unit of work is one experiment_env — a clock, a cloud, and
// its filesystems, all single-threaded by design (net/sim_clock.hpp). Whole
// environments share nothing, so a parameter sweep (a bench table's cells, a
// fleet replay's per-service runs) is embarrassingly parallel: parallelism
// lives ACROSS experiments, never within one.
//
// Determinism: tasks are identified by index and write only their own slot,
// so results are in index order regardless of completion order or thread
// count — a parallel sweep is bit-identical to the serial one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudsync {

class parallel_runner {
 public:
  /// `threads` == 0 picks a default: the CLOUDSYNC_THREADS environment
  /// variable if set, else std::thread::hardware_concurrency(). With an
  /// effective count of 1 no workers are spawned and tasks run inline on
  /// the calling thread (the serial path, byte-identical by construction).
  explicit parallel_runner(unsigned threads = 0);
  ~parallel_runner();

  parallel_runner(const parallel_runner&) = delete;
  parallel_runner& operator=(const parallel_runner&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Run fn(0), fn(1), ..., fn(n-1) across the pool and block until all
  /// completed. Tasks must be independent (each owning its whole simulation
  /// world). If any task throws, the first exception is rethrown here after
  /// the batch drains.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The thread count a default-constructed runner would use.
  static unsigned default_thread_count();

 private:
  void worker_loop();
  bool claim_and_run();  ///< returns false when the current batch is drained

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes workers for a new batch
  std::condition_variable done_cv_;  ///< wakes run_indexed when batch drains
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Evaluate `fn(i)` for i in [0, n) and collect the results in index order.
template <typename R, typename Fn>
std::vector<R> parallel_map_n(parallel_runner& pool, std::size_t n, Fn&& fn) {
  std::vector<R> out(n);
  pool.run_indexed(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace cloudsync
