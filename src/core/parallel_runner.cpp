#include "core/parallel_runner.hpp"

#include <cstdlib>
#include <string>

namespace cloudsync {

unsigned parallel_runner::default_thread_count() {
  if (const char* env = std::getenv("CLOUDSYNC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

parallel_runner::parallel_runner(unsigned threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {
  // The calling thread participates in every batch, so spawn one fewer
  // worker than the requested parallelism.
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

parallel_runner::~parallel_runner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool parallel_runner::claim_and_run() {
  // Called with mu_ held; returns with mu_ held.
  if (job_ == nullptr || next_index_ >= job_size_) return false;
  const std::size_t i = next_index_++;
  const auto* job = job_;
  mu_.unlock();
  std::exception_ptr err;
  try {
    (*job)(i);
  } catch (...) {
    err = std::current_exception();
  }
  mu_.lock();
  if (err && !first_error_) first_error_ = err;
  if (++completed_ == job_size_) done_cv_.notify_all();
  return true;
}

void parallel_runner::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return shutdown_ || (job_ != nullptr && next_index_ < job_size_);
    });
    if (shutdown_) return;
    while (claim_and_run()) {
    }
  }
}

void parallel_runner::run_indexed(std::size_t n,
                                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_size_ = n;
  next_index_ = 0;
  completed_ = 0;
  first_error_ = nullptr;
  work_cv_.notify_all();
  while (claim_and_run()) {
  }
  done_cv_.wait(lock, [this] { return completed_ == job_size_; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace cloudsync
