#include "core/dedup_probe.hpp"

#include <algorithm>
#include <cmath>

#include "util/text_table.hpp"
#include "util/units.hpp"

namespace cloudsync {

namespace {

std::uint64_t upload(experiment_env& env, station& st, const std::string& path,
                     byte_buffer content) {
  const auto snap = st.client->meter().snap();
  st.fs.create(path, std::move(content), env.clock().now());
  env.settle();
  return experiment_env::traffic_since(st, snap);
}

std::size_t round_to_power_of_two(std::size_t v) {
  if (v == 0) return 0;
  const double lg = std::log2(static_cast<double>(v));
  return static_cast<std::size_t>(1)
         << static_cast<std::size_t>(std::llround(lg));
}

}  // namespace

std::string dedup_probe_result::granularity_string() const {
  if (block_dedup) return format_bytes(static_cast<double>(block_size));
  if (full_file_dedup) return "Full file";
  return "No";
}

dedup_probe_result probe_dedup_granularity(const experiment_config& cfg,
                                           bool cross_user) {
  dedup_probe_result res;
  experiment_env env(cfg);
  station& a = env.primary();
  station& b = cross_user ? env.add_station(1) : a;

  int serial = 0;
  auto fresh_name = [&serial](const char* who) {
    return std::string("probe/") + who + std::to_string(serial++) + ".bin";
  };

  // Step 0: full-file dedup test — upload identical content twice.
  {
    const byte_buffer f = make_compressed_file(env.random(), 4 * MiB);
    upload(env, a, fresh_name("a"), f);
    const std::uint64_t tr2 = upload(env, b, fresh_name("b"), f);
    res.upload_rounds += 2;
    res.full_file_dedup = tr2 < f.size() / 4;
    res.log.push_back(strfmt("identical re-upload of 4 MB cost %s -> %s",
                             format_bytes(static_cast<double>(tr2)).c_str(),
                             res.full_file_dedup ? "deduplicated"
                                                 : "fully re-sent"));
  }

  // Algorithm 1 proper: bisect on the self-duplication response.
  std::size_t lower = 0;                                   // L
  std::size_t upper = 0;                                   // U (0 = +inf)
  std::size_t b1 = 1 * MiB;                                // initial guess
  std::size_t smallest_hit = 0;
  constexpr std::size_t kCap = 16 * MiB;
  constexpr int kMaxRounds = 18;

  for (int round = 0; round < kMaxRounds; ++round) {
    if (b1 < 16 * KiB || b1 > kCap) break;
    const byte_buffer f1 = make_compressed_file(env.random(), b1);
    const std::uint64_t tr1 = upload(env, a, fresh_name("f1_"), f1);
    const byte_buffer f2 = self_duplicate(f1);
    const std::uint64_t tr2 = upload(env, b, fresh_name("f2_"), f2);
    res.upload_rounds += 2;

    const bool is_small =
        tr2 < b1 / 4 + 200 * KiB && tr2 * 4 < tr1 * 3;  // Tr2 << Tr1
    res.log.push_back(strfmt(
        "B1=%s: Tr1=%s Tr2=%s (%s)",
        format_bytes(static_cast<double>(b1)).c_str(),
        format_bytes(static_cast<double>(tr1)).c_str(),
        format_bytes(static_cast<double>(tr2)).c_str(),
        is_small ? "dedup hit"
                 : (tr2 >= static_cast<std::uint64_t>(1.6 * static_cast<double>(b1))
                        ? "no hit"
                        : "partial hit")));

    if (is_small) {
      // B divides B1. Keep bisecting downward for the minimal granularity.
      smallest_hit = b1;
      upper = b1;
      const std::size_t mid = (lower + upper) / 2;
      if (upper - lower <= std::max<std::size_t>(64 * KiB, upper / 16) ||
          mid == b1) {
        break;
      }
      b1 = mid;
    } else if (tr2 >= static_cast<std::uint64_t>(1.6 * static_cast<double>(b1))) {
      // Case 2: B1 < B (or no dedup at all).
      lower = b1;
      b1 = upper == 0 ? b1 * 2 : (lower + upper) / 2;
      if (upper != 0 && upper - lower <= std::max<std::size_t>(
                                             64 * KiB, upper / 16)) {
        break;
      }
    } else {
      // Case 1: B1 > B.
      upper = b1;
      b1 = (lower + upper) / 2;
    }
  }

  if (smallest_hit != 0) {
    res.block_dedup = true;
    res.block_size = round_to_power_of_two(smallest_hit);
    // A self-duplication hit at the full-file granularity service would need
    // f2's single fingerprint to match f1's — impossible — so a hit here is
    // genuine block-level dedup.
  }
  return res;
}

}  // namespace cloudsync
