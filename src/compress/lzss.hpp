// LZSS dictionary compressor, implemented from scratch.
//
// Greedy/lazy hash-chain matcher over a 64 KiB sliding window. The encoded
// stream is flag-grouped: one control byte per 8 tokens, each token either a
// literal byte or a (offset, length) back-reference.
//
// The `level` knob (0-9) trades CPU for ratio exactly like zlib's: it bounds
// the hash-chain walk and enables lazy matching at higher levels. Level 0
// stores the input uncompressed (used to model services that upload raw).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace cloudsync {

struct lzss_params {
  int level = 6;  ///< 0 = store, 1 = fastest, 9 = best ratio.
};

/// Compress `input` into a self-describing frame (magic, original size,
/// token stream, CRC-32 trailer).
byte_buffer lzss_compress(byte_view input, lzss_params params = {});

/// Decompress a frame produced by lzss_compress.
/// Throws std::runtime_error on malformed input or CRC mismatch.
byte_buffer lzss_decompress(byte_view frame);

/// Cheap compressibility probe: compresses up to `sample_budget` bytes of
/// evenly spaced windows and returns the estimated ratio original/compressed
/// (>= 1.0 means compressible).
double estimate_compression_ratio(byte_view input,
                                  std::size_t sample_budget = 64 * 1024);

/// The window layout the probe samples for a `size`-byte input: the whole
/// input when it fits the budget, otherwise 8 evenly spaced budget/8-byte
/// windows. Exposed so non-contiguous representations (ropes, streamed delta
/// wire) can be probed with the identical layout and therefore return the
/// identical estimate.
struct sample_window {
  std::size_t offset = 0;
  std::size_t length = 0;
};
std::vector<sample_window> compression_sample_windows(
    std::size_t size, std::size_t sample_budget);

/// Shared probe core: ratio sum(in) / max(1, sum(out)) over level-5
/// compressions of the sampled windows. estimate_compression_ratio ==
/// estimate_ratio_of_windows over compression_sample_windows' views.
double estimate_ratio_of_windows(const std::vector<byte_view>& windows);

/// Exact streamed frame sizing: feed the input in windows of any size and
/// finish() returns precisely lzss_compress(concatenation, params).size() —
/// including the stored-frame fallback — while holding O(1) state (a 128 KiB
/// history ring plus hash chains, ~1.4 MB) instead of the input. This is how
/// multi-GB upload payloads are priced without ever being flat in memory.
class lzss_stream_sizer {
 public:
  /// The total input size must be known up front (frame headers and
  /// end-of-input match limits depend on it).
  explicit lzss_stream_sizer(std::uint64_t total_size, lzss_params params = {});

  void feed(byte_view window);
  /// Throws std::logic_error unless exactly total_size bytes were fed.
  std::uint64_t finish();

 private:
  struct match {
    std::size_t length = 0;
    std::size_t distance = 0;
  };

  std::uint8_t at(std::uint64_t pos) const;
  std::uint32_t hash_at(std::uint64_t pos) const;
  match find(std::uint64_t pos) const;
  void insert(std::uint64_t pos);
  void drain(bool final_window);
  void count_token(bool is_match);

  std::uint64_t total_;
  bool stored_only_;       ///< level <= 0 or input too short: pure stored frame
  std::size_t max_chain_ = 0;
  std::size_t nice_len_ = 0;
  std::size_t accept_len_ = 0;
  bool lazy_ = false;

  byte_buffer ring_;                 ///< history ring, kSizerRingBytes
  std::vector<std::uint64_t> head_;  ///< hash -> most recent absolute pos
  std::vector<std::uint64_t> prev_;  ///< chain links, ring-indexed
  std::uint64_t fed_ = 0;            ///< absolute write position
  std::uint64_t pos_ = 0;            ///< absolute scan position
  std::uint64_t out_ = 0;            ///< counted frame bytes so far
  unsigned bit_ = 8;                 ///< token slot within the open flag byte
  bool finished_ = false;
};

}  // namespace cloudsync
