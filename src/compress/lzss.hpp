// LZSS dictionary compressor, implemented from scratch.
//
// Greedy/lazy hash-chain matcher over a 64 KiB sliding window. The encoded
// stream is flag-grouped: one control byte per 8 tokens, each token either a
// literal byte or a (offset, length) back-reference.
//
// The `level` knob (0-9) trades CPU for ratio exactly like zlib's: it bounds
// the hash-chain walk and enables lazy matching at higher levels. Level 0
// stores the input uncompressed (used to model services that upload raw).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cloudsync {

struct lzss_params {
  int level = 6;  ///< 0 = store, 1 = fastest, 9 = best ratio.
};

/// Compress `input` into a self-describing frame (magic, original size,
/// token stream, CRC-32 trailer).
byte_buffer lzss_compress(byte_view input, lzss_params params = {});

/// Decompress a frame produced by lzss_compress.
/// Throws std::runtime_error on malformed input or CRC mismatch.
byte_buffer lzss_decompress(byte_view frame);

/// Cheap compressibility probe: compresses up to `sample_budget` bytes of
/// evenly spaced windows and returns the estimated ratio original/compressed
/// (>= 1.0 means compressible).
double estimate_compression_ratio(byte_view input,
                                  std::size_t sample_budget = 64 * 1024);

}  // namespace cloudsync
