#include "compress/varint.hpp"

namespace cloudsync {

void put_varint(byte_buffer& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::optional<std::uint64_t> get_varint(byte_view data, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < data.size() && shift < 64) {
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  return std::nullopt;
}

}  // namespace cloudsync
