// Canonical Huffman entropy coder over the byte alphabet, from scratch.
//
// Composes with LZSS into a gzip-class two-stage pipeline (dictionary +
// entropy coding): the `huffman_lzss_compressor` in compressor.hpp. Used by
// the ablation bench to quantify what the studied services' (dictionary-
// only) compressors leave on the table.
//
// Frame layout: magic, varint payload size, 256 packed 4-bit code lengths,
// bit stream. Code lengths are capped at 15; a canonical ordering makes the
// table self-describing.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cloudsync {

/// Entropy-code `input`. Always succeeds; if coding would expand the data
/// (uniform bytes), a stored frame is produced instead.
byte_buffer huffman_encode(byte_view input);

/// Inverse of huffman_encode. Throws std::runtime_error on malformed input.
byte_buffer huffman_decode(byte_view frame);

/// Shannon-entropy estimate of `input` in bits per byte (diagnostics).
double byte_entropy_bits(byte_view input);

}  // namespace cloudsync
