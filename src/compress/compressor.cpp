#include "compress/compressor.hpp"

#include "compress/huffman.hpp"

namespace cloudsync {

byte_buffer huffman_lzss_compressor::compress(byte_view input) const {
  return huffman_encode(lzss_compress(input, {.level = level_}));
}

byte_buffer huffman_lzss_compressor::decompress(byte_view frame) const {
  return lzss_decompress(huffman_decode(frame));
}

std::shared_ptr<const compressor> make_compressor(int level) {
  if (level <= 0) {
    static const auto identity = std::make_shared<identity_compressor>();
    return identity;
  }
  return std::make_shared<lzss_compressor>(level);
}

}  // namespace cloudsync
