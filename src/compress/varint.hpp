// LEB128-style unsigned varint encoding, used by the LZSS frame and the
// rsync delta serialisation.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace cloudsync {

/// Append v to out, 7 bits per byte, little-endian groups.
void put_varint(byte_buffer& out, std::uint64_t v);

/// Decode starting at `pos` within `data`; advances pos past the varint.
/// Returns nullopt on truncated or oversized (>10 byte) input.
std::optional<std::uint64_t> get_varint(byte_view data, std::size_t& pos);

}  // namespace cloudsync
