#include "compress/huffman.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "compress/varint.hpp"

namespace cloudsync {

namespace {

constexpr std::uint8_t kMagic0 = 'h';
constexpr std::uint8_t kMagic1 = 'f';
constexpr std::uint8_t kFormatStored = 0;
constexpr std::uint8_t kFormatHuffman = 1;
constexpr int kMaxCodeLen = 15;
constexpr std::size_t kAlphabet = 256;

/// Compute Huffman code lengths for the given frequencies, capped at
/// kMaxCodeLen (frequencies are halved and rebuilt if the tree gets too
/// deep — the classic zlib workaround, fine for a cap of 15).
std::array<std::uint8_t, kAlphabet> code_lengths(
    std::array<std::uint64_t, kAlphabet> freq) {
  std::array<std::uint8_t, kAlphabet> lengths{};

  for (;;) {
    // Huffman via a min-heap of (weight, node). Leaves are 0..255, internal
    // nodes get indices >= 256.
    struct node {
      std::uint64_t weight;
      int index;
    };
    struct heavier {
      bool operator()(const node& a, const node& b) const {
        if (a.weight != b.weight) return a.weight > b.weight;
        return a.index > b.index;  // deterministic ties
      }
    };
    std::priority_queue<node, std::vector<node>, heavier> heap;
    std::vector<int> parent;
    parent.reserve(kAlphabet * 2);
    parent.assign(kAlphabet, -1);

    int live = 0;
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      if (freq[s] > 0) {
        heap.push({freq[s], static_cast<int>(s)});
        ++live;
      }
    }
    if (live == 0) return lengths;  // empty input
    if (live == 1) {
      // A single distinct symbol still needs one bit on the wire.
      lengths[static_cast<std::size_t>(heap.top().index)] = 1;
      return lengths;
    }

    while (heap.size() > 1) {
      const node a = heap.top();
      heap.pop();
      const node b = heap.top();
      heap.pop();
      const int idx = static_cast<int>(parent.size());
      parent.push_back(-1);
      parent[static_cast<std::size_t>(a.index)] = idx;
      parent[static_cast<std::size_t>(b.index)] = idx;
      heap.push({a.weight + b.weight, idx});
    }
    const int root = heap.top().index;

    int max_len = 0;
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      if (freq[s] == 0) {
        lengths[s] = 0;
        continue;
      }
      int len = 0;
      for (int n = static_cast<int>(s); n != root;
           n = parent[static_cast<std::size_t>(n)]) {
        ++len;
      }
      lengths[s] = static_cast<std::uint8_t>(len);
      max_len = std::max(max_len, len);
    }
    if (max_len <= kMaxCodeLen) return lengths;

    // Flatten the distribution and retry.
    for (auto& f : freq) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
}

struct canonical_codes {
  std::array<std::uint16_t, kAlphabet> code{};
  std::array<std::uint8_t, kAlphabet> len{};
};

/// Assign canonical codes: symbols sorted by (length, value) get
/// consecutive codes per length.
canonical_codes make_canonical(const std::array<std::uint8_t, kAlphabet>& lengths) {
  canonical_codes out;
  out.len = lengths;
  std::array<std::uint16_t, kMaxCodeLen + 1> count{};
  for (std::uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  std::array<std::uint16_t, kMaxCodeLen + 2> next{};
  std::uint16_t code = 0;
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code = static_cast<std::uint16_t>((code + count[l - 1]) << 1);
    next[l] = code;
  }
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] > 0) out.code[s] = next[lengths[s]]++;
  }
  return out;
}

class bit_writer {
 public:
  explicit bit_writer(byte_buffer& out) : out_(out) {}

  void put(std::uint32_t bits, int n) {  // MSB-first within the code
    for (int i = n - 1; i >= 0; --i) {
      acc_ = static_cast<std::uint8_t>(acc_ << 1 | ((bits >> i) & 1));
      if (++filled_ == 8) {
        out_.push_back(acc_);
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  void flush() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  byte_buffer& out_;
  std::uint8_t acc_ = 0;
  int filled_ = 0;
};

class bit_reader {
 public:
  bit_reader(byte_view data, std::size_t pos) : data_(data), pos_(pos) {}

  int next_bit() {
    if (bit_ == 0) {
      if (pos_ >= data_.size()) return -1;
      cur_ = data_[pos_++];
      bit_ = 8;
    }
    --bit_;
    return (cur_ >> bit_) & 1;
  }

 private:
  byte_view data_;
  std::size_t pos_;
  std::uint8_t cur_ = 0;
  int bit_ = 0;
};

byte_buffer stored_frame(byte_view input) {
  byte_buffer out;
  out.reserve(input.size() + 8);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFormatStored);
  put_varint(out, input.size());
  append(out, input);
  return out;
}

}  // namespace

byte_buffer huffman_encode(byte_view input) {
  if (input.size() < 64) return stored_frame(input);

  std::array<std::uint64_t, kAlphabet> freq{};
  for (std::uint8_t b : input) ++freq[b];
  const auto lengths = code_lengths(freq);
  const canonical_codes codes = make_canonical(lengths);

  byte_buffer out;
  out.reserve(input.size() / 2 + 160);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFormatHuffman);
  put_varint(out, input.size());
  // 256 code lengths, two per byte.
  for (std::size_t s = 0; s < kAlphabet; s += 2) {
    out.push_back(static_cast<std::uint8_t>(lengths[s] << 4 |
                                            (lengths[s + 1] & 0x0f)));
  }

  bit_writer writer(out);
  for (std::uint8_t b : input) {
    writer.put(codes.code[b], codes.len[b]);
  }
  writer.flush();

  if (out.size() >= input.size() + 7) return stored_frame(input);
  return out;
}

byte_buffer huffman_decode(byte_view frame) {
  auto fail = [](const char* why) -> byte_buffer {
    throw std::runtime_error(std::string("huffman_decode: ") + why);
  };
  if (frame.size() < 4 || frame[0] != kMagic0 || frame[1] != kMagic1) {
    return fail("bad magic");
  }
  std::size_t pos = 3;
  const auto size = get_varint(frame, pos);
  if (!size) return fail("truncated header");

  if (frame[2] == kFormatStored) {
    if (frame.size() - pos != *size) return fail("stored size mismatch");
    return byte_buffer(frame.begin() + static_cast<std::ptrdiff_t>(pos),
                       frame.end());
  }
  if (frame[2] != kFormatHuffman) return fail("unknown format");
  if (frame.size() < pos + kAlphabet / 2) return fail("truncated table");

  std::array<std::uint8_t, kAlphabet> lengths{};
  for (std::size_t s = 0; s < kAlphabet; s += 2) {
    const std::uint8_t packed = frame[pos++];
    lengths[s] = packed >> 4;
    lengths[s + 1] = packed & 0x0f;
  }

  // Canonical decoding tables: first code and first symbol index per length.
  std::array<std::uint16_t, kMaxCodeLen + 1> count{};
  for (std::uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  std::array<std::uint32_t, kMaxCodeLen + 1> first_code{};
  std::array<std::uint32_t, kMaxCodeLen + 1> first_index{};
  std::uint32_t code = 0, index = 0;
  std::vector<std::uint8_t> symbols;  // sorted by (length, symbol)
  symbols.reserve(kAlphabet);
  for (int l = 1; l <= kMaxCodeLen; ++l) {
    code = (code + count[l - 1]) << 1;
    first_code[l] = code;
    first_index[l] = index;
    index += count[l];
    for (std::size_t s = 0; s < kAlphabet; ++s) {
      if (lengths[s] == l) symbols.push_back(static_cast<std::uint8_t>(s));
    }
  }
  if (symbols.empty() && *size > 0) return fail("empty code table");

  byte_buffer out;
  out.reserve(*size);
  bit_reader reader(frame, pos);
  while (out.size() < *size) {
    std::uint32_t acc = 0;
    int len = 0;
    for (;;) {
      const int bit = reader.next_bit();
      if (bit < 0) return fail("truncated bit stream");
      acc = acc << 1 | static_cast<std::uint32_t>(bit);
      ++len;
      if (len > kMaxCodeLen) return fail("invalid code");
      const std::uint32_t offset = acc - first_code[len];
      if (count[len] > 0 && acc >= first_code[len] && offset < count[len]) {
        out.push_back(symbols[first_index[len] + offset]);
        break;
      }
    }
  }
  return out;
}

double byte_entropy_bits(byte_view input) {
  if (input.empty()) return 0.0;
  std::array<std::uint64_t, kAlphabet> freq{};
  for (std::uint8_t b : input) ++freq[b];
  double h = 0.0;
  const double n = static_cast<double>(input.size());
  for (std::uint64_t f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace cloudsync
