#include "compress/lzss.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "compress/varint.hpp"
#include "util/crc32.hpp"

namespace cloudsync {

namespace {

constexpr std::uint8_t kMagic0 = 'c';
constexpr std::uint8_t kMagic1 = 'z';
constexpr std::uint8_t kFormatStored = 0;
constexpr std::uint8_t kFormatLzss = 1;

constexpr std::size_t kWindowSize = 64 * 1024;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // length fits one byte
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

struct level_config {
  std::size_t max_chain;  ///< How many previous positions to examine.
  std::size_t nice_len;   ///< Stop searching once a match this long is found.
  bool lazy;              ///< Defer one byte to look for a better match.
  std::size_t accept_len; ///< Shortest match worth emitting (>= kMinMatch).
                          ///< Low levels skip short matches entirely — the
                          ///< "quite low" compression of mobile clients.
};

level_config config_for(int level) {
  switch (std::clamp(level, 1, 9)) {
    case 1: return {2, 16, false, 8};
    case 2: return {4, 24, false, 7};
    case 3: return {16, 32, false, kMinMatch};
    case 4: return {24, 48, false, kMinMatch};
    case 5: return {32, 64, true, kMinMatch};
    case 6: return {64, 96, true, kMinMatch};
    case 7: return {128, 128, true, kMinMatch};
    case 8: return {256, 192, true, kMinMatch};
    default: return {1024, kMaxMatch, true, kMinMatch};
  }
}

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Hash-chain match finder over the input. Chain links are 32-bit (inputs
/// are bounded by the simulator's 2 GiB file cap, and in practice by the
/// 2 MiB fleet clamp) and the head/prev arrays live in thread-local scratch
/// reused across calls, so a compression call costs zero heap allocations
/// after warm-up. `prev_` needs no clearing: chains are only entered through
/// `head_`, and every reachable `prev_` slot was written by insert().
class match_finder {
 public:
  match_finder(byte_view input, const level_config& cfg)
      : input_(input), cfg_(cfg), head_(scratch_head()),
        prev_(scratch_prev(input.size())) {
    head_.assign(kHashSize, kNone);
  }

  struct match {
    std::size_t length = 0;
    std::size_t distance = 0;
  };

  /// Best match at `pos` against the preceding window.
  match find(std::size_t pos) const {
    match best;
    if (pos + kMinMatch > input_.size()) return best;
    const std::size_t limit =
        pos >= kWindowSize ? pos - kWindowSize : 0;
    const std::size_t max_len = std::min(kMaxMatch, input_.size() - pos);
    std::uint32_t cand = head_[hash4(input_.data() + pos)];
    std::size_t chain = cfg_.max_chain;
    while (cand != kNone && cand >= limit && chain-- > 0 &&
           best.length < max_len) {
      // Quick reject: check the byte just past the current best.
      if (best.length == 0 ||
          input_[cand + best.length] == input_[pos + best.length]) {
        std::size_t len = 0;
        while (len < max_len && input_[cand + len] == input_[pos + len]) {
          ++len;
        }
        if (len > best.length) {
          best.length = len;
          best.distance = pos - cand;
          if (len >= cfg_.nice_len) break;
        }
      }
      cand = prev_[cand];
    }
    if (best.length < cfg_.accept_len) best = {};
    return best;
  }

  /// Register position `pos` in the hash chains.
  void insert(std::size_t pos) {
    if (pos + 4 > input_.size()) return;
    const std::uint32_t h = hash4(input_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  static std::vector<std::uint32_t>& scratch_head() {
    thread_local std::vector<std::uint32_t> head;
    return head;
  }
  static std::vector<std::uint32_t>& scratch_prev(std::size_t n) {
    thread_local std::vector<std::uint32_t> prev;
    if (prev.size() < n) prev.resize(n);
    return prev;
  }

  byte_view input_;
  const level_config& cfg_;
  std::vector<std::uint32_t>& head_;
  std::vector<std::uint32_t>& prev_;
};

/// Token emitter with one flag byte per 8 tokens (bit set = match).
class token_writer {
 public:
  explicit token_writer(byte_buffer& out) : out_(out) {}

  void literal(std::uint8_t b) {
    begin_token(false);
    out_.push_back(b);
  }

  void match(std::size_t distance, std::size_t length) {
    begin_token(true);
    out_.push_back(static_cast<std::uint8_t>(distance - 1));
    out_.push_back(static_cast<std::uint8_t>((distance - 1) >> 8));
    out_.push_back(static_cast<std::uint8_t>(length - kMinMatch));
  }

 private:
  void begin_token(bool is_match) {
    if (bit_ == 8) {
      flag_pos_ = out_.size();
      out_.push_back(0);
      bit_ = 0;
    }
    if (is_match) out_[flag_pos_] |= static_cast<std::uint8_t>(1u << bit_);
    ++bit_;
  }

  byte_buffer& out_;
  std::size_t flag_pos_ = 0;
  unsigned bit_ = 8;
};

byte_buffer make_stored_frame(byte_view input) {
  byte_buffer out;
  out.reserve(input.size() + 16);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFormatStored);
  put_varint(out, input.size());
  append(out, input);
  const std::uint32_t crc = crc32(input);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

}  // namespace

byte_buffer lzss_compress(byte_view input, lzss_params params) {
  if (params.level <= 0 || input.size() < kMinMatch + 4) {
    return make_stored_frame(input);
  }
  const level_config cfg = config_for(params.level);

  byte_buffer out;
  out.reserve(input.size() / 2 + 32);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kFormatLzss);
  put_varint(out, input.size());

  match_finder finder(input, cfg);
  token_writer writer(out);

  std::size_t pos = 0;
  while (pos < input.size()) {
    match_finder::match cur = finder.find(pos);
    if (cur.length >= kMinMatch) {
      if (cfg.lazy && pos + 1 < input.size()) {
        finder.insert(pos);
        const match_finder::match next = finder.find(pos + 1);
        if (next.length > cur.length + 1) {
          // The deferred match is better: emit a literal and continue from
          // pos+1 where the loop will rediscover `next`.
          writer.literal(input[pos]);
          ++pos;
          continue;
        }
      } else {
        finder.insert(pos);
      }
      writer.match(cur.distance, cur.length);
      // Register the covered positions so later matches can reference them.
      for (std::size_t i = 1; i < cur.length; ++i) finder.insert(pos + i);
      pos += cur.length;
    } else {
      finder.insert(pos);
      writer.literal(input[pos]);
      ++pos;
    }
  }

  const std::uint32_t crc = crc32(input);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }

  // If the "compressed" stream expanded, fall back to a stored frame: the
  // consumer always gets min(original, compressed) semantics, like gzip.
  if (out.size() >= input.size() + 7 + 4) {
    return make_stored_frame(input);
  }
  return out;
}

byte_buffer lzss_decompress(byte_view frame) {
  std::size_t pos = 0;
  auto fail = [](const char* why) -> byte_buffer {
    throw std::runtime_error(std::string("lzss_decompress: ") + why);
  };
  if (frame.size() < 7 || frame[0] != kMagic0 || frame[1] != kMagic1) {
    return fail("bad magic");
  }
  const std::uint8_t format = frame[2];
  pos = 3;
  const auto orig_size = get_varint(frame, pos);
  if (!orig_size) return fail("truncated header");
  if (frame.size() < pos + 4) return fail("truncated frame");
  const std::size_t body_end = frame.size() - 4;

  byte_buffer out;
  out.reserve(*orig_size);

  if (format == kFormatStored) {
    if (body_end - pos != *orig_size) return fail("stored size mismatch");
    out.assign(frame.begin() + static_cast<std::ptrdiff_t>(pos),
               frame.begin() + static_cast<std::ptrdiff_t>(body_end));
  } else if (format == kFormatLzss) {
    std::uint8_t flags = 0;
    unsigned bit = 8;
    while (out.size() < *orig_size) {
      if (bit == 8) {
        if (pos >= body_end) return fail("truncated token stream");
        flags = frame[pos++];
        bit = 0;
      }
      if (flags & (1u << bit)) {
        if (pos + 3 > body_end) return fail("truncated match");
        const std::size_t distance =
            (static_cast<std::size_t>(frame[pos]) |
             static_cast<std::size_t>(frame[pos + 1]) << 8) + 1;
        const std::size_t length = frame[pos + 2] + kMinMatch;
        pos += 3;
        if (distance > out.size()) return fail("match before start");
        // Byte-by-byte copy: overlapping matches (distance < length) are the
        // RLE case and must replicate.
        std::size_t src = out.size() - distance;
        for (std::size_t i = 0; i < length; ++i) {
          out.push_back(out[src + i]);
        }
      } else {
        if (pos >= body_end) return fail("truncated literal");
        out.push_back(frame[pos++]);
      }
      ++bit;
    }
    if (out.size() != *orig_size) return fail("size mismatch");
  } else {
    return fail("unknown format");
  }

  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(frame[body_end + i]) << (8 * i);
  }
  if (crc32(out) != crc) return fail("crc mismatch");
  return out;
}

std::vector<sample_window> compression_sample_windows(
    std::size_t size, std::size_t sample_budget) {
  std::vector<sample_window> windows;
  if (size == 0) return windows;
  if (size <= sample_budget) {
    windows.push_back({0, size});
    return windows;
  }
  // Sample up to 8 evenly spaced windows.
  const std::size_t window = sample_budget / 8;
  windows.reserve(8);
  for (int i = 0; i < 8; ++i) {
    const std::size_t off = (size - window) * static_cast<std::size_t>(i) / 7;
    windows.push_back({off, window});
  }
  return windows;
}

double estimate_ratio_of_windows(const std::vector<byte_view>& windows) {
  std::size_t total_in = 0, total_out = 0;
  for (const byte_view chunk : windows) {
    const byte_buffer c = lzss_compress(chunk, {.level = 5});
    total_in += chunk.size();
    total_out += c.size();
  }
  if (total_in == 0) return 1.0;
  return static_cast<double>(total_in) /
         static_cast<double>(std::max<std::size_t>(1, total_out));
}

double estimate_compression_ratio(byte_view input, std::size_t sample_budget) {
  if (input.empty()) return 1.0;
  std::vector<byte_view> views;
  for (const sample_window& w : compression_sample_windows(input.size(),
                                                           sample_budget)) {
    views.push_back(input.subspan(w.offset, w.length));
  }
  return estimate_ratio_of_windows(views);
}

namespace {
/// History ring of the stream sizer. Must be a power of two and exceed
/// kWindowSize + kMaxMatch by enough staging room that chain entries are
/// always recycled strictly outside the match window (see insert/find).
constexpr std::size_t kSizerRingBytes = 128 * 1024;
constexpr std::uint64_t kSizerRingMask = kSizerRingBytes - 1;
/// Feed bytes are staged into the ring at most this many at a time, so the
/// live span (64 KiB history + lookahead + staging) always fits the ring.
constexpr std::size_t kSizerStageBytes = 32 * 1024;
constexpr std::uint64_t kNoPos = ~0ULL;

std::uint64_t stored_frame_size(std::uint64_t size) {
  byte_buffer varint;
  put_varint(varint, size);
  return 2 + 1 + varint.size() + size + 4;
}
}  // namespace

lzss_stream_sizer::lzss_stream_sizer(std::uint64_t total_size,
                                     lzss_params params)
    : total_(total_size),
      stored_only_(params.level <= 0 || total_size < kMinMatch + 4) {
  if (stored_only_) return;
  const level_config cfg = config_for(params.level);
  max_chain_ = cfg.max_chain;
  nice_len_ = cfg.nice_len;
  accept_len_ = cfg.accept_len;
  lazy_ = cfg.lazy;
  ring_.resize(kSizerRingBytes);
  head_.assign(kHashSize, kNoPos);
  prev_.resize(kSizerRingBytes);
  out_ = stored_frame_size(total_) - total_ - 4;  // shared frame header
}

std::uint8_t lzss_stream_sizer::at(std::uint64_t pos) const {
  return ring_[pos & kSizerRingMask];
}

std::uint32_t lzss_stream_sizer::hash_at(std::uint64_t pos) const {
  // hash4 reads a little-endian uint32; assemble it explicitly because the
  // four bytes may wrap around the ring.
  const std::uint32_t v = static_cast<std::uint32_t>(at(pos)) |
                          static_cast<std::uint32_t>(at(pos + 1)) << 8 |
                          static_cast<std::uint32_t>(at(pos + 2)) << 16 |
                          static_cast<std::uint32_t>(at(pos + 3)) << 24;
  return (v * 2654435761u) >> (32 - kHashBits);
}

lzss_stream_sizer::match lzss_stream_sizer::find(std::uint64_t pos) const {
  match best;
  if (pos + kMinMatch > total_) return best;
  const std::uint64_t limit = pos >= kWindowSize ? pos - kWindowSize : 0;
  const std::size_t max_len =
      static_cast<std::size_t>(std::min<std::uint64_t>(kMaxMatch,
                                                       total_ - pos));
  std::uint64_t cand = head_[hash_at(pos)];
  std::size_t chain = max_chain_;
  while (cand != kNoPos && cand >= limit && chain-- > 0 &&
         best.length < max_len) {
    if (best.length == 0 || at(cand + best.length) == at(pos + best.length)) {
      std::size_t len = 0;
      while (len < max_len && at(cand + len) == at(pos + len)) {
        ++len;
      }
      if (len > best.length) {
        best.length = len;
        best.distance = static_cast<std::size_t>(pos - cand);
        if (len >= nice_len_) break;
      }
    }
    cand = prev_[cand & kSizerRingMask];
  }
  if (best.length < accept_len_) best = {};
  return best;
}

void lzss_stream_sizer::insert(std::uint64_t pos) {
  if (pos + 4 > total_) return;
  const std::uint32_t h = hash_at(pos);
  prev_[pos & kSizerRingMask] = head_[h];
  head_[h] = pos;
}

void lzss_stream_sizer::count_token(bool is_match) {
  if (bit_ == 8) {
    ++out_;  // flag byte
    bit_ = 0;
  }
  ++bit_;
  out_ += is_match ? 3 : 1;
}

void lzss_stream_sizer::drain(bool final_window) {
  // Matching at `pos` may read ahead up to kMaxMatch bytes (the lazy probe
  // one further) and inserting covered positions hashes up to three bytes
  // past the match, so hold positions back until that whole horizon is fed;
  // the remainder resolves at finish(), where the true end-of-input match
  // limits apply.
  while (pos_ < total_) {
    if (!final_window && pos_ + kMaxMatch + 3 > fed_) return;
    match cur = find(pos_);
    if (cur.length >= kMinMatch) {
      if (lazy_ && pos_ + 1 < total_) {
        insert(pos_);
        const match next = find(pos_ + 1);
        if (next.length > cur.length + 1) {
          count_token(false);
          ++pos_;
          continue;
        }
      } else {
        insert(pos_);
      }
      count_token(true);
      for (std::size_t i = 1; i < cur.length; ++i) insert(pos_ + i);
      pos_ += cur.length;
    } else {
      insert(pos_);
      count_token(false);
      ++pos_;
    }
  }
}

void lzss_stream_sizer::feed(byte_view window) {
  if (stored_only_) {
    fed_ += window.size();
    return;
  }
  while (!window.empty()) {
    const std::size_t take = std::min(window.size(), kSizerStageBytes);
    for (std::size_t i = 0; i < take; ++i) {
      ring_[(fed_ + i) & kSizerRingMask] = window[i];
    }
    fed_ += take;
    window = window.subspan(take);
    drain(/*final_window=*/false);
  }
}

std::uint64_t lzss_stream_sizer::finish() {
  if (fed_ != total_) {
    throw std::logic_error("lzss_stream_sizer: fed size != declared size");
  }
  if (finished_) throw std::logic_error("lzss_stream_sizer: already finished");
  finished_ = true;
  if (stored_only_) return stored_frame_size(total_);
  drain(/*final_window=*/true);
  out_ += 4;  // CRC-32 trailer
  // Expansion fallback: the consumer gets min(original, compressed), so the
  // priced frame is the stored one whenever the token stream expanded.
  if (out_ >= total_ + 7 + 4) return stored_frame_size(total_);
  return out_;
}

}  // namespace cloudsync
