// Polymorphic compressor interface used by the sync pipeline.
//
// Services differ in *whether* and *how hard* they compress per access method
// and direction (paper §5.1, Table 8); the sync engine holds a compressor per
// (method, direction) slot.
#pragma once

#include <memory>
#include <string>

#include "compress/lzss.hpp"
#include "util/bytes.hpp"

namespace cloudsync {

class compressor {
 public:
  virtual ~compressor() = default;

  virtual byte_buffer compress(byte_view input) const = 0;
  virtual byte_buffer decompress(byte_view frame) const = 0;
  virtual std::string name() const = 0;
};

/// Pass-through: models services that upload raw bytes.
class identity_compressor final : public compressor {
 public:
  byte_buffer compress(byte_view input) const override {
    return byte_buffer(input.begin(), input.end());
  }
  byte_buffer decompress(byte_view frame) const override {
    return byte_buffer(frame.begin(), frame.end());
  }
  std::string name() const override { return "identity"; }
};

/// LZSS at a configurable level. Level maps to the paper's qualitative
/// "low / moderate / high" compression observations.
class lzss_compressor final : public compressor {
 public:
  explicit lzss_compressor(int level) : level_(level) {}

  byte_buffer compress(byte_view input) const override {
    return lzss_compress(input, {.level = level_});
  }
  byte_buffer decompress(byte_view frame) const override {
    return lzss_decompress(frame);
  }
  std::string name() const override {
    return "lzss-" + std::to_string(level_);
  }
  int level() const { return level_; }

 private:
  int level_;
};

/// Two-stage pipeline: LZSS dictionary coding followed by canonical Huffman
/// entropy coding — the gzip-class reference point the ablation bench uses
/// to show what a dictionary-only client compressor leaves on the table.
class huffman_lzss_compressor final : public compressor {
 public:
  explicit huffman_lzss_compressor(int level) : level_(level) {}

  byte_buffer compress(byte_view input) const override;
  byte_buffer decompress(byte_view frame) const override;
  std::string name() const override {
    return "lzss+huffman-" + std::to_string(level_);
  }

 private:
  int level_;
};

/// Factory: level <= 0 yields the identity compressor.
std::shared_ptr<const compressor> make_compressor(int level);

}  // namespace cloudsync
