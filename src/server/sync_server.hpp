// Sharded multi-tenant sync server: one process, N shards, thousands of
// concurrent sessions.
//
// Sharding model: users hash to shards (shard_of), and a shard OWNS all
// server-side state for its users — metadata namespace, object store, chunk
// backend, and the user's dedup scopes in the shared dedup_index. Every
// server RPC for a user runs under that shard's stripe lock, so per-scope
// operations are serialized exactly as dedup_index's contract requires while
// distinct shards proceed in parallel. The lock is taken try_lock-first so
// contention is counted, not just suffered.
//
// Admission: each shard runs a FIFO ticket queue with a bounded in-flight
// window (server_config::admission_limit). Sessions block at admit() when the
// shard is saturated; the wait is measured and surfaced per shard.
//
// Observability: shard_stats is the traffic_meter-equivalent for the server
// side — occupancy gauges, queue depths, lock contention, per-state session
// histograms — snapshot via stats() and dumped by tools/server_stats.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dedup/dedup_index.hpp"
#include "server/session.hpp"
#include "storage/metadata_service.hpp"

namespace cloudsync {

struct server_config {
  std::uint32_t shards = 1;           ///< stripe count (clamped to >= 1)
  std::uint32_t admission_limit = 64; ///< max in-flight sessions per shard
  /// SHA-256 verify every uploaded payload against its claimed fingerprint —
  /// the server-side CPU work that makes shard scaling measurable (and keeps
  /// a lying client out of the dedup index).
  bool verify_uploads = true;
  /// Store payloads through the chunk backend (manifest-of-extents) instead
  /// of whole objects.
  bool use_chunk_store = false;
  std::size_t chunk_store_chunk_size = 64 * 1024;
  /// Pre-size hint for each user's dedup scope; small keeps a million thin
  /// tenant scopes thin.
  std::size_t dedup_scope_hint = 8;
};

/// Snapshot of one shard's counters and gauges.
struct shard_stats {
  // Occupancy gauges
  std::uint64_t users = 0;         ///< tenants attached to this shard
  std::uint64_t objects = 0;       ///< live keys in the shard's object store
  std::uint64_t manifests = 0;     ///< chunk-backend manifests (chunk mode)
  std::uint64_t live_bytes = 0;    ///< live logical bytes stored

  // Admission queue
  std::uint64_t sessions_admitted = 0;
  std::uint64_t admission_waits = 0;    ///< admits that had to block
  std::uint64_t admission_wait_ns = 0;  ///< total blocked time
  std::uint32_t queue_depth_peak = 0;   ///< max tickets waiting behind the window
  std::uint32_t in_flight_peak = 0;     ///< max concurrently admitted sessions

  // Stripe lock
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contentions = 0;  ///< acquisitions that failed try_lock
  std::uint64_t busy_ns = 0;           ///< total time the lock was held

  // Work counters
  std::uint64_t diff_requests = 0;
  std::uint64_t dedup_probes = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t uploads = 0;
  std::uint64_t upload_bytes = 0;
  std::uint64_t verified_bytes = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t commit_batches = 0;
  std::uint64_t commits = 0;

  // Session lifecycle histogram: transitions into each state, and how many
  // sessions are in each state right now.
  std::array<std::uint64_t, kSessionStateCount> state_entered{};
  std::array<std::uint64_t, kSessionStateCount> state_live{};
};

struct server_stats {
  std::vector<shard_stats> shards;
  /// Element-wise sum (gauge peaks take the max across shards).
  shard_stats aggregate() const;
};

class sync_server {
 public:
  explicit sync_server(server_config cfg = {});
  ~sync_server();

  sync_server(const sync_server&) = delete;
  sync_server& operator=(const sync_server&) = delete;

  std::uint32_t shard_count() const;
  std::uint32_t shard_of(std::uint32_t user) const;
  const server_config& config() const { return cfg_; }

  /// RAII admission slot: blocks in the constructor path (admit()) until the
  /// user's shard has capacity, releases and wakes the queue on destruction.
  class admission_ticket {
   public:
    admission_ticket(admission_ticket&& other) noexcept;
    admission_ticket& operator=(admission_ticket&&) = delete;
    admission_ticket(const admission_ticket&) = delete;
    ~admission_ticket();

    std::uint32_t shard() const { return shard_; }
    std::uint64_t queue_wait_ns() const { return wait_ns_; }

   private:
    friend class sync_server;
    admission_ticket(sync_server* srv, std::uint32_t shard,
                     std::uint64_t wait_ns)
        : srv_(srv), shard_(shard), wait_ns_(wait_ns) {}
    sync_server* srv_;
    std::uint32_t shard_;
    std::uint64_t wait_ns_;
  };

  /// Enter the user's shard admission queue; blocks until a slot frees
  /// (FIFO). Hold the ticket for the duration of the session's server RPCs.
  admission_ticket admit(std::uint32_t user);

  /// Register a device for the user and pre-create their dedup scope.
  device_id attach_device(std::uint32_t user);

  /// Diff RPC: classify each entry as upload (server lacks the content) or
  /// duplicate (already in the user's dedup scope, or repeated earlier in
  /// this very request — within-batch dedup).
  diff_response compute_diff(const diff_request& req);

  /// Transferring phase: store payloads (content-addressed per user), with
  /// optional SHA-256 verify-on-ingest. Throws std::runtime_error on a
  /// fingerprint mismatch (the session records itself failed).
  void upload_batch(std::uint32_t user, const std::vector<upload_item>& items);

  /// One entry of the applying phase's batched commit RPC.
  struct commit_entry {
    std::string path;
    std::string object_key;
    fingerprint fp;
    std::uint64_t logical_size = 0;
    std::uint64_t stored_size = 0;
  };

  /// Applying phase: take a dedup reference and commit a manifest for every
  /// file of the transaction (uploaded or deduplicated) in one round trip.
  /// Versioning is server-assigned (previous version + 1).
  void commit_batch(std::uint32_t user, device_id dev,
                    const std::vector<commit_entry>& entries);

  /// Tenant eviction: drop the user's dedup scope (metadata/objects are
  /// retained — fake deletion economics). Returns false if never attached.
  bool evict_user(std::uint32_t user);

  /// Record a session lifecycle transition for the user's shard histogram.
  /// Lock-free (atomics) — called outside the stripe lock.
  void note_transition(std::uint32_t user, session_state from,
                       session_state to);

  /// Snapshot every shard's counters (takes each stripe lock briefly).
  server_stats stats() const;

  /// The shared, internally-synchronized scope directory (per-scope ops are
  /// serialized by shard ownership). Exposed for tests and tools.
  dedup_index& dedup() { return dedup_; }

  /// Read-only peek at a user's committed metadata (takes the stripe lock).
  std::vector<std::string> list_paths(std::uint32_t user) const;
  const file_manifest* lookup_manifest(std::uint32_t user,
                                       std::string_view path) const;

 private:
  struct shard;

  shard& shard_for(std::uint32_t user) const;
  void release(std::uint32_t shard_index);

  server_config cfg_;
  std::vector<std::unique_ptr<shard>> shards_;
  dedup_index dedup_;
};

}  // namespace cloudsync
