#include "server/session.hpp"

#include <algorithm>
#include <chrono>

#include "server/sync_server.hpp"
#include "store/content_store.hpp"
#include "util/content_cache.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace cloudsync {

const char* to_string(session_state s) {
  switch (s) {
    case session_state::idle:
      return "idle";
    case session_state::computing_diff:
      return "computing_diff";
    case session_state::transferring:
      return "transferring";
    case session_state::applying:
      return "applying";
    case session_state::complete:
      return "complete";
    case session_state::failed:
      return "failed";
  }
  return "?";
}

namespace {

// Seed-domain salts: pooled, unique, and per-user streams must never collide.
constexpr std::uint64_t kPoolDomain = 0x9e3779b97f4a0001ULL;
constexpr std::uint64_t kUniqueDomain = 0x517cc1b727220002ULL;
constexpr std::uint64_t kUserStreamDomain = 0xd1b54a32d1920003ULL;
constexpr std::uint64_t kSizeDomain = 0x2545f4914f6c0004ULL;
constexpr std::uint64_t kIdentitySalt = 0x1de47f1e5ALL;

using steady = std::chrono::steady_clock;

std::uint64_t ns_between(steady::time_point a, steady::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

std::uint32_t size_for_seed(std::uint64_t seed, std::uint32_t mean_bytes) {
  rng r(mix64(seed ^ kSizeDomain));
  const std::uint64_t lo = std::max<std::uint64_t>(1, mean_bytes / 4);
  const std::uint64_t hi = std::max<std::uint64_t>(lo, 2ULL * mean_bytes);
  return static_cast<std::uint32_t>(r.uniform_range(lo, hi));
}

content_identity identity_for(std::uint64_t seed, std::uint32_t size) {
  // One lazy rope + one SHA-256 per identity, shared by every session that
  // draws it (the pooled identities are drawn thousands of times per wave).
  static content_memo<content_identity> memo(64 * 1024);
  return memo.get_or_compute_keyed(mix64(seed), size, kIdentitySalt, [&] {
    rng r(seed);
    byte_buffer bytes = random_bytes(r, size);
    content_identity id;
    id.fp = sha256(bytes);
    if (content_store::global().mode() == content_mode::flat) {
      id.content = content_ref::from_buffer(std::move(bytes));
    } else {
      // CoW mode: hold the identity as a lazy ref so a million-user grid's
      // unmaterialized identities cost no bytes until the wire needs them.
      id.content = content_ref::lazy(
          size, [seed, size] {
            rng rr(seed);
            return random_bytes(rr, size);
          });
    }
    return id;
  });
}

std::vector<session_workload> make_session_workloads(const workload_params& p) {
  const std::uint32_t population = std::max<std::uint32_t>(1, p.user_population);
  const std::uint32_t sessions = std::min(std::max<std::uint32_t>(1, p.sessions), population);
  // Stride-sample distinct users across the population: i*stride < population
  // for all i < sessions, so ids never collide.
  const std::uint32_t stride = std::max<std::uint32_t>(1, population / sessions);
  const std::uint64_t base = mix64(p.seed);

  std::vector<session_workload> out(sessions);
  for (std::uint32_t i = 0; i < sessions; ++i) {
    session_workload& w = out[i];
    // User ids start at 1: dedup scope 0 is the global namespace.
    w.user = 1 + i * stride;
    rng r(mix64(base ^ kUserStreamDomain ^ w.user));
    w.files.reserve(p.files_per_session);
    for (std::uint32_t f = 0; f < p.files_per_session; ++f) {
      std::uint64_t seed;
      if (f > 0 && r.chance(p.p_repeat_in_session)) {
        // Repeat an earlier file's content under a new path — the
        // within-batch dedup case the server's diff must catch.
        seed = w.files[r.uniform(f)].content_seed;
      } else if (r.chance(p.p_pool_identity)) {
        const std::uint64_t pool_id = r.zipf(std::max<std::uint32_t>(1, p.identity_pool), 1.1);
        seed = mix64(base ^ kPoolDomain ^ pool_id);
      } else {
        seed = mix64(base ^ kUniqueDomain ^
                     (static_cast<std::uint64_t>(w.user) << 20) ^ f);
      }
      session_file file;
      file.path = "f" + std::to_string(f) + ".dat";
      file.content_seed = seed;
      file.size = size_for_seed(seed, p.mean_file_bytes);
      w.files.push_back(std::move(file));
    }
  }
  return out;
}

namespace {

std::string object_key_for(std::uint32_t user, const fingerprint& fp) {
  // Content-addressed per user: dedup guarantees each key is PUT at most
  // once per scope, so versioned-key reuse hazards never arise.
  return "u" + std::to_string(user) + "/o/" + std::to_string(fp.prefix64());
}

/// Tracks the lifecycle clock: accumulates wall time into the current
/// state's slot and reports transitions to the shard histogram.
class lifecycle {
 public:
  lifecycle(sync_server& srv, std::uint32_t user, session_result& res)
      : srv_(srv), user_(user), res_(res), mark_(steady::now()) {}

  void to(session_state next) {
    const auto now = steady::now();
    res_.timings.ns[static_cast<std::size_t>(state_)] += ns_between(mark_, now);
    mark_ = now;
    srv_.note_transition(user_, state_, next);
    state_ = next;
  }

 private:
  sync_server& srv_;
  std::uint32_t user_;
  session_result& res_;
  session_state state_ = session_state::idle;
  steady::time_point mark_;
};

}  // namespace

session_result run_session(sync_server& server, const session_workload& work,
                           const session_options& opts) {
  session_result res;
  res.user = work.user;
  res.files = static_cast<std::uint32_t>(work.files.size());

  lifecycle life(server, work.user, res);
  life.to(session_state::computing_diff);

  // Client-local: resolve content identities and build the diff request.
  std::vector<content_identity> ids;
  ids.reserve(work.files.size());
  diff_request req;
  req.user = work.user;
  req.entries.reserve(work.files.size());
  for (const session_file& f : work.files) {
    ids.push_back(identity_for(f.content_seed, f.size));
    req.entries.push_back({f.path, ids.back().fp, f.size});
    res.update_bytes += f.size;
  }

  const auto t_admit = steady::now();
  {
    sync_server::admission_ticket ticket = server.admit(work.user);
    res.queue_wait_ns = ticket.queue_wait_ns();
    res.shard = ticket.shard();

    // Attach RPC (device registration + scope warm-up).
    const device_id dev = server.attach_device(work.user);
    res.meter.record(direction::up, traffic_category::metadata,
                     kRpcEnvelopeBytes);
    res.meter.record(direction::down, traffic_category::metadata,
                     kRpcResponseBytes);

    // Diff RPC: one envelope for the whole snapshot.
    res.meter.record(direction::up, traffic_category::metadata,
                     kRpcEnvelopeBytes +
                         req.entries.size() * kSnapshotEntryBytes);
    const diff_response diff = server.compute_diff(req);
    res.meter.record(direction::down, traffic_category::metadata,
                     kRpcResponseBytes +
                         req.entries.size() * kDiffVerdictBytes);
    res.dedup_hits = static_cast<std::uint32_t>(diff.duplicate.size());
    res.files_uploaded = static_cast<std::uint32_t>(diff.upload.size());

    life.to(session_state::transferring);
    if (!diff.upload.empty()) {
      std::vector<upload_item> items;
      items.reserve(diff.upload.size());
      std::uint64_t payload = 0;
      for (const std::uint32_t idx : diff.upload) {
        const session_file& f = work.files[idx];
        upload_item item;
        item.path = f.path;
        item.object_key = object_key_for(work.user, ids[idx].fp);
        item.content = ids[idx].content;
        item.fp = ids[idx].fp;
        payload += f.size;
        items.push_back(std::move(item));
      }
      res.meter.record(direction::up, traffic_category::payload, payload);
      res.meter.record(direction::up, traffic_category::metadata,
                       kRpcEnvelopeBytes + items.size() * kSnapshotEntryBytes);
      try {
        server.upload_batch(work.user, items);
      } catch (const std::exception&) {
        // Verify rejection: the payload bytes were spent for nothing.
        res.meter.record(direction::up, traffic_category::retry, payload);
        res.failed = true;
        life.to(session_state::failed);
        res.latency_ns = ns_between(t_admit, steady::now());
        return res;
      }
      res.meter.record(direction::down, traffic_category::notification,
                       kAckBytes);
    }

    life.to(session_state::applying);
    std::vector<sync_server::commit_entry> commits;
    commits.reserve(work.files.size());
    std::vector<bool> uploaded(work.files.size(), false);
    for (const std::uint32_t idx : diff.upload) uploaded[idx] = true;
    for (std::size_t i = 0; i < work.files.size(); ++i) {
      sync_server::commit_entry e;
      e.path = work.files[i].path;
      e.object_key = object_key_for(work.user, ids[i].fp);
      e.fp = ids[i].fp;
      e.logical_size = work.files[i].size;
      e.stored_size = uploaded[i] ? work.files[i].size : 0;
      commits.push_back(std::move(e));
    }
    if (opts.batch_metadata) {
      res.meter.record(direction::up, traffic_category::metadata,
                       kRpcEnvelopeBytes +
                           commits.size() * kManifestEntryBytes);
      server.commit_batch(work.user, dev, commits);
      res.meter.record(direction::down, traffic_category::notification,
                       kAckBytes);
    } else {
      for (const sync_server::commit_entry& e : commits) {
        res.meter.record(direction::up, traffic_category::metadata,
                         kRpcEnvelopeBytes + kManifestEntryBytes);
        server.commit_batch(work.user, dev, {e});
        res.meter.record(direction::down, traffic_category::notification,
                         kAckBytes);
      }
    }
  }  // admission ticket released

  life.to(session_state::complete);
  res.latency_ns = ns_between(t_admit, steady::now());
  return res;
}

std::uint64_t results_identity_hash(const std::vector<session_result>& results) {
  std::vector<const session_result*> order;
  order.reserve(results.size());
  for (const session_result& r : results) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const session_result* a, const session_result* b) {
              return a->user < b->user;
            });

  content_hasher64 h;
  const auto feed = [&h](std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    h.update(byte_view{b, 8});
  };
  for (const session_result* r : order) {
    feed(r->user);
    feed(r->update_bytes);
    feed(r->files);
    feed(r->files_uploaded);
    feed(r->dedup_hits);
    feed(r->failed ? 1 : 0);
    for (const direction dir : {direction::up, direction::down}) {
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
        feed(r->meter.get(dir, static_cast<traffic_category>(c)));
      }
    }
  }
  return h.finish();
}

}  // namespace cloudsync
