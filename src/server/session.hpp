// Session-side half of the sharded multi-tenant sync server: the explicit
// lifecycle a sync transaction moves through
// (idle → computing_diff → transferring → applying → complete/failed),
// the batched RPC shapes it exchanges with the server, and the deterministic
// workload generator that lets one process drive thousands of concurrent
// sessions.
//
// Determinism contract (what the bench's identity legs rely on): every byte a
// session puts on the wire is a pure function of that session's OWN workload
// and the server state that session itself created — dedup scopes are
// per-user, namespaces are per-user, and each user runs at most one session
// per wave. Traffic and dedup outcomes are therefore byte-identical whatever
// the shard count or driver-thread interleaving; only wall-clock timings and
// shard placement vary, and those are excluded from the identity digest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dedup/fingerprint.hpp"
#include "net/traffic_meter.hpp"
#include "store/content_ref.hpp"

namespace cloudsync {

class sync_server;

/// Lifecycle of one sync transaction. `idle` is the between-waves resting
/// state; `failed` absorbs verify rejections and admission teardown.
enum class session_state : std::uint8_t {
  idle,
  computing_diff,  ///< client-local: fingerprinting the changed files
  transferring,    ///< shipping payload the server's diff asked for
  applying,        ///< server committing manifests + dedup references
  complete,
  failed,
};
inline constexpr std::size_t kSessionStateCount = 6;

const char* to_string(session_state s);

// Wire cost model for the server RPCs, mirroring core/cost_model.hpp's
// spirit: framing is a fixed envelope per round trip plus a small per-entry
// record. Batching a whole sync transaction into one RPC pays the envelope
// once — the measurable win of commit_batch over per-file commits.
inline constexpr std::uint64_t kRpcEnvelopeBytes = 180;   ///< request framing + auth
inline constexpr std::uint64_t kRpcResponseBytes = 60;    ///< response framing
inline constexpr std::uint64_t kSnapshotEntryBytes = 44;  ///< path hash + fingerprint + size
inline constexpr std::uint64_t kDiffVerdictBytes = 5;     ///< per-entry upload/duplicate verdict
inline constexpr std::uint64_t kManifestEntryBytes = 52;  ///< path hash + fp + key + sizes
inline constexpr std::uint64_t kAckBytes = 24;            ///< commit / upload acknowledgement

/// One file of a session's pending change set. Content is identified by a
/// generator seed; bytes are materialized lazily (CoW store) only when the
/// wire or the server's verifier actually needs them.
struct session_file {
  std::string path;
  std::uint64_t content_seed = 0;
  std::uint32_t size = 0;
};

/// Everything one session will sync this wave.
struct session_workload {
  std::uint32_t user = 0;
  std::vector<session_file> files;
};

/// Client→server diff RPC: the session's view of its changed files.
struct snapshot_entry {
  std::string path;
  fingerprint fp;
  std::uint64_t size = 0;
};
struct diff_request {
  std::uint32_t user = 0;
  std::vector<snapshot_entry> entries;
};
/// Server→client verdicts, as indexes into diff_request::entries.
struct diff_response {
  std::vector<std::uint32_t> upload;     ///< content the server lacks
  std::vector<std::uint32_t> duplicate;  ///< deduplicated server-side, skip payload
};

/// One payload unit of the transferring phase.
struct upload_item {
  std::string path;
  std::string object_key;
  content_ref content;
  fingerprint fp;
};

/// Resolved content identity: the bytes behind a (seed, size) pair, plus the
/// fingerprint the dedup index sees. Memoized process-wide so the thousands
/// of sessions sharing a pooled identity share one lazy rope and one SHA-256
/// computation.
struct content_identity {
  content_ref content;
  fingerprint fp;
};
content_identity identity_for(std::uint64_t seed, std::uint32_t size);

/// Deterministic size for a content seed (so identity is a function of the
/// seed alone): uniform in [mean/4, 2*mean], never zero.
std::uint32_t size_for_seed(std::uint64_t seed, std::uint32_t mean_bytes);

/// Knobs for the synthetic multi-tenant workload. A user *population* with an
/// arriving fraction keeps per-user server state O(arrivals), not O(population)
/// — how the bench reaches 1M-user grids in one process.
struct workload_params {
  std::uint64_t seed = 1;
  std::uint32_t user_population = 10'000;
  std::uint32_t sessions = 1'000;  ///< arriving users this wave (<= population)
  std::uint32_t files_per_session = 4;
  std::uint32_t mean_file_bytes = 16 * 1024;
  std::uint32_t identity_pool = 512;   ///< distinct shared identities fleet-wide
  double p_pool_identity = 0.5;        ///< file draws a zipf-pooled identity
  double p_repeat_in_session = 0.1;    ///< file repeats an earlier in-session identity
};

/// Generate the wave: `sessions` distinct users stride-sampled from the
/// population, each with a seeded per-user file list. Pure function of params.
std::vector<session_workload> make_session_workloads(const workload_params& p);

struct session_timings {
  /// Wall nanoseconds spent in each lifecycle state (indexed by
  /// session_state). Excluded from the identity digest.
  std::array<std::uint64_t, kSessionStateCount> ns{};
};

/// Outcome of one session. Traffic/dedup fields are deterministic (hashed by
/// the bench's identity legs); timing/placement fields are not.
struct session_result {
  std::uint32_t user = 0;
  std::uint64_t update_bytes = 0;  ///< logical data update size (TUE denominator)
  traffic_meter meter;             ///< this session's wire bytes by category
  std::uint32_t files = 0;
  std::uint32_t files_uploaded = 0;
  std::uint32_t dedup_hits = 0;
  bool failed = false;

  // --- nondeterministic (excluded from identity) ---
  session_timings timings;
  std::uint64_t latency_ns = 0;     ///< admission request → completion
  std::uint64_t queue_wait_ns = 0;  ///< blocked at the shard admission queue
  std::uint32_t shard = 0;
};

struct session_options {
  /// Batched metadata RPC (one envelope per transaction) vs one commit RPC
  /// per file — the paper's metadata-overhead knob, server edition.
  bool batch_metadata = true;
};

/// Drive one session through its full lifecycle against `server`.
/// Thread-safe per the server's sharding: any number of sessions may run
/// concurrently from any threads.
session_result run_session(sync_server& server, const session_workload& work,
                           const session_options& opts = {});

/// Order-independent digest of the deterministic fields of a result set:
/// serializes results sorted by user id, excluding timings/placement.
/// Byte-identical across shard counts and driver-thread counts.
std::uint64_t results_identity_hash(const std::vector<session_result>& results);

}  // namespace cloudsync
