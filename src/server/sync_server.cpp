#include "server/sync_server.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "storage/chunk_backend.hpp"
#include "storage/object_store.hpp"
#include "util/content_cache.hpp"
#include "util/sha256.hpp"

namespace cloudsync {

namespace {
using steady = std::chrono::steady_clock;

std::uint64_t ns_between(steady::time_point a, steady::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
}  // namespace

// One stripe of the server. The mutex covers everything below it except the
// atomics, which are written from outside the lock (lifecycle transitions,
// try_lock accounting). The dedup scopes of this shard's users live in the
// server-wide dedup_index; mutating them only under this mutex is what
// satisfies dedup_index's per-scope serialization contract.
struct sync_server::shard {
  explicit shard(const server_config& cfg) {
    if (cfg.use_chunk_store) {
      chunks = std::make_unique<chunk_backend>(store, cfg.chunk_store_chunk_size);
    }
  }

  mutable std::mutex mu;
  std::condition_variable cv;  ///< admission queue wakeups

  metadata_service meta;
  object_store store;
  std::unique_ptr<chunk_backend> chunks;  ///< non-null in chunk-store mode
  std::unordered_set<std::uint32_t> users;

  // Admission queue (under mu): FIFO tickets, bounded in-flight window.
  std::uint64_t next_ticket = 0;
  std::uint64_t next_admitted = 0;
  std::uint32_t in_flight = 0;

  // Counters mutated under mu.
  std::uint64_t sessions_admitted = 0;
  std::uint64_t admission_waits = 0;
  std::uint64_t admission_wait_ns = 0;
  std::uint32_t queue_depth_peak = 0;
  std::uint32_t in_flight_peak = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t diff_requests = 0;
  std::uint64_t dedup_probes = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t uploads = 0;
  std::uint64_t upload_bytes = 0;
  std::uint64_t verified_bytes = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t commit_batches = 0;
  std::uint64_t commits = 0;

  // Written outside the lock (mutable: counted from the const lock helper).
  mutable std::atomic<std::uint64_t> lock_acquisitions{0};
  mutable std::atomic<std::uint64_t> lock_contentions{0};
  std::array<std::atomic<std::uint64_t>, kSessionStateCount> state_entered{};
  std::array<std::atomic<std::int64_t>, kSessionStateCount> state_live{};

  /// try_lock-first acquisition so contention is a counter, not a mystery.
  std::unique_lock<std::mutex> lock() const {
    std::unique_lock<std::mutex> l(mu, std::try_to_lock);
    lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!l.owns_lock()) {
      lock_contentions.fetch_add(1, std::memory_order_relaxed);
      l.lock();
    }
    return l;
  }
};

sync_server::sync_server(server_config cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.admission_limit == 0) cfg_.admission_limit = 1;
  shards_.reserve(cfg_.shards);
  for (std::uint32_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<shard>(cfg_));
  }
}

sync_server::~sync_server() = default;

std::uint32_t sync_server::shard_count() const {
  return static_cast<std::uint32_t>(shards_.size());
}

std::uint32_t sync_server::shard_of(std::uint32_t user) const {
  // splitmix-style scramble: stride-sampled user ids must not all land on
  // one stripe.
  return static_cast<std::uint32_t>(mix64(user) % shards_.size());
}

sync_server::shard& sync_server::shard_for(std::uint32_t user) const {
  return *shards_[shard_of(user)];
}

sync_server::admission_ticket::admission_ticket(admission_ticket&& other) noexcept
    : srv_(other.srv_), shard_(other.shard_), wait_ns_(other.wait_ns_) {
  other.srv_ = nullptr;
}

sync_server::admission_ticket::~admission_ticket() {
  if (srv_ != nullptr) srv_->release(shard_);
}

sync_server::admission_ticket sync_server::admit(std::uint32_t user) {
  const std::uint32_t idx = shard_of(user);
  shard& s = *shards_[idx];
  const auto t0 = steady::now();
  auto l = s.lock();
  const std::uint64_t my = s.next_ticket++;
  const std::uint32_t depth =
      static_cast<std::uint32_t>(s.next_ticket - s.next_admitted);
  s.queue_depth_peak = std::max(s.queue_depth_peak, depth);
  bool waited = false;
  while (my != s.next_admitted || s.in_flight >= cfg_.admission_limit) {
    waited = true;
    s.cv.wait(l);
  }
  ++s.next_admitted;
  ++s.in_flight;
  s.in_flight_peak = std::max(s.in_flight_peak, s.in_flight);
  ++s.sessions_admitted;
  std::uint64_t wait_ns = 0;
  if (waited) {
    wait_ns = ns_between(t0, steady::now());
    ++s.admission_waits;
    s.admission_wait_ns += wait_ns;
  }
  // FIFO handoff: the next ticket may be admissible too (window > 1).
  s.cv.notify_all();
  return admission_ticket(this, idx, wait_ns);
}

void sync_server::release(std::uint32_t shard_index) {
  shard& s = *shards_[shard_index];
  {
    auto l = s.lock();
    --s.in_flight;
  }
  s.cv.notify_all();
}

device_id sync_server::attach_device(std::uint32_t user) {
  shard& s = shard_for(user);
  auto l = s.lock();
  const auto t0 = steady::now();
  s.users.insert(user);
  dedup_.create_scope(user, cfg_.dedup_scope_hint);
  const device_id dev = s.meta.register_device(user);
  s.busy_ns += ns_between(t0, steady::now());
  return dev;
}

diff_response sync_server::compute_diff(const diff_request& req) {
  shard& s = shard_for(req.user);
  auto l = s.lock();
  const auto t0 = steady::now();
  ++s.diff_requests;
  diff_response out;
  // Within-batch dedup: the second occurrence of a fingerprint in one
  // request is a duplicate even though the scope hasn't seen it yet.
  std::unordered_set<std::uint64_t> batch_seen;
  batch_seen.reserve(req.entries.size());
  for (std::size_t i = 0; i < req.entries.size(); ++i) {
    const fingerprint& fp = req.entries[i].fp;
    ++s.dedup_probes;
    const bool in_batch = !batch_seen.insert(fp.prefix64()).second;
    if (in_batch || dedup_.contains(req.user, fp)) {
      ++s.dedup_hits;
      out.duplicate.push_back(static_cast<std::uint32_t>(i));
    } else {
      out.upload.push_back(static_cast<std::uint32_t>(i));
    }
  }
  s.busy_ns += ns_between(t0, steady::now());
  return out;
}

void sync_server::upload_batch(std::uint32_t user,
                               const std::vector<upload_item>& items) {
  shard& s = shard_for(user);
  auto l = s.lock();
  const auto t0 = steady::now();
  for (const upload_item& item : items) {
    if (cfg_.verify_uploads) {
      // Verify-on-ingest: hash the payload under the stripe lock. This is
      // the serialized CPU work that a single shard bottlenecks on and N
      // shards spread — and it keeps fabricated fingerprints out of the
      // dedup index.
      sha256_hasher h;
      item.content.walk([&h](byte_view v) { h.update(v); });
      const fingerprint got = h.finish();
      if (got != item.fp) {
        ++s.verify_failures;
        s.busy_ns += ns_between(t0, steady::now());
        throw std::runtime_error("upload_batch: fingerprint mismatch for " +
                                 item.object_key);
      }
      s.verified_bytes += item.content.size();
    }
    if (s.chunks != nullptr) {
      // Content-addressed keys are PUT at most once per scope; guard anyway
      // so a re-upload after scope eviction can't leak extent refs.
      if (s.chunks->find(item.object_key) == nullptr) {
        s.chunks->put_full(item.object_key, item.content);
      }
    } else {
      s.store.put(item.object_key, item.content);
    }
    ++s.uploads;
    s.upload_bytes += item.content.size();
  }
  s.busy_ns += ns_between(t0, steady::now());
}

void sync_server::commit_batch(std::uint32_t user, device_id dev,
                               const std::vector<commit_entry>& entries) {
  shard& s = shard_for(user);
  auto l = s.lock();
  const auto t0 = steady::now();
  ++s.commit_batches;
  std::vector<manifest_commit> commits;
  commits.reserve(entries.size());
  for (const commit_entry& e : entries) {
    dedup_.add(user, e.fp);
    const file_manifest* prev = s.meta.lookup(user, e.path);
    file_manifest m;
    m.object_key = e.object_key;
    m.logical_size = e.logical_size;
    m.stored_size = e.stored_size;
    m.version = prev == nullptr ? 1 : prev->version + 1;
    commits.push_back({e.path, std::move(m)});
  }
  s.commits += entries.size();
  s.meta.commit_batch(user, dev, std::move(commits));
  s.busy_ns += ns_between(t0, steady::now());
}

bool sync_server::evict_user(std::uint32_t user) {
  shard& s = shard_for(user);
  auto l = s.lock();  // serialize with the scope's owner shard (= this one)
  s.users.erase(user);
  return dedup_.drop_scope(user);
}

void sync_server::note_transition(std::uint32_t user, session_state from,
                                  session_state to) {
  if (from == to) return;
  shard& s = shard_for(user);
  const auto live = [](session_state st) {
    return st == session_state::computing_diff ||
           st == session_state::transferring || st == session_state::applying;
  };
  s.state_entered[static_cast<std::size_t>(to)].fetch_add(
      1, std::memory_order_relaxed);
  if (live(from)) {
    s.state_live[static_cast<std::size_t>(from)].fetch_sub(
        1, std::memory_order_relaxed);
  }
  if (live(to)) {
    s.state_live[static_cast<std::size_t>(to)].fetch_add(
        1, std::memory_order_relaxed);
  }
}

server_stats sync_server::stats() const {
  server_stats out;
  out.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const shard& s = *sp;
    shard_stats st;
    auto l = s.lock();
    st.users = s.users.size();
    st.objects = s.store.key_count();
    st.manifests = s.chunks == nullptr ? 0 : s.chunks->manifest_count();
    st.live_bytes = s.store.stats().live_bytes;
    st.sessions_admitted = s.sessions_admitted;
    st.admission_waits = s.admission_waits;
    st.admission_wait_ns = s.admission_wait_ns;
    st.queue_depth_peak = s.queue_depth_peak;
    st.in_flight_peak = s.in_flight_peak;
    st.busy_ns = s.busy_ns;
    st.diff_requests = s.diff_requests;
    st.dedup_probes = s.dedup_probes;
    st.dedup_hits = s.dedup_hits;
    st.uploads = s.uploads;
    st.upload_bytes = s.upload_bytes;
    st.verified_bytes = s.verified_bytes;
    st.verify_failures = s.verify_failures;
    st.commit_batches = s.commit_batches;
    st.commits = s.commits;
    l.unlock();
    st.lock_acquisitions = s.lock_acquisitions.load(std::memory_order_relaxed);
    st.lock_contentions = s.lock_contentions.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kSessionStateCount; ++i) {
      st.state_entered[i] = s.state_entered[i].load(std::memory_order_relaxed);
      const std::int64_t live = s.state_live[i].load(std::memory_order_relaxed);
      st.state_live[i] = live < 0 ? 0 : static_cast<std::uint64_t>(live);
    }
    out.shards.push_back(st);
  }
  return out;
}

shard_stats server_stats::aggregate() const {
  shard_stats a;
  for (const shard_stats& s : shards) {
    a.users += s.users;
    a.objects += s.objects;
    a.manifests += s.manifests;
    a.live_bytes += s.live_bytes;
    a.sessions_admitted += s.sessions_admitted;
    a.admission_waits += s.admission_waits;
    a.admission_wait_ns += s.admission_wait_ns;
    a.queue_depth_peak = std::max(a.queue_depth_peak, s.queue_depth_peak);
    a.in_flight_peak = std::max(a.in_flight_peak, s.in_flight_peak);
    a.lock_acquisitions += s.lock_acquisitions;
    a.lock_contentions += s.lock_contentions;
    a.busy_ns += s.busy_ns;
    a.diff_requests += s.diff_requests;
    a.dedup_probes += s.dedup_probes;
    a.dedup_hits += s.dedup_hits;
    a.uploads += s.uploads;
    a.upload_bytes += s.upload_bytes;
    a.verified_bytes += s.verified_bytes;
    a.verify_failures += s.verify_failures;
    a.commit_batches += s.commit_batches;
    a.commits += s.commits;
    for (std::size_t i = 0; i < kSessionStateCount; ++i) {
      a.state_entered[i] += s.state_entered[i];
      a.state_live[i] += s.state_live[i];
    }
  }
  return a;
}

std::vector<std::string> sync_server::list_paths(std::uint32_t user) const {
  shard& s = shard_for(user);
  auto l = s.lock();
  return s.meta.list(user);
}

const file_manifest* sync_server::lookup_manifest(std::uint32_t user,
                                                  std::string_view path) const {
  shard& s = shard_for(user);
  auto l = s.lock();
  return s.meta.lookup(user, path);
}

}  // namespace cloudsync
