#include "net/sim_clock.hpp"

namespace cloudsync {

event_id sim_clock::schedule_at(sim_time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const event_id id = next_id_++;
  queue_.push({at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool sim_clock::cancel(event_id id) {
  // Lazy deletion: erase from the live set; the queue entry is skipped on pop.
  return live_.erase(id) > 0;
}

bool sim_clock::run_one() {
  while (!queue_.empty()) {
    entry e = std::move(const_cast<entry&>(queue_.top()));
    queue_.pop();
    if (live_.erase(e.id) == 0) continue;  // was cancelled
    now_ = e.at;
    e.fn();
    return true;
  }
  return false;
}

void sim_clock::run_until(sim_time t) {
  while (!queue_.empty()) {
    if (!live_.contains(queue_.top().id)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > t) break;
    entry e = std::move(const_cast<entry&>(queue_.top()));
    queue_.pop();
    live_.erase(e.id);
    now_ = e.at;
    e.fn();
  }
  if (now_ < t) now_ = t;
}

void sim_clock::run_all(std::size_t max_events) {
  while (max_events-- > 0 && run_one()) {
  }
}

void sim_clock::advance_to(sim_time t) {
  if (t > now_) now_ = t;
}

}  // namespace cloudsync
