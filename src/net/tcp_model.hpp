// Analytic TCP/TLS flow model.
//
// The simulation does not move packets; it computes, for each application
// exchange, (a) the wire bytes both ways — segmentation headers, ACK stream,
// handshakes — which the traffic meter records as `transport`, and (b) the
// completion time under slow start and the link's bandwidth/RTT. Completion
// times drive the §6.2 batching conditions, so latency/bandwidth shape TUE.
#pragma once

#include <cstdint>

#include "net/link.hpp"
#include "net/traffic_meter.hpp"
#include "util/sim_time.hpp"

namespace cloudsync {

class fault_injector;

struct tcp_config {
  std::size_t mss = 1460;            ///< TCP payload per segment
  std::size_t header_bytes = 40;     ///< IP + TCP header per segment
  std::size_t ack_every = 2;         ///< delayed-ACK: one ACK per 2 segments
  int initial_window = 10;           ///< IW10 (RFC 6928), segments
  std::size_t tls_client_bytes = 1800;   ///< ClientHello + key exchange
  std::size_t tls_server_bytes = 4200;   ///< ServerHello + certificate chain
  std::size_t tls_record_overhead = 29;  ///< per ~16 KB TLS record
  std::size_t tls_record_size = 16 * 1024;
  sim_time idle_timeout = sim_time::from_sec(30);  ///< keep-alive window
};

/// Wire accounting + timing for one one-way transfer of `app_bytes`.
struct transfer_cost {
  std::uint64_t fwd_wire = 0;  ///< bytes in the data direction
  std::uint64_t rev_wire = 0;  ///< ACK bytes in the reverse direction
  sim_time duration{};
};

/// Cost of moving `app_bytes` one way over `cfg`/`link` given slow start
/// starting from `cwnd_segments`. `loss_rate` is the per-segment drop
/// probability: lost segments are retransmitted (extra wire bytes) and the
/// flow pays recovery round trips. Pure function — no state.
transfer_cost one_way_cost(std::uint64_t app_bytes, double bytes_per_sec,
                           sim_time rtt, const tcp_config& cfg,
                           int cwnd_segments, double loss_rate = 0.0);

/// A persistent client↔cloud connection. Charges handshake costs only when
/// the connection is fresh or has idled out, mirroring real clients that
/// keep a notification/sync channel alive.
class tcp_connection {
 public:
  tcp_connection(link_config link, tcp_config cfg, traffic_meter& meter)
      : link_(link), cfg_(cfg), meter_(&meter) {}

  /// Perform a request/response exchange starting at `now`.
  /// `up_app` / `down_app` are application bytes (payload + app metadata —
  /// the caller records those itself); this method records only transport
  /// bytes. Returns the completion time.
  ///
  /// With a fault injector attached, may instead throw `transient_fault`
  /// (link outage, connection reset, mid-transfer abort). Wire bytes wasted
  /// by the failed attempt — SYN probes, handshakes torn down by a reset,
  /// the delivered fraction of an aborted transfer — are metered under
  /// `traffic_category::retry`; after a reset/abort the connection is cold
  /// and the next attempt pays a fresh handshake.
  sim_time exchange(sim_time now, std::uint64_t up_app, std::uint64_t down_app);

  /// Attach (or detach, with nullptr) the environment's fault injector.
  /// Non-owning. With no injector — or a disabled plan — exchange() behaves
  /// exactly as if this layer did not exist.
  void set_fault_injector(fault_injector* faults) { faults_ = faults; }

  /// Replace the link (packet-filter changes mid-experiment).
  void set_link(link_config link) { link_ = link; }
  const link_config& link() const { return link_; }
  const tcp_config& config() const { return cfg_; }

  /// Number of handshakes performed so far (observability for tests).
  std::uint64_t handshakes() const { return handshakes_; }

 private:
  bool needs_handshake(sim_time now) const;
  /// Perform the TCP+TLS handshake if the connection is cold/idle; returns
  /// the time data can start flowing.
  sim_time maybe_handshake(sim_time now);

  link_config link_;
  tcp_config cfg_;
  traffic_meter* meter_;
  fault_injector* faults_ = nullptr;
  bool ever_used_ = false;
  sim_time last_activity_{};
  std::uint64_t handshakes_ = 0;
  int cwnd_ = 0;  ///< current congestion window (segments), persists while warm
};

}  // namespace cloudsync
