// Discrete-event virtual clock.
//
// Single-threaded by design: experiments are deterministic replays, so the
// event loop is a plain priority queue with stable FIFO ordering for events
// scheduled at the same instant.
//
// Threading contract: one sim_clock — together with the cloud, filesystems,
// and clients attached to it — must only ever be driven from a single
// thread. Scale-out happens one level up: core/parallel_runner fans whole
// independent experiment environments (each owning its own clock) across
// worker threads. Parallelism is across experiments, never within one
// (see docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/sim_time.hpp"

namespace cloudsync {

using event_id = std::uint64_t;

class sim_clock {
 public:
  sim_time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  event_id schedule_at(sim_time at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  event_id schedule_after(sim_time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op; returns whether something was cancelled.
  bool cancel(event_id id);

  /// Run the next pending event, advancing the clock. False when idle.
  bool run_one();

  /// Run events until the queue is empty or the next event is after `t`;
  /// the clock ends at exactly `t` if it was reached.
  void run_until(sim_time t);

  /// Drain every pending event (bounded by `max_events` as a runaway guard).
  void run_all(std::size_t max_events = 10'000'000);

  /// Move the clock forward with no events in between (idle time).
  void advance_to(sim_time t);

  std::size_t pending() const { return live_.size(); }

 private:
  struct entry {
    sim_time at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    event_id id;
    std::function<void()> fn;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  sim_time now_{};
  std::uint64_t next_seq_ = 0;
  event_id next_id_ = 1;
  std::priority_queue<entry, std::vector<entry>, later> queue_;
  std::unordered_set<event_id> live_;  ///< scheduled and not yet fired/cancelled
};

}  // namespace cloudsync
