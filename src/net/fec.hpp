// Systematic erasure coding for the parallel transfer scheduler.
//
// A stripe of K equal-length data shards is extended with R parity shards so
// that ANY K of the K+R shards reconstruct the original data bit-identically
// (maximum-distance-separable). R = 1 is plain XOR parity; R >= 2 uses a
// GF(256) Cauchy-matrix Reed–Solomon code (every square submatrix of a
// Cauchy matrix is invertible, which is exactly the any-K-of-N property).
//
// The transfer scheduler itself moves byte *counts*, not payload bytes (the
// simulation's exchanges are analytic); it uses this codec for parity shard
// sizing and for the reconstruction bookkeeping, while the codec's
// bit-correctness — including under the hole patterns a mid-stripe crash
// leaves in the sync journal — is proven by tests/test_fec.cpp over every
// K-of-(K+R) subset.
#pragma once

#include <cstdint>
#include <vector>

namespace cloudsync {

/// GF(2^8) with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
/// (0x11d), the conventional choice for storage Reed–Solomon codes.
namespace gf256 {
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);  ///< multiplicative inverse; inv(0) = 0
}  // namespace gf256

struct fec_params {
  int data_shards = 1;    ///< K >= 1
  int parity_shards = 0;  ///< R >= 0; K + R <= 255 (GF(256) Cauchy bound)
};

/// Encode: given K equal-length data shards, return the R parity shards.
/// Throws std::invalid_argument on K < 1, R < 0, K + R > 255, or ragged
/// shard lengths (callers pad short tails with zeros before encoding).
std::vector<std::vector<std::uint8_t>> fec_encode(
    const fec_params& p, const std::vector<std::vector<std::uint8_t>>& data);

/// Decode: reconstruct all K data shards from any >= K survivors.
/// `present[i]` holds shard i (data shards are ids 0..K-1, parity shards
/// K..K+R-1) or is empty when shard i was lost. Returns the K data shards,
/// bit-identical to the encoder's input. Throws std::invalid_argument when
/// fewer than K shards are present or shard lengths disagree.
std::vector<std::vector<std::uint8_t>> fec_decode(
    const fec_params& p, const std::vector<std::vector<std::uint8_t>>& present);

}  // namespace cloudsync
