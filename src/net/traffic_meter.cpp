#include "net/traffic_meter.hpp"

#include "util/text_table.hpp"
#include "util/units.hpp"

namespace cloudsync {

const char* to_string(traffic_category c) {
  switch (c) {
    case traffic_category::payload: return "payload";
    case traffic_category::metadata: return "metadata";
    case traffic_category::transport: return "transport";
    case traffic_category::notification: return "notification";
    case traffic_category::retry: return "retry";
    case traffic_category::resume: return "resume";
    case traffic_category::redundancy: return "redundancy";
    case traffic_category::rehydrate: return "rehydrate";
    case traffic_category::kCount: break;
  }
  return "?";
}

void traffic_meter::record(direction dir, traffic_category cat,
                           std::uint64_t bytes) {
  counters_[idx(dir, cat)] += bytes;
}

std::uint64_t traffic_meter::total() const {
  std::uint64_t t = 0;
  for (const auto c : counters_) t += c;
  return t;
}

std::uint64_t traffic_meter::total(direction dir) const {
  std::uint64_t t = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(traffic_category::kCount);
       ++c) {
    t += counters_[idx(dir, static_cast<traffic_category>(c))];
  }
  return t;
}

std::uint64_t traffic_meter::by_category(traffic_category cat) const {
  return counters_[idx(direction::up, cat)] +
         counters_[idx(direction::down, cat)];
}

std::uint64_t traffic_meter::get(direction dir, traffic_category cat) const {
  return counters_[idx(dir, cat)];
}

std::uint64_t traffic_meter::overhead() const {
  return total() - by_category(traffic_category::payload);
}

void traffic_meter::reset() { counters_.fill(0); }

void traffic_meter::add(const traffic_meter& other) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

traffic_meter::snapshot traffic_meter::snap() const { return {counters_}; }

std::uint64_t traffic_meter::total_since(const snapshot& since) const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    // A reset() after the snapshot leaves counters below their snapshot
    // values; clamp instead of letting the unsigned subtraction wrap.
    if (counters_[i] > since.counters[i]) t += counters_[i] - since.counters[i];
  }
  return t;
}

std::string traffic_meter::summary() const {
  text_table table;
  table.header({"category", "up", "down", "total"});
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(traffic_category::kCount); ++c) {
    const auto cat = static_cast<traffic_category>(c);
    table.row({to_string(cat),
               format_bytes(static_cast<double>(get(direction::up, cat))),
               format_bytes(static_cast<double>(get(direction::down, cat))),
               format_bytes(static_cast<double>(by_category(cat)))});
  }
  table.row({"TOTAL", format_bytes(static_cast<double>(total(direction::up))),
             format_bytes(static_cast<double>(total(direction::down))),
             format_bytes(static_cast<double>(total()))});
  return table.str();
}

}  // namespace cloudsync
