#include "net/fault_injector.hpp"

#include <algorithm>

namespace cloudsync {

const char* to_string(fault_kind k) {
  switch (k) {
    case fault_kind::link_outage: return "link outage";
    case fault_kind::connection_reset: return "connection reset";
    case fault_kind::transfer_abort: return "transfer abort";
    case fault_kind::server_error: return "server error";
    case fault_kind::server_throttle: return "server throttle";
    case fault_kind::client_crash: return "client crash";
    case fault_kind::kCount: break;
  }
  return "?";
}

const char* to_string(crash_site s) {
  switch (s) {
    case crash_site::after_plan: return "after plan";
    case crash_site::mid_chunk: return "mid chunk";
    case crash_site::before_commit: return "before commit";
    case crash_site::kCount: break;
  }
  return "?";
}

fault_plan fault_plan::degraded(double intensity, std::uint64_t seed) {
  fault_plan p;
  p.seed = seed;
  if (intensity <= 0.0) return p;  // strictly fault_plan::none()
  p.outages_per_hour = 12.0 * intensity;
  p.outage_mean_duration = sim_time::from_sec(6);
  p.reset_prob = 0.06 * intensity;
  p.abort_prob = 0.08 * intensity;
  p.server_error_prob = 0.05 * intensity;
  p.throttle_prob = 0.03 * intensity;
  return p;
}

fault_plan fault_plan::crashes(double prob, std::uint64_t seed) {
  fault_plan p;
  p.seed = seed;
  p.crash_prob = prob;
  return p;
}

namespace {
/// Independent-event composition: the merged probability that at least one
/// of the two plans fires.
// Independent-events union, short-circuited so merging with a zero
// probability returns the other side bit-exactly (1−(1−a)(1−0) re-rounds a,
// which would break the merged(a, none()) == a identity).
double combine_prob(double a, double b) {
  if (a <= 0) return b;
  if (b <= 0) return a;
  return 1.0 - (1.0 - a) * (1.0 - b);
}
}  // namespace

fault_plan fault_plan::merged(const fault_plan& a, const fault_plan& b) {
  fault_plan m = a;
  // Seed combine: merging with a zero-seed plan preserves the other seed, so
  // merged(a, none()) replays a's exact schedule.
  m.seed = a.seed ^ (b.seed * 0x9e3779b97f4a7c15ULL);
  m.outages_per_hour = a.outages_per_hour + b.outages_per_hour;
  // Duration/hint fields belong to whichever side uses the matching rate;
  // with both active, take the harsher value (defaults must not leak in from
  // an inactive side, or merging with none() would change the schedule).
  if (a.outages_per_hour <= 0) {
    m.outage_mean_duration = b.outage_mean_duration;
    m.outage_horizon = b.outage_horizon;
  } else if (b.outages_per_hour > 0) {
    m.outage_mean_duration =
        std::max(a.outage_mean_duration, b.outage_mean_duration);
    m.outage_horizon = std::max(a.outage_horizon, b.outage_horizon);
  }
  m.reset_prob = combine_prob(a.reset_prob, b.reset_prob);
  m.abort_prob = combine_prob(a.abort_prob, b.abort_prob);
  m.server_error_prob = combine_prob(a.server_error_prob, b.server_error_prob);
  m.throttle_prob = combine_prob(a.throttle_prob, b.throttle_prob);
  if (a.throttle_prob <= 0) {
    m.throttle_retry_after = b.throttle_retry_after;
  } else if (b.throttle_prob > 0) {
    m.throttle_retry_after =
        std::max(a.throttle_retry_after, b.throttle_retry_after);
  }
  m.crash_prob = combine_prob(a.crash_prob, b.crash_prob);
  if (a.crash_prob <= 0) {
    m.max_crashes = b.max_crashes;
  } else if (b.crash_prob > 0) {
    m.max_crashes = std::max(a.max_crashes, b.max_crashes);
  }
  m.fail_first_server_ops = a.fail_first_server_ops + b.fail_first_server_ops;
  m.fail_first_exchanges = a.fail_first_exchanges + b.fail_first_exchanges;
  return m;
}

fault_injector::fault_injector(fault_plan plan, std::uint64_t env_seed)
    : plan_(plan),
      env_seed_(env_seed),
      // splitmix-style mix so plan.seed == env_seed still decorrelates the
      // fault stream from the workload stream.
      rng_(plan.seed ^ (env_seed * 0x9e3779b97f4a7c15ULL) ^
           0xfa017ab1e5eed000ULL),
      remaining_forced_server_(plan.fail_first_server_ops),
      remaining_forced_exchange_(plan.fail_first_exchanges) {
  if (plan_.outages_per_hour > 0.0) {
    // Poisson arrivals with exponential durations, fixed at construction so
    // outage windows do not depend on how often (or in what order) callers
    // query them.
    const double rate_per_sec = plan_.outages_per_hour / 3600.0;
    double t = 0.0;
    const double horizon = plan_.outage_horizon.sec();
    while (t < horizon) {
      t += rng_.exponential(rate_per_sec);
      if (t >= horizon) break;
      const double dur =
          rng_.exponential(1.0 / std::max(1e-9, plan_.outage_mean_duration.sec()));
      outages_.emplace_back(sim_time::from_sec(t),
                            sim_time::from_sec(t + dur));
      t += dur;
    }
  }
}

std::optional<sim_time> fault_injector::outage_end(sim_time now) const {
  // Windows are sorted and disjoint: find the first ending after `now`.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), now,
      [](sim_time t, const std::pair<sim_time, sim_time>& w) {
        return t < w.second;
      });
  if (it == outages_.end() || now < it->first) return std::nullopt;
  return it->second;
}

std::optional<fault_kind> fault_injector::sample_exchange_fault() {
  if (remaining_forced_exchange_ > 0) {
    --remaining_forced_exchange_;
    count(fault_kind::connection_reset);
    return fault_kind::connection_reset;
  }
  if (plan_.reset_prob > 0.0 && rng_.chance(plan_.reset_prob)) {
    count(fault_kind::connection_reset);
    return fault_kind::connection_reset;
  }
  if (plan_.abort_prob > 0.0 && rng_.chance(plan_.abort_prob)) {
    count(fault_kind::transfer_abort);
    return fault_kind::transfer_abort;
  }
  return std::nullopt;
}

double fault_injector::sample_abort_fraction() {
  return 0.05 + 0.9 * rng_.uniform_real();
}

std::optional<fault_kind> fault_injector::sample_server_fault() {
  if (remaining_forced_server_ > 0) {
    --remaining_forced_server_;
    count(fault_kind::server_error);
    return fault_kind::server_error;
  }
  if (plan_.server_error_prob > 0.0 && rng_.chance(plan_.server_error_prob)) {
    count(fault_kind::server_error);
    return fault_kind::server_error;
  }
  if (plan_.throttle_prob > 0.0 && rng_.chance(plan_.throttle_prob)) {
    count(fault_kind::server_throttle);
    return fault_kind::server_throttle;
  }
  return std::nullopt;
}

bool fault_injector::should_crash(crash_site site) {
  if (forced_crash_armed_ && site == forced_crash_site_) {
    if (forced_crash_skip_ > 0) {
      --forced_crash_skip_;
    } else {
      forced_crash_armed_ = false;
      count(fault_kind::client_crash);
      ++crashes_injected_;
      return true;
    }
  }
  if (plan_.crash_prob > 0.0 && crashes_injected_ < plan_.max_crashes &&
      rng_.chance(plan_.crash_prob)) {
    count(fault_kind::client_crash);
    ++crashes_injected_;
    return true;
  }
  return false;
}

std::uint64_t fault_injector::injected_total() const {
  std::uint64_t t = 0;
  for (const auto c : injected_) t += c;
  return t;
}

fault_injector& fault_injector::domain(std::uint32_t conn_id) {
  if (conn_id == 0) return *this;
  while (domains_.size() < conn_id) {
    const std::uint64_t id = domains_.size() + 1;
    fault_plan child = plan_;
    // Mix the connection id into the plan seed (splitmix-style constant) so
    // each domain precomputes an independent outage schedule and draws an
    // independent fault stream, while two injectors built from the same
    // (plan, env_seed) still agree domain-by-domain.
    child.seed = plan_.seed ^ ((id + 0x2545f4914f6cdd1dULL) *
                              0x9e3779b97f4a7c15ULL);
    // Forced count-based faults and crash plans target the main flow; child
    // domains only model independent link/server behavior.
    child.fail_first_server_ops = 0;
    child.fail_first_exchanges = 0;
    child.crash_prob = 0.0;
    domains_.push_back(std::make_unique<fault_injector>(child, env_seed_));
  }
  return *domains_[conn_id - 1];
}

std::uint64_t fault_injector::injected_total_all_domains() const {
  std::uint64_t t = injected_total();
  for (const auto& d : domains_) t += d->injected_total_all_domains();
  return t;
}

}  // namespace cloudsync
