#include "net/fec.hpp"

#include <cstddef>
#include <stdexcept>

namespace cloudsync {

namespace gf256 {
namespace {

// log/exp tables over the generator 2 of GF(256) mod 0x11d, built once.
struct tables {
  std::uint8_t exp[512];  // doubled so mul can skip the mod-255 reduction
  std::uint8_t log[256];
  tables() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // never consulted: mul/inv guard the zero operand
  }
};

const tables& t() {
  static const tables tab;
  return tab;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return t().exp[t().log[a] + t().log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) return 0;
  return t().exp[255 - t().log[a]];
}

}  // namespace gf256

namespace {

void check_params(const fec_params& p) {
  if (p.data_shards < 1 || p.parity_shards < 0 ||
      p.data_shards + p.parity_shards > 255) {
    throw std::invalid_argument("fec: need 1 <= K and K + R <= 255");
  }
}

/// Row `row` of the (K+R) x K generator matrix [I; C]. The identity block
/// makes the code systematic; the redundancy block is XOR (all ones) for
/// R = 1 and a Cauchy matrix C[p][d] = 1 / (x_p ^ y_d) with x_p = K + p,
/// y_d = d for R >= 2 — x's and y's are distinct elements of GF(256), so
/// every square submatrix of C is nonsingular and any K rows of [I; C]
/// are invertible (the any-K-of-(K+R) property).
std::vector<std::uint8_t> generator_row(const fec_params& p, int row) {
  const int k = p.data_shards;
  std::vector<std::uint8_t> r(static_cast<std::size_t>(k), 0);
  if (row < k) {
    r[static_cast<std::size_t>(row)] = 1;
  } else if (p.parity_shards == 1) {
    for (auto& c : r) c = 1;
  } else {
    for (int d = 0; d < k; ++d) {
      r[static_cast<std::size_t>(d)] =
          gf256::inv(static_cast<std::uint8_t>(row ^ d));
    }
  }
  return r;
}

/// Invert a K x K GF(256) matrix in place via Gauss-Jordan; `m` is row-major.
std::vector<std::uint8_t> invert(std::vector<std::uint8_t> m, int k) {
  std::vector<std::uint8_t> id(static_cast<std::size_t>(k) * k, 0);
  for (int i = 0; i < k; ++i) id[static_cast<std::size_t>(i) * k + i] = 1;
  auto at = [k](std::vector<std::uint8_t>& v, int r, int c) -> std::uint8_t& {
    return v[static_cast<std::size_t>(r) * k + c];
  };
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (at(m, r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) throw std::invalid_argument("fec: singular decode matrix");
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(at(m, pivot, c), at(m, col, c));
        std::swap(at(id, pivot, c), at(id, col, c));
      }
    }
    const std::uint8_t scale = gf256::inv(at(m, col, col));
    for (int c = 0; c < k; ++c) {
      at(m, col, c) = gf256::mul(at(m, col, c), scale);
      at(id, col, c) = gf256::mul(at(id, col, c), scale);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = at(m, r, col);
      if (f == 0) continue;
      for (int c = 0; c < k; ++c) {
        at(m, r, c) = static_cast<std::uint8_t>(
            at(m, r, c) ^ gf256::mul(f, at(m, col, c)));
        at(id, r, c) = static_cast<std::uint8_t>(
            at(id, r, c) ^ gf256::mul(f, at(id, col, c)));
      }
    }
  }
  return id;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> fec_encode(
    const fec_params& p, const std::vector<std::vector<std::uint8_t>>& data) {
  check_params(p);
  if (data.size() != static_cast<std::size_t>(p.data_shards)) {
    throw std::invalid_argument("fec: encode expects exactly K data shards");
  }
  const std::size_t len = data.empty() ? 0 : data.front().size();
  for (const auto& d : data) {
    if (d.size() != len) throw std::invalid_argument("fec: ragged shards");
  }
  std::vector<std::vector<std::uint8_t>> parity;
  parity.reserve(static_cast<std::size_t>(p.parity_shards));
  for (int pr = 0; pr < p.parity_shards; ++pr) {
    const auto row = generator_row(p, p.data_shards + pr);
    std::vector<std::uint8_t> out(len, 0);
    for (int d = 0; d < p.data_shards; ++d) {
      const std::uint8_t coeff = row[static_cast<std::size_t>(d)];
      if (coeff == 0) continue;
      const auto& src = data[static_cast<std::size_t>(d)];
      if (coeff == 1) {
        for (std::size_t i = 0; i < len; ++i) out[i] ^= src[i];
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          out[i] ^= gf256::mul(coeff, src[i]);
        }
      }
    }
    parity.push_back(std::move(out));
  }
  return parity;
}

std::vector<std::vector<std::uint8_t>> fec_decode(
    const fec_params& p, const std::vector<std::vector<std::uint8_t>>& present) {
  check_params(p);
  const int k = p.data_shards;
  const int n = k + p.parity_shards;
  if (present.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("fec: decode expects K + R slots");
  }
  // Pick the first K present shards (data shards first by construction of the
  // slot order) and note which data shards are already there verbatim.
  std::vector<int> rows;
  std::size_t len = 0;
  bool len_set = false;
  for (int i = 0; i < n && static_cast<int>(rows.size()) < k; ++i) {
    const auto& s = present[static_cast<std::size_t>(i)];
    if (s.empty()) continue;
    if (!len_set) {
      len = s.size();
      len_set = true;
    } else if (s.size() != len) {
      throw std::invalid_argument("fec: ragged shards");
    }
    rows.push_back(i);
  }
  if (static_cast<int>(rows.size()) < k) {
    throw std::invalid_argument("fec: fewer than K shards present");
  }

  std::vector<std::vector<std::uint8_t>> out(
      static_cast<std::size_t>(k), std::vector<std::uint8_t>(len, 0));
  bool all_data = true;
  for (int i = 0; i < k; ++i) all_data = all_data && rows[static_cast<std::size_t>(i)] == i;
  if (all_data) {  // nothing lost: systematic fast path
    for (int i = 0; i < k; ++i) out[static_cast<std::size_t>(i)] = present[static_cast<std::size_t>(i)];
    return out;
  }

  // Decode matrix: the chosen K rows of [I; C], inverted.
  std::vector<std::uint8_t> m(static_cast<std::size_t>(k) * k, 0);
  for (int r = 0; r < k; ++r) {
    const auto row = generator_row(p, rows[static_cast<std::size_t>(r)]);
    for (int c = 0; c < k; ++c) {
      m[static_cast<std::size_t>(r) * k + c] = row[static_cast<std::size_t>(c)];
    }
  }
  const auto inv = invert(std::move(m), k);
  for (int d = 0; d < k; ++d) {
    auto& dst = out[static_cast<std::size_t>(d)];
    for (int r = 0; r < k; ++r) {
      const std::uint8_t coeff = inv[static_cast<std::size_t>(d) * k + r];
      if (coeff == 0) continue;
      const auto& src = present[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
      if (coeff == 1) {
        for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          dst[i] ^= gf256::mul(coeff, src[i]);
        }
      }
    }
  }
  return out;
}

}  // namespace cloudsync
