#include "net/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "net/fault_injector.hpp"

namespace cloudsync {

transfer_cost one_way_cost(std::uint64_t app_bytes, double bytes_per_sec,
                           sim_time rtt, const tcp_config& cfg,
                           int cwnd_segments, double loss_rate) {
  transfer_cost cost;
  if (app_bytes == 0) return cost;
  loss_rate = std::clamp(loss_rate, 0.0, 0.5);

  // TLS record framing inflates the application stream first.
  const std::uint64_t records =
      (app_bytes + cfg.tls_record_size - 1) / cfg.tls_record_size;
  const std::uint64_t stream_bytes =
      app_bytes + records * cfg.tls_record_overhead;

  const std::uint64_t segments = (stream_bytes + cfg.mss - 1) / cfg.mss;
  cost.fwd_wire = stream_bytes + segments * cfg.header_bytes;
  cost.rev_wire = ((segments + cfg.ack_every - 1) / cfg.ack_every) *
                  cfg.header_bytes;

  // Slow start: each round sends cwnd segments and takes
  // max(RTT, serialisation time of the round); cwnd doubles up to the
  // bandwidth-delay product.
  const double bdp_segments =
      std::max(1.0, bytes_per_sec * rtt.sec() /
                        static_cast<double>(cfg.mss + cfg.header_bytes));
  const auto max_cwnd =
      static_cast<std::uint64_t>(std::ceil(bdp_segments));
  std::uint64_t cwnd = std::max(1, cwnd_segments);
  std::uint64_t sent = 0;
  double seconds = 0.0;
  const double seg_wire = static_cast<double>(cfg.mss + cfg.header_bytes);
  while (sent < segments) {
    const std::uint64_t burst = std::min(cwnd, segments - sent);
    const double tx = static_cast<double>(burst) * seg_wire / bytes_per_sec;
    if (cwnd >= max_cwnd) {
      // Pipe is full: remaining bytes flow at line rate.
      const std::uint64_t rest = segments - sent;
      seconds += static_cast<double>(rest) * seg_wire / bytes_per_sec;
      sent = segments;
      break;
    }
    if (sent + burst >= segments) {
      // Final round: nothing waits for these ACKs, so the transfer only pays
      // the serialisation time (the tail half-RTT below covers propagation).
      // Charging max(RTT, tx) here made a 1-segment flow cost ~1.5 RTT.
      seconds += tx;
      sent = segments;
      break;
    }
    seconds += std::max(rtt.sec(), tx);
    sent += burst;
    cwnd = std::min<std::uint64_t>(cwnd * 2, max_cwnd);
  }
  if (loss_rate > 0.0) {
    // Expected retransmissions: each lost segment is sent again (and may be
    // lost again) — a factor of p/(1-p) extra segments on the wire, plus
    // dup-ACKs. Duration grows by the serialisation time of those extra
    // segments plus roughly one recovery round trip per (re)transmission
    // loss. The former seconds /= (1 - loss_rate) on top of the recovery
    // RTTs charged the throughput reduction twice.
    const double retx =
        static_cast<double>(segments) * loss_rate / (1.0 - loss_rate);
    cost.fwd_wire += static_cast<std::uint64_t>(retx * seg_wire);
    cost.rev_wire += static_cast<std::uint64_t>(
        retx * 3.0 * static_cast<double>(cfg.header_bytes));  // dup-ACKs
    seconds += retx * seg_wire / bytes_per_sec;  // extra bytes on the wire
    seconds += retx * rtt.sec();                 // recovery round trips
  }

  // One propagation leg for the tail to arrive.
  cost.duration = sim_time::from_sec(seconds) + rtt * 0.5;
  return cost;
}

bool tcp_connection::needs_handshake(sim_time now) const {
  return !ever_used_ || now - last_activity_ > cfg_.idle_timeout;
}

sim_time tcp_connection::maybe_handshake(sim_time now) {
  if (!needs_handshake(now)) return now;
  ++handshakes_;
  // TCP three-way handshake: 1 RTT before data can flow; SYN/SYN-ACK/ACK.
  meter_->record(direction::up, traffic_category::transport,
                 2 * cfg_.header_bytes);
  meter_->record(direction::down, traffic_category::transport,
                 cfg_.header_bytes);
  // TLS 1.2-style handshake: ~2 RTT, hello + certificate exchange.
  meter_->record(direction::up, traffic_category::transport,
                 cfg_.tls_client_bytes);
  meter_->record(direction::down, traffic_category::transport,
                 cfg_.tls_server_bytes);
  cwnd_ = cfg_.initial_window;
  return now + link_.rtt * 3.0;
}

sim_time tcp_connection::exchange(sim_time now, std::uint64_t up_app,
                                  std::uint64_t down_app) {
  if (faults_ != nullptr && faults_->enabled()) {
    if (const auto up_again = faults_->outage_end(now)) {
      // Link is down: the connection attempt times out after a round trip of
      // unanswered SYN probes.
      faults_->count(fault_kind::link_outage);
      meter_->record(direction::up, traffic_category::retry,
                     2 * cfg_.header_bytes);
      throw transient_fault(fault_kind::link_outage, now + link_.rtt,
                            *up_again);
    }
    if (const auto kind = faults_->sample_exchange_fault()) {
      if (*kind == fault_kind::connection_reset) {
        // RST at request start: a round trip and a few control segments are
        // wasted, and the connection must be re-established.
        meter_->record(direction::up, traffic_category::retry,
                       2 * cfg_.header_bytes);
        meter_->record(direction::down, traffic_category::retry,
                       cfg_.header_bytes);
        ever_used_ = false;
        throw transient_fault(fault_kind::connection_reset, now + link_.rtt);
      }
      // Mid-transfer abort: the (possibly fresh) handshake completes, then
      // the connection dies partway through the forward leg. Everything that
      // was on the wire is wasted and will be re-sent.
      const sim_time start = maybe_handshake(now);
      const transfer_cost up_cost =
          one_way_cost(up_app, link_.up_bytes_per_sec, link_.rtt, cfg_, cwnd_,
                       link_.loss_rate);
      const double frac = faults_->sample_abort_fraction();
      meter_->record(direction::up, traffic_category::retry,
                     static_cast<std::uint64_t>(
                         frac * static_cast<double>(up_cost.fwd_wire)));
      meter_->record(direction::down, traffic_category::retry,
                     static_cast<std::uint64_t>(
                         frac * static_cast<double>(up_cost.rev_wire)));
      ever_used_ = false;
      throw transient_fault(fault_kind::transfer_abort,
                            start + up_cost.duration * frac + link_.rtt);
    }
  }

  sim_time t = maybe_handshake(now);

  const transfer_cost up = one_way_cost(up_app, link_.up_bytes_per_sec,
                                        link_.rtt, cfg_, cwnd_,
                                        link_.loss_rate);
  const transfer_cost down = one_way_cost(down_app, link_.down_bytes_per_sec,
                                          link_.rtt, cfg_, cwnd_,
                                          link_.loss_rate);

  meter_->record(direction::up, traffic_category::transport,
                 up.fwd_wire - up_app);
  meter_->record(direction::down, traffic_category::transport, up.rev_wire);
  meter_->record(direction::down, traffic_category::transport,
                 down.fwd_wire - down_app);
  meter_->record(direction::up, traffic_category::transport, down.rev_wire);

  t += up.duration + down.duration;
  // Request/response turnaround: the response cannot start before the
  // request arrives; one extra half-RTT covers the server turnaround.
  if (up_app > 0 && down_app > 0) t += link_.rtt * 0.5;

  // A warm connection keeps a grown window (bounded by the BDP inside
  // one_way_cost on the next call).
  cwnd_ = std::max(cwnd_, cfg_.initial_window * 4);

  ever_used_ = true;
  last_activity_ = t;
  return t;
}

}  // namespace cloudsync
