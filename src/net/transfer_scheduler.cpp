#include "net/transfer_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "net/fault_injector.hpp"
#include "util/stats.hpp"
#include "util/text_table.hpp"

namespace cloudsync {

/// Book-keeping for one dispatched shard of a stripe.
struct transfer_scheduler::shard {
  std::uint32_t chunk = 0;  ///< data chunk index (unused for parity)
  std::uint64_t bytes = 0;
  bool parity = false;
  int conn = 0;
  sim_time dispatched{};
  bool landed = false;
  sim_time landed_at{};
  sim_time fault_at{};  ///< detection time when the primary dispatch failed
  bool hedge_landed = false;
  sim_time hedge_landed_at{};
};

transfer_scheduler::transfer_scheduler(link_config link, tcp_config tcp,
                                       traffic_meter& meter,
                                       transfer_policy policy,
                                       shard_retry_policy retry,
                                       shard_wire_costs costs,
                                       fault_injector* faults)
    : link_(link),
      tcp_(tcp),
      meter_(&meter),
      policy_(policy),
      retry_(retry),
      costs_(costs),
      faults_(faults) {}

transfer_scheduler::~transfer_scheduler() = default;

void transfer_scheduler::record_outcome(bool fault, sim_time duration) {
  if (policy_.observe_window == 0) return;
  if (outcomes_.size() < policy_.observe_window) {
    outcomes_.push_back(fault);
  } else {
    outcomes_[outcome_next_ % policy_.observe_window] = fault;
  }
  ++outcome_next_;
  if (!fault) {
    if (durations_.size() < policy_.observe_window) {
      durations_.push_back(duration);
    } else {
      durations_[duration_next_ % policy_.observe_window] = duration;
    }
    ++duration_next_;
  }
}

void transfer_scheduler::observe_success(sim_time duration) {
  ++stats_.observed_success;
  record_outcome(false, duration);
}

void transfer_scheduler::observe_fault() {
  ++stats_.observed_faults;
  record_outcome(true, sim_time{});
}

transfer_decision transfer_scheduler::decide() {
  ++stats_.decisions;
  transfer_decision d;
  if (policy_.pinned) {
    d = policy_.pin;
  } else if (outcomes_.size() >= policy_.min_samples) {
    std::size_t faulted = 0;
    for (const bool f : outcomes_) faulted += f ? 1 : 0;
    const double rate =
        static_cast<double>(faulted) / static_cast<double>(outcomes_.size());
    if (rate >= policy_.escalate4) {
      d = {4, 2, {}};
    } else if (rate >= policy_.escalate3) {
      d = {3, 1, {}};
    } else if (rate >= policy_.escalate2) {
      d = {2, 1, {}};
    }
    // Hedge timeout: a high quantile of recent successful exchange durations,
    // scaled — fire the duplicate only for genuine stragglers.
    if (d.striped() && durations_.size() >= policy_.min_samples) {
      std::vector<double> secs;
      secs.reserve(durations_.size());
      for (const auto t : durations_) secs.push_back(t.sec());
      const empirical_cdf cdf(std::move(secs));
      d.hedge_timeout =
          std::max(policy_.hedge_floor,
                   sim_time::from_sec(cdf.quantile(policy_.hedge_quantile) *
                                      policy_.hedge_multiplier));
    }
  }
  d.connections = std::clamp(d.connections, 1, policy_.max_connections);
  d.parity = std::clamp(d.parity, 0, policy_.max_parity);
  if (!d.striped()) {
    d.parity = 0;
    d.hedge_timeout = {};
  } else {
    ++stats_.escalations;
  }
  stats_.last_connections = d.connections;
  stats_.last_parity = d.parity;
  stats_.last_hedge_timeout = d.hedge_timeout;
  return d;
}

void transfer_scheduler::ensure_connections(int k) {
  while (static_cast<int>(conns_.size()) < k) {
    auto conn = std::make_unique<tcp_connection>(link_, tcp_, *meter_);
    if (faults_ != nullptr) {
      // Flow i rides fault domain i+1: an independent schedule per
      // connection, and no draws from the environment's main stream.
      conn->set_fault_injector(
          &faults_->domain(static_cast<std::uint32_t>(conns_.size()) + 1));
    }
    conns_.push_back(std::move(conn));
    conn_stats_.emplace_back();
  }
}

void transfer_scheduler::set_link(link_config link) {
  link_ = link;
  for (auto& c : conns_) c->set_link(link);
}

sim_time transfer_scheduler::backoff_delay(int attempt,
                                           fault_injector& domain) const {
  // Same shape as sync_client::backoff_delay, with jitter drawn from the
  // shard's own fault domain.
  double d = retry_.base_backoff.sec() *
             std::pow(retry_.backoff_multiplier, attempt - 1);
  d = std::min(d, retry_.max_backoff.sec());
  if (retry_.jitter > 0) {
    d *= 1.0 + retry_.jitter * (2.0 * domain.jitter01() - 1.0);
  }
  return sim_time::from_sec(d);
}

striped_outcome transfer_scheduler::send_striped(
    sim_time start, const std::vector<chunk_range>& chunks,
    const transfer_decision& d, const deliver_fn& deliver,
    const crash_fn& crash_check) {
  const int k = d.connections;
  ensure_connections(k);
  std::vector<sim_time> free(static_cast<std::size_t>(k), start);

  striped_outcome out;
  out.done = start;
  std::vector<chunk_range> missing;  // survives parity + hedging undelivered

  const auto meter_framing = [this] {
    meter_->record(direction::up, traffic_category::resume, costs_.control_up);
    meter_->record(direction::down, traffic_category::resume, costs_.ack_down);
    meter_->record(direction::up, traffic_category::notification,
                   costs_.http_request_up);
    meter_->record(direction::down, traffic_category::notification,
                   costs_.http_response_down);
  };
  // One shard exchange on connection `c` starting no earlier than `at`.
  // Returns true on success (completion in *done, framing metered; the
  // payload-vs-redundancy call is the caller's). On a fault, advances the
  // connection cursor past the detection time and records *fault_at.
  const auto dispatch = [&](int c, std::uint64_t bytes, sim_time at, bool* ok,
                            sim_time* done, sim_time* fault_at) {
    auto& cs = conn_stats_[static_cast<std::size_t>(c)];
    ++cs.dispatches;
    try {
      const sim_time fin = conns_[static_cast<std::size_t>(c)]->exchange(
          at, bytes + costs_.control_up + costs_.http_request_up,
          costs_.ack_down + costs_.http_response_down);
      free[static_cast<std::size_t>(c)] = fin;
      cs.busy += fin - at;
      meter_framing();
      record_outcome(false, fin - at);
      *ok = true;
      *done = fin;
    } catch (const transient_fault& f) {
      ++cs.faults;
      ++stats_.shard_faults;
      // The retry-after embargo binds this connection, not the stripe: the
      // flow's cursor waits it out, but the fault is *detected* at f.at() —
      // that is when a hedge on another (independent) flow may fire.
      free[static_cast<std::size_t>(c)] =
          std::max(at, std::max(f.at(), f.retry_after()));
      record_outcome(true, sim_time{});
      *ok = false;
      *fault_at = std::max(at, f.at());
    }
  };

  for (std::size_t pos = 0; pos < chunks.size();
       pos += static_cast<std::size_t>(k)) {
    const std::size_t data_n =
        std::min(static_cast<std::size_t>(k), chunks.size() - pos);
    ++stats_.stripes;

    std::vector<shard> shards;
    std::uint64_t max_bytes = 0;
    for (std::size_t i = 0; i < data_n; ++i) {
      shard s;
      s.chunk = chunks[pos + i].index;
      s.bytes = chunks[pos + i].bytes;
      max_bytes = std::max(max_bytes, s.bytes);
      shards.push_back(s);
    }
    // Parity shards are sized to the widest data shard (short shards are
    // zero-padded on the wire, exactly as the FEC codec requires).
    for (int r = 0; r < d.parity; ++r) {
      shard s;
      s.parity = true;
      s.bytes = max_bytes;
      shards.push_back(s);
    }
    stats_.data_shards += data_n;
    stats_.parity_shards += static_cast<std::uint64_t>(d.parity);

    // Primary dispatches: shard i rides the i-th earliest-free flow (ties
    // broken by index — deterministic), so the K data shards land on K
    // distinct fault domains and a flow stuck in an outage naturally sinks
    // to the back of the order instead of collecting every K-th chunk.
    std::vector<int> order(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) order[static_cast<std::size_t>(c)] = c;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (free[static_cast<std::size_t>(a)] !=
          free[static_cast<std::size_t>(b)]) {
        return free[static_cast<std::size_t>(a)] <
               free[static_cast<std::size_t>(b)];
      }
      return a < b;
    });
    for (std::size_t i = 0; i < shards.size(); ++i) {
      shard& s = shards[i];
      s.conn = order[i % static_cast<std::size_t>(k)];
      const sim_time at =
          std::max(start, free[static_cast<std::size_t>(s.conn)]);
      if (!s.parity) crash_check(at);
      s.dispatched = at;
      bool ok = false;
      dispatch(s.conn, s.bytes, at, &ok, &s.landed_at, &s.fault_at);
      s.landed = ok;
    }

    // Hedge pass: duplicate-dispatch data shards whose primary faulted (at
    // the fault's detection time) or outlived the timeout (at fire time), on
    // the earliest-free other connection. First completion wins; the loser's
    // payload bytes are metered as redundancy below.
    if (d.hedge_timeout > sim_time{} && k > 1) {
      for (shard& s : shards) {
        if (s.parity) continue;
        const sim_time fire = s.dispatched + d.hedge_timeout;
        sim_time when;
        if (!s.landed) {
          when = std::max(s.fault_at, s.dispatched);
        } else if (s.landed_at > fire) {
          when = fire;
        } else {
          continue;  // primary beat the timeout: duplicate never dispatched
        }
        int hc = -1;
        for (int c = 0; c < k; ++c) {
          if (c == s.conn) continue;
          if (hc < 0 || free[static_cast<std::size_t>(c)] <
                            free[static_cast<std::size_t>(hc)]) {
            hc = c;
          }
        }
        if (hc < 0) continue;
        ++stats_.hedges_fired;
        const sim_time at =
            std::max(when, free[static_cast<std::size_t>(hc)]);
        bool ok = false;
        sim_time fa;
        dispatch(hc, s.bytes, at, &ok, &s.hedge_landed_at, &fa);
        s.hedge_landed = ok;
      }
    }

    // Resolve the stripe: classify payload vs redundancy, reconstruct losses
    // covered by parity, queue the rest for recovery.
    std::vector<sim_time> landed_times;
    for (shard& s : shards) {
      bool won_by_hedge = false;
      if (s.hedge_landed && (!s.landed || s.hedge_landed_at < s.landed_at)) {
        won_by_hedge = true;
        ++stats_.hedges_won;
        if (s.landed) {  // the primary lost the race
          meter_->record(direction::up, traffic_category::redundancy, s.bytes);
        }
        s.landed = true;
        s.landed_at = s.hedge_landed_at;
      } else if (s.hedge_landed) {  // duplicate cancelled on arrival
        ++stats_.hedges_cancelled;
        meter_->record(direction::up, traffic_category::redundancy, s.bytes);
      }
      (void)won_by_hedge;
      if (!s.landed) continue;
      landed_times.push_back(s.landed_at);
      meter_->record(direction::up,
                     s.parity ? traffic_category::redundancy
                              : traffic_category::payload,
                     s.bytes);
    }

    // Any data_n of the landed shards decode the whole stripe (net/fec.hpp),
    // so the MDS property covers stragglers as well as losses: every chunk
    // is available by the data_n-th arrival, whether its own shard ever
    // lands or lands late behind an outage.
    sim_time reconstruct_at{};
    bool can_reconstruct = false;
    if (landed_times.size() >= data_n) {
      std::sort(landed_times.begin(), landed_times.end());
      reconstruct_at = landed_times[data_n - 1];
      can_reconstruct = true;
    }

    for (std::size_t i = 0; i < data_n; ++i) {
      shard& s = shards[i];
      sim_time at;
      if (s.landed && (!can_reconstruct || s.landed_at <= reconstruct_at)) {
        at = s.landed_at;
      } else if (can_reconstruct) {
        at = reconstruct_at;
        ++stats_.reconstructions;
      } else if (s.landed) {
        at = s.landed_at;
      } else {
        missing.push_back({s.chunk, s.bytes});
        continue;
      }
      try {
        deliver(s.chunk, s.bytes, at);
        out.done = std::max(out.done, at);
      } catch (const transient_fault&) {
        // The server refused the commit (transient): recover serially.
        missing.push_back({s.chunk, s.bytes});
      }
    }
  }

  // Bounded recovery rounds for anything parity and hedging couldn't save:
  // the serial retry/backoff shape of the sync engine, spread over the
  // parallel flows, with jitter drawn from each flow's own domain.
  int attempt = 1;
  while (!missing.empty() && attempt < retry_.max_attempts) {
    ++stats_.recovery_rounds;
    ++attempt;
    std::vector<chunk_range> still;
    for (const chunk_range& m : missing) {
      int c = 0;
      for (int i = 1; i < k; ++i) {
        if (free[static_cast<std::size_t>(i)] <
            free[static_cast<std::size_t>(c)]) {
          c = i;
        }
      }
      fault_injector* dom =
          faults_ != nullptr
              ? &faults_->domain(static_cast<std::uint32_t>(c) + 1)
              : nullptr;
      sim_time at = std::max(start, free[static_cast<std::size_t>(c)]);
      if (dom != nullptr) at += backoff_delay(attempt - 1, *dom);
      crash_check(at);
      bool ok = false;
      sim_time done, fa;
      dispatch(c, m.bytes, at, &ok, &done, &fa);
      if (!ok) {
        still.push_back(m);
        continue;
      }
      meter_->record(direction::up, traffic_category::payload, m.bytes);
      try {
        deliver(m.index, m.bytes, done);
        out.done = std::max(out.done, done);
      } catch (const transient_fault&) {
        still.push_back(m);
      }
    }
    missing.swap(still);
  }

  out.complete = missing.empty();
  return out;
}

std::string transfer_scheduler::summary() const {
  std::ostringstream os;
  os << "decision: K=" << stats_.last_connections
     << " R=" << stats_.last_parity
     << " hedge=" << stats_.last_hedge_timeout.str() << "\n";
  os << "observed: " << stats_.observed_success << " ok, "
     << stats_.observed_faults << " faulted; " << stats_.decisions
     << " decisions (" << stats_.escalations << " striped)\n";
  os << "stripes: " << stats_.stripes << " (" << stats_.data_shards
     << " data + " << stats_.parity_shards << " parity shards, "
     << stats_.shard_faults << " shard faults)\n";
  os << "hedges: " << stats_.hedges_fired << " fired, " << stats_.hedges_won
     << " won, " << stats_.hedges_cancelled << " cancelled\n";
  os << "reconstructions: " << stats_.reconstructions
     << ", recovery rounds: " << stats_.recovery_rounds << "\n";
  text_table t;
  t.header({"conn", "dispatches", "faults", "loss est", "rtt est"});
  for (std::size_t i = 0; i < conn_stats_.size(); ++i) {
    const auto& cs = conn_stats_[i];
    std::ostringstream loss;
    loss.precision(3);
    loss << std::fixed << cs.loss_estimate();
    t.row({"c" + std::to_string(i), std::to_string(cs.dispatches),
           std::to_string(cs.faults), loss.str(), cs.rtt_estimate().str()});
  }
  os << t.str();
  return os.str();
}

}  // namespace cloudsync
