// Deterministic fault injection for the network, storage, and client layers.
//
// The paper's BJ vantage point (§5, Fig 7/8) is exactly the regime where
// transfers fail mid-flight: links drop, connections reset, servers shed
// load. A `fault_plan` describes how often; a `fault_injector` turns it into
// a reproducible schedule driven by the library's seeded xoshiro256** RNG,
// so an experiment with faults is byte-identical across runs and thread
// counts (each experiment environment owns one injector; everything attached
// to one environment runs on one thread — see sim_clock's threading
// contract).
//
// Consulted by three layers:
//   tcp_connection      — link outages, connection resets, mid-transfer aborts
//   cloud               — transient server errors / throttles on commits
//   metadata_service    — throttled notification polls
//
// All of them surface faults as a thrown `transient_fault`; the sync engine
// owns the retry policy (see client/sync_engine.hpp). With an all-zero plan
// the injector is inert: no RNG draws, no thrown faults, no metered bytes —
// wiring a disabled injector into a run cannot change any output.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace cloudsync {

enum class fault_kind : std::uint8_t {
  link_outage,       ///< the access link is down for a window of time
  connection_reset,  ///< TCP RST at request start; connection must re-handshake
  transfer_abort,    ///< connection dies mid-transfer; partial bytes wasted
  server_error,      ///< transient 5xx before the server applied anything
  server_throttle,   ///< 429 with a retry-after hint
  client_crash,      ///< the client process dies at a kill site and restarts
  kCount
};

const char* to_string(fault_kind k);

/// Kill sites of the crash-point harness: the instants inside a journaled
/// sync transaction where an injected crash is checked for (see
/// client/sync_journal.hpp for the journal states each site leaves behind).
enum class crash_site : std::uint8_t {
  after_plan,     ///< transaction journaled, nothing on the wire yet
  mid_chunk,      ///< before sending chunk k; chunks 0..k-1 are acked
  before_commit,  ///< all chunks acked, final commit not yet issued
  kCount
};

const char* to_string(crash_site s);

/// A typed transient failure surfaced by the net/storage layers. Retryable by
/// construction: `at` is when the failure was detected (virtual time already
/// spent), `retry_after` is the earliest instant a retry can succeed for
/// scheduled faults (outage end, throttle window) — zero means "immediately".
class transient_fault : public std::exception {
 public:
  transient_fault(fault_kind kind, sim_time at, sim_time retry_after = {})
      : kind_(kind), at_(at), retry_after_(retry_after) {}

  fault_kind kind() const { return kind_; }
  sim_time at() const { return at_; }
  sim_time retry_after() const { return retry_after_; }
  const char* what() const noexcept override { return to_string(kind_); }

 private:
  fault_kind kind_;
  sim_time at_;
  sim_time retry_after_;
};

/// An injected client crash. NOT retryable in place: it unwinds the whole
/// sync client (whose in-memory state — dirty set, shadows, connection — is
/// lost, exactly like a killed process) and is caught by the crash-recovery
/// harness, which restarts the station and runs the journal recovery pass.
/// `device` identifies the station whose client died.
class client_crash : public std::exception {
 public:
  client_crash(crash_site site, sim_time at, std::uint32_t device)
      : site_(site), at_(at), device_(device) {}

  crash_site site() const { return site_; }
  sim_time at() const { return at_; }
  std::uint32_t device() const { return device_; }
  const char* what() const noexcept override { return to_string(site_); }

 private:
  crash_site site_;
  sim_time at_;
  std::uint32_t device_;
};

/// Seeded description of the faults an environment should experience.
/// All-zero (the default) means "perfect world" — see fault_injector.
struct fault_plan {
  /// Mixed into the owning environment's seed so two environments with the
  /// same workload seed can still see different fault schedules.
  std::uint64_t seed = 0;

  // Link outages: Poisson arrivals, exponential durations, precomputed over
  // `outage_horizon` at construction (beyond the horizon the link stays up).
  double outages_per_hour = 0.0;
  sim_time outage_mean_duration = sim_time::from_sec(8);
  sim_time outage_horizon = sim_time::from_sec(48 * 3600);

  // Per-exchange connection faults.
  double reset_prob = 0.0;  ///< TCP RST before any request byte is sent
  double abort_prob = 0.0;  ///< connection dies mid-transfer

  // Per-server-operation faults (commits, deletes, notification polls).
  double server_error_prob = 0.0;
  double throttle_prob = 0.0;
  sim_time throttle_retry_after = sim_time::from_sec(2);

  // Client crashes (the crash-point harness): at every kill site reached by
  // a journaled sync transaction, the client dies with this probability and
  // the harness restarts it. Bounded by `max_crashes` so hostile plans still
  // terminate (a resumed transfer makes progress; a restarted one may not).
  double crash_prob = 0.0;
  int max_crashes = 64;

  /// Deterministic count-based faults for tests: the first N server
  /// operations / exchanges fail unconditionally, then the probabilities
  /// above take over. Lets a test pin "delta sync fails exactly 3 times".
  int fail_first_server_ops = 0;
  int fail_first_exchanges = 0;

  bool enabled() const {
    return outages_per_hour > 0 || reset_prob > 0 || abort_prob > 0 ||
           server_error_prob > 0 || throttle_prob > 0 || crash_prob > 0 ||
           fail_first_server_ops > 0 || fail_first_exchanges > 0;
  }

  static fault_plan none() { return {}; }

  /// A plan whose every rate scales linearly with `intensity` (0 = none,
  /// 1 = a badly degraded network). Used by bench/failure_tue to sweep the
  /// loss/outage axis with one knob.
  static fault_plan degraded(double intensity, std::uint64_t seed = 0);

  /// A pure crash plan: client dies with probability `prob` at every kill
  /// site. Compose with transient faults via merged().
  static fault_plan crashes(double prob, std::uint64_t seed = 0);

  /// Deterministic composition of two seeded plans (e.g. transient faults +
  /// crash points) into one plan an experiment_env can own. Rates add,
  /// per-event probabilities combine as independent events
  /// (1 − (1−a)(1−b)), count-based faults add, and each duration/hint field
  /// follows whichever side actually uses it (max when both do). Merging
  /// with none() is the identity, so merged(a, none()) replays exactly a's
  /// schedule.
  static fault_plan merged(const fault_plan& a, const fault_plan& b);
};

/// Turns a fault_plan into concrete, reproducible fault decisions.
/// One injector per experiment environment; single-threaded use only (the
/// same contract as sim_clock).
class fault_injector {
 public:
  explicit fault_injector(fault_plan plan, std::uint64_t env_seed = 0);

  bool enabled() const {
    return plan_.enabled() || remaining_forced_server_ > 0 ||
           remaining_forced_exchange_ > 0 || forced_crash_armed_;
  }
  const fault_plan& plan() const { return plan_; }

  /// If `now` falls inside a scheduled link outage, the time the link comes
  /// back up; nullopt when the link is up.
  std::optional<sim_time> outage_end(sim_time now) const;

  /// Sample a connection-level fault for an exchange starting at `now`.
  /// Consumes RNG only when the corresponding rates are non-zero.
  std::optional<fault_kind> sample_exchange_fault();

  /// Fraction of the forward transfer delivered before a transfer_abort
  /// (uniform in [0.05, 0.95]).
  double sample_abort_fraction();

  /// Sample a server-side fault for one cloud/metadata operation.
  std::optional<fault_kind> sample_server_fault();

  sim_time throttle_retry_after() const { return plan_.throttle_retry_after; }

  /// Uniform in [0, 1) for backoff jitter — centralises every random draw of
  /// the robustness layer in one seeded stream.
  double jitter01() { return rng_.uniform_real(); }

  /// How many faults of each kind this injector has injected (observability
  /// for tests and the failure bench).
  std::uint64_t injected(fault_kind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  std::uint64_t injected_total() const;

  /// Record that a fault decided elsewhere (the scheduled outage windows
  /// consulted via outage_end) actually fired.
  void count(fault_kind k) { ++injected_[static_cast<std::size_t>(k)]; }

  /// Arm count-based faults mid-run (tests): the next `n` server operations
  /// or exchanges fail deterministically, then sampling resumes.
  void force_server_failures(int n) { remaining_forced_server_ = n; }
  void force_exchange_failures(int n) { remaining_forced_exchange_ = n; }

  /// Should the client die at this kill site? Counts against max_crashes.
  /// Consumes RNG only when the plan's crash_prob is non-zero; a forced
  /// crash (below) fires without any draw.
  bool should_crash(crash_site site);

  /// Arm exactly one deterministic crash (tests, journal_dump): the client
  /// dies at the (skip+1)-th opportunity at `site`. Opportunities at other
  /// sites are not counted and never consume RNG.
  void force_crash(crash_site site, int skip = 0) {
    forced_crash_armed_ = true;
    forced_crash_site_ = site;
    forced_crash_skip_ = skip;
  }

  /// Crashes injected so far (forced + sampled).
  int crashes_injected() const { return crashes_injected_; }

  /// Per-connection fault domain for parallel transfers. Domain 0 is this
  /// injector itself — the legacy single-domain behavior every existing
  /// caller gets by default. Higher ids are lazily built child injectors
  /// derived from the same plan but with the connection id mixed into the
  /// seed, so each parallel flow draws its own outage schedule and
  /// per-exchange fault stream instead of sharing one link schedule.
  /// Instantiating or drawing from a child never consumes RNG from (or
  /// otherwise perturbs) domain 0, and domains are stable: repeated calls
  /// with the same id return the same injector.
  fault_injector& domain(std::uint32_t conn_id);

  /// Child domains instantiated so far (domain 0 excluded).
  std::size_t domain_count() const { return domains_.size(); }

  /// Faults injected across this injector and every instantiated domain.
  std::uint64_t injected_total_all_domains() const;

 private:
  fault_plan plan_;
  std::uint64_t env_seed_ = 0;
  rng rng_;
  std::vector<std::unique_ptr<fault_injector>> domains_;
  std::vector<std::pair<sim_time, sim_time>> outages_;  ///< sorted windows
  int remaining_forced_server_ = 0;
  int remaining_forced_exchange_ = 0;
  bool forced_crash_armed_ = false;
  crash_site forced_crash_site_ = crash_site::after_plan;
  int forced_crash_skip_ = 0;
  int crashes_injected_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(fault_kind::kCount)>
      injected_{};
};

}  // namespace cloudsync
