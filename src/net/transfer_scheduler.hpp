// Fault-adaptive parallel transfer scheduler.
//
// Sits between the sync engine's resumable upload sessions and
// tcp_connection. A transfer's chunk ranges are striped across K parallel
// connections — each attached to an independent fault domain of the
// environment's injector (fault_injector::domain) — and each stripe is
// optionally extended with R systematic parity shards (net/fec.hpp) so any
// K of the K+R shard completions reconstruct the stripe without waiting on
// a faulted flow. Shards that fault, or that are still in flight past an
// adaptive percentile timeout, are hedged: duplicate-dispatched on the
// earliest-free other connection with first-completion-wins accounting (the
// loser's payload bytes are metered as redundancy, never as payload).
//
// An adaptive controller observes the main connection's per-exchange
// outcomes (fed by the sync engine's retry loop) over a sliding window and
// picks (K, R, hedge timeout) from a small policy lattice. On a clean link
// the observed fault rate stays zero, the decision stays (K=1, R=0), and
// the sync engine falls through to its legacy single-connection serial
// loop — the scheduler draws no RNG and meters no bytes, so enabling it is
// byte-invisible until faults actually appear. Parity and hedge-duplicate
// bytes are metered under traffic_category::redundancy, making the
// redundancy level an explicit cost the TUE reports can trade against tail
// delay (TOFEC's throughput–delay frontier).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/tcp_model.hpp"
#include "net/traffic_meter.hpp"
#include "util/sim_time.hpp"

namespace cloudsync {

class fault_injector;

/// One point of the policy lattice: how the next striped transfer runs.
struct transfer_decision {
  int connections = 1;     ///< K parallel flows
  int parity = 0;          ///< R parity shards per stripe
  sim_time hedge_timeout{};  ///< zero = hedging off

  bool striped() const { return connections > 1; }
};

/// Controller configuration. The escalate thresholds are observed fault
/// rates (faulted exchanges / window) above which the controller moves to
/// the next lattice point: (1,0) → (2,1) → (3,1) → (4,2).
struct transfer_policy {
  bool enabled = false;

  int max_connections = 4;
  int max_parity = 2;

  std::size_t observe_window = 64;  ///< sliding window of exchange outcomes
  std::size_t min_samples = 8;      ///< stay single-connection below this

  double escalate2 = 0.02;  ///< fault rate → (2,1)
  double escalate3 = 0.08;  ///< fault rate → (3,1)
  double escalate4 = 0.20;  ///< fault rate → (4,2)

  /// Hedge timeout = hedge_quantile of observed successful shard durations
  /// times hedge_multiplier, floored at hedge_floor; hedging stays off until
  /// min_samples successes have been seen.
  double hedge_quantile = 0.95;
  double hedge_multiplier = 2.0;
  sim_time hedge_floor = sim_time::from_msec(250);

  /// Pin the decision (bench sweeps): the controller always returns `pin`
  /// (clamped to max_connections/max_parity) regardless of observations.
  bool pinned = false;
  transfer_decision pin{};
};

/// Backoff parameters for the scheduler's recovery rounds — mirrors the
/// fields of the sync engine's retry_policy (client/sync_engine.hpp), which
/// the net layer cannot include; the sync engine copies them over.
struct shard_retry_policy {
  int max_attempts = 6;
  sim_time base_backoff = sim_time::from_msec(500);
  double backoff_multiplier = 2.0;
  sim_time max_backoff = sim_time::from_sec(30);
  double jitter = 0.2;
};

/// Per-shard wire framing, mirroring what the sync engine's serial chunk
/// loop meters per exchange: session chunk control/ack records (metered as
/// `resume`) and HTTP headers (metered as `notification`).
struct shard_wire_costs {
  std::uint64_t control_up = 0;
  std::uint64_t ack_down = 0;
  std::uint64_t http_request_up = 0;
  std::uint64_t http_response_down = 0;
};

/// One chunk of a resumable upload session still awaiting its server ack.
struct chunk_range {
  std::uint32_t index = 0;
  std::uint64_t bytes = 0;
};

/// Per-connection observability (tools/transfer_stats).
struct connection_stats {
  std::uint64_t dispatches = 0;  ///< exchanges attempted on this connection
  std::uint64_t faults = 0;      ///< exchanges that threw transient_fault
  sim_time busy{};               ///< cumulative successful exchange time
  /// Mean successful exchange duration — the scheduler's RTT estimate.
  sim_time rtt_estimate() const {
    const std::uint64_t ok = dispatches - faults;
    return ok ? sim_time::from_usec(busy.usec() / ok) : sim_time{};
  }
  /// Observed fault fraction — the scheduler's loss estimate.
  double loss_estimate() const {
    return dispatches ? static_cast<double>(faults) /
                            static_cast<double>(dispatches)
                      : 0.0;
  }
};

struct transfer_stats {
  std::uint64_t observed_success = 0;
  std::uint64_t observed_faults = 0;
  std::uint64_t decisions = 0;    ///< decide() calls
  std::uint64_t escalations = 0;  ///< decisions that left (1,0)
  std::uint64_t stripes = 0;
  std::uint64_t data_shards = 0;
  std::uint64_t parity_shards = 0;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedges_won = 0;    ///< duplicate finished before the original
  std::uint64_t hedges_cancelled = 0;  ///< original landed before the timeout
  std::uint64_t reconstructions = 0;   ///< chunks delivered via parity decode
  std::uint64_t recovery_rounds = 0;   ///< serial backoff rounds after FEC
  std::uint64_t shard_faults = 0;
  int last_connections = 1;
  int last_parity = 0;
  sim_time last_hedge_timeout{};
};

/// Result of one striped send.
struct striped_outcome {
  sim_time done{};       ///< completion time of the last delivered chunk
  bool complete = false;  ///< every chunk delivered (sent or reconstructed)
};

class transfer_scheduler {
 public:
  transfer_scheduler(link_config link, tcp_config tcp, traffic_meter& meter,
                     transfer_policy policy, shard_retry_policy retry,
                     shard_wire_costs costs, fault_injector* faults);
  ~transfer_scheduler();

  /// Feed the controller one main-connection exchange outcome. Pure
  /// bookkeeping: no RNG draws, no metered bytes — observing a clean link
  /// cannot change any output.
  void observe_success(sim_time duration);
  void observe_fault();

  /// Pick (K, R, hedge timeout) for the next transfer from the current
  /// observation window.
  transfer_decision decide();

  /// Deliver one landed chunk to the server+journal. Called in
  /// deterministic chunk-index order; may throw transient_fault (server
  /// rejected the commit), in which case the chunk re-enters the recovery
  /// rounds.
  using deliver_fn =
      std::function<void(std::uint32_t index, std::uint64_t bytes, sim_time at)>;
  /// Crash-point check (the sync engine's mid_chunk kill site); may throw
  /// client_crash, which propagates out of send_striped.
  using crash_fn = std::function<void(sim_time at)>;

  /// Stripe `chunks` across d.connections flows starting at `start`.
  /// Requires d.striped(). Payload bytes of each delivered chunk are metered
  /// as `payload`; parity shards and losing hedge duplicates as
  /// `redundancy`; per-shard control/ack as `resume` and HTTP headers as
  /// `notification` (mirroring the serial loop). Chunks that survive parity
  /// and hedging undelivered go through bounded serial recovery rounds with
  /// the same backoff/jitter shape as the sync engine's retry loop (jitter
  /// drawn from the shard's own fault domain, never domain 0). Returns
  /// complete=false when recovery attempts are exhausted.
  striped_outcome send_striped(sim_time start,
                               const std::vector<chunk_range>& chunks,
                               const transfer_decision& d,
                               const deliver_fn& deliver,
                               const crash_fn& crash_check);

  void set_link(link_config link);

  const transfer_stats& stats() const { return stats_; }
  const std::vector<connection_stats>& per_connection() const {
    return conn_stats_;
  }
  const transfer_policy& policy() const { return policy_; }

  /// Human-readable dump for tools/transfer_stats.
  std::string summary() const;

 private:
  struct shard;

  void ensure_connections(int k);
  sim_time backoff_delay(int attempt, fault_injector& domain) const;
  void record_outcome(bool fault, sim_time duration);

  link_config link_;
  tcp_config tcp_;
  traffic_meter* meter_;
  transfer_policy policy_;
  shard_retry_policy retry_;
  shard_wire_costs costs_;
  fault_injector* faults_;

  /// Parallel flows c_0..c_{K-1}; c_i uses fault domain i+1, so scheduler
  /// activity never consumes RNG from the environment's main (domain-0)
  /// stream.
  std::vector<std::unique_ptr<tcp_connection>> conns_;
  std::vector<connection_stats> conn_stats_;

  /// Sliding outcome window (true = fault) and successful-duration window.
  std::vector<bool> outcomes_;
  std::size_t outcome_next_ = 0;
  std::vector<sim_time> durations_;
  std::size_t duration_next_ = 0;

  transfer_stats stats_;
};

}  // namespace cloudsync
