#include "net/link.hpp"

#include <algorithm>

namespace cloudsync {

link_config link_config::minnesota() {
  return {mbps_to_bytes_per_sec(20.0), mbps_to_bytes_per_sec(20.0),
          sim_time::from_msec(50), 0.0};
}

link_config link_config::beijing() {
  // A trans-Pacific consumer path in 2014: thin, far, and mildly lossy.
  return {mbps_to_bytes_per_sec(1.6), mbps_to_bytes_per_sec(4.0),
          sim_time::from_msec(300), 0.005};
}

link_config packet_filter::apply(link_config base) const {
  if (max_bandwidth_bytes_per_sec > 0) {
    base.up_bytes_per_sec =
        std::min(base.up_bytes_per_sec, max_bandwidth_bytes_per_sec);
    base.down_bytes_per_sec =
        std::min(base.down_bytes_per_sec, max_bandwidth_bytes_per_sec);
  }
  base.rtt += added_delay;
  return base;
}

}  // namespace cloudsync
