// Access-link model between a client and the cloud.
//
// The paper's two vantage points map directly:
//   MN — ~20 Mbps up, RTT 42-77 ms (close to the cloud)
//   BJ — ~1.6 Mbps up, RTT 200-480 ms (remote)
#pragma once

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace cloudsync {

struct link_config {
  double up_bytes_per_sec = mbps_to_bytes_per_sec(20.0);
  double down_bytes_per_sec = mbps_to_bytes_per_sec(20.0);
  sim_time rtt = sim_time::from_msec(50);
  /// Segment loss probability (retransmissions cost wire bytes and time).
  double loss_rate = 0.0;

  /// The paper's MN vantage point (M1-M4): ~20 Mbps, RTT ≈ 50 ms.
  static link_config minnesota();
  /// The paper's BJ vantage point (B1-B4): ~1.6 Mbps, RTT ≈ 300 ms.
  static link_config beijing();
};

/// Netfilter/Iptables-style packet filter from §3.2: clamps bandwidth and
/// adds latency in both directions. Returns the effective link.
struct packet_filter {
  double max_bandwidth_bytes_per_sec = 0;  ///< 0 = unlimited
  sim_time added_delay{};

  link_config apply(link_config base) const;
};

}  // namespace cloudsync
