#include "net/http_model.hpp"

namespace cloudsync {

sim_time http_exchange(tcp_connection& conn, const http_config& http,
                       traffic_meter& meter, sim_time now,
                       traffic_category cat, std::uint64_t up_body,
                       std::uint64_t down_body) {
  meter.record(direction::up, traffic_category::notification,
               http.request_header_bytes);
  meter.record(direction::down, traffic_category::notification,
               http.response_header_bytes);
  if (up_body > 0) meter.record(direction::up, cat, up_body);
  if (down_body > 0) meter.record(direction::down, cat, down_body);
  return conn.exchange(now, http.request_header_bytes + up_body,
                       http.response_header_bytes + down_body);
}

}  // namespace cloudsync
