// The simulation's Wireshark: every byte that crosses the client↔cloud
// boundary is recorded here, tagged by direction and category.
//
// TUE (paper Eq. 1) is computed from these counters:
//   TUE = (total sync traffic, all categories) / (data update size).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace cloudsync {

enum class direction : std::uint8_t { up, down };  // up = client → cloud

enum class traffic_category : std::uint8_t {
  payload,       ///< file content (possibly compressed / delta-encoded)
  metadata,      ///< indexes, signatures, fingerprints, manifests
  transport,     ///< TCP/IP + TLS framing and handshakes
  notification,  ///< sync notifications, status, acknowledgements
  retry,         ///< bytes wasted on failed attempts and re-sent after faults
  resume,        ///< resumable-transfer control: session handshakes, chunk
                 ///< acks, recovery queries (see client/sync_journal.hpp)
  redundancy,    ///< proactive redundancy of the parallel transfer scheduler:
                 ///< FEC parity shards and hedged duplicate dispatches (see
                 ///< net/transfer_scheduler.hpp) — bytes spent to cut tail
                 ///< delay rather than recover from a fault already seen
  rehydrate,     ///< miss-driven block re-hydration of the client cache tier
                 ///< (see cache/block_cache.hpp): ranged fetches of evicted
                 ///< blocks from the cloud copy of the last-synced version —
                 ///< bytes a full-replica client would never transfer
  kCount
};

const char* to_string(traffic_category c);

class traffic_meter {
 public:
  void record(direction dir, traffic_category cat, std::uint64_t bytes);

  std::uint64_t total() const;
  std::uint64_t total(direction dir) const;
  std::uint64_t by_category(traffic_category cat) const;
  std::uint64_t get(direction dir, traffic_category cat) const;

  /// Everything except payload — the paper's "overhead traffic".
  std::uint64_t overhead() const;

  void reset();

  /// Fold another meter's counters into this one. The crash-recovery harness
  /// uses this to retire a crashed client incarnation's traffic into a
  /// run-level aggregate before the incarnation is destroyed.
  void add(const traffic_meter& other);

  /// Snapshot/delta support for measuring a single operation inside a longer
  /// run: capture before, subtract after.
  struct snapshot {
    std::array<std::uint64_t,
               2 * static_cast<std::size_t>(traffic_category::kCount)>
        counters{};
  };
  snapshot snap() const;
  /// Total bytes accumulated since `since` (all categories/directions).
  /// A snapshot taken before a reset() is stale: each counter delta is
  /// clamped at zero rather than wrapping to ~2^64.
  std::uint64_t total_since(const snapshot& since) const;

  std::string summary() const;

 private:
  static std::size_t idx(direction dir, traffic_category cat) {
    return static_cast<std::size_t>(dir) *
               static_cast<std::size_t>(traffic_category::kCount) +
           static_cast<std::size_t>(cat);
  }

  std::array<std::uint64_t,
             2 * static_cast<std::size_t>(traffic_category::kCount)>
      counters_{};
};

}  // namespace cloudsync
