// HTTP(S) application framing model.
//
// Commercial sync protocols ride on HTTPS; each logical operation costs a
// request/response header pair on top of its body. These bytes are part of
// the paper's "overhead traffic".
#pragma once

#include <cstdint>

#include "net/tcp_model.hpp"
#include "net/traffic_meter.hpp"

namespace cloudsync {

struct http_config {
  std::uint64_t request_header_bytes = 700;   ///< method, path, auth, cookies
  std::uint64_t response_header_bytes = 450;  ///< status, etags, json wrapper
};

/// One HTTPS request/response on a persistent connection: records header
/// bytes as notification-category app traffic plus body bytes under `cat`,
/// and returns the completion time from the TCP model.
sim_time http_exchange(tcp_connection& conn, const http_config& http,
                       traffic_meter& meter, sim_time now,
                       traffic_category cat, std::uint64_t up_body,
                       std::uint64_t down_body);

}  // namespace cloudsync
