// Process-wide, content-addressed, reference-counted chunk store.
//
// Every layer of the simulator used to hold its own flat byte_buffer copy of
// the same content: the local filesystem, the client's shadow, the cloud's
// retained version history (kept forever for §4.2 fake deletion), the chunk
// substrate, and the trace materializer. The store collapses all of those
// into shared immutable chunks: equal bytes are interned once and aliased by
// cheap handles, so process memory is O(unique bytes) instead of O(total
// bytes × layers × versions).
//
// Refcounting is the shared_ptr itself: a chunk dies (and leaves the intern
// table) exactly when its last handle drops, so "store empty after all refs
// dropped" is a testable invariant, not a GC eventually-property.
//
// Aliasing is exact, not probabilistic: interning matches on a fast 64-bit
// content hash *and then byte-compares* against the candidate, so a hash
// collision costs one extra chunk, never wrong bytes.
//
// The store also has a process-wide `flat` mode that disables interning and
// makes every rope operation copy — reproducing the pre-CoW memory behaviour
// so bench/fleet_scale_report can measure rope vs. flat at matched scale
// inside one binary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"

namespace cloudsync {

class content_store;

/// CoW (default) interns and shares chunks; flat disables interning and makes
/// rope mutations deep-copy — the old one-buffer-per-layer memory model.
enum class content_mode : std::uint8_t { cow, flat };

/// One immutable run of bytes owned by the store. Created only through
/// content_store; always held by shared_ptr (the refcount *is* the shared
/// count). Lazy chunks carry a generator instead of bytes and materialize on
/// first read (thread-safe, exactly once).
class store_chunk {
 public:
  ~store_chunk();

  store_chunk(const store_chunk&) = delete;
  store_chunk& operator=(const store_chunk&) = delete;

  std::size_t size() const { return size_; }

  /// The chunk's bytes, materializing a lazy chunk on first call. The view is
  /// valid for the chunk's lifetime (i.e. while any handle exists). In debug
  /// builds, reading a chunk whose last handle dropped trips an assertion
  /// (and freed chunk bytes are poisoned) — the use-after-detach guard.
  byte_view bytes() const;

  bool materialized() const;
  bool interned() const { return interned_; }

 private:
  friend class content_store;
  store_chunk() = default;

  mutable byte_buffer data_;
  std::size_t size_ = 0;
  std::uint64_t hash_ = 0;  ///< content_hash64 of data_ (interned chunks)
  bool interned_ = false;
  mutable std::function<byte_buffer()> fill_;  ///< lazy generator, or empty
  mutable std::once_flag once_;
  mutable std::atomic<bool> filled_{false};
  content_store* owner_ = nullptr;
  std::uint32_t alive_ = kAliveMagic;  ///< cleared by the destructor

  static constexpr std::uint32_t kAliveMagic = 0xC0DEC0DEu;
};

/// Shared, immutable ownership of one chunk.
using chunk_handle = std::shared_ptr<const store_chunk>;

class content_store {
 public:
  /// Interning granularity for fresh flat content: big enough that rope
  /// metadata is negligible, small enough that aligned duplicate prefixes
  /// (whole-file and head-anchored partial duplicates) share chunks.
  static constexpr std::size_t kInternChunkBytes = 64 * 1024;

  content_store() = default;
  content_store(const content_store&) = delete;
  content_store& operator=(const content_store&) = delete;

  /// The process-wide store every content_ref uses.
  static content_store& global();

  content_mode mode() const {
    return mode_.load(std::memory_order_relaxed);
  }
  /// Benches/tests only; not meant to change while refs are being built.
  void set_mode(content_mode m) {
    mode_.store(m, std::memory_order_relaxed);
  }

  /// A handle whose bytes equal `data`: an existing interned chunk when one
  /// matches (hash bucket + exact byte compare), otherwise a fresh interned
  /// copy. Flat mode: always a fresh private copy, never shared.
  chunk_handle intern(byte_view data);

  /// Adopt `data` as a private (never-shared, never-deduped) chunk. Zero
  /// copy; used for flat mode and for content that interning cannot help.
  chunk_handle adopt(byte_buffer&& data);

  /// A private chunk of `size` bytes whose content is produced by `fill` on
  /// first read. `fill` must return exactly `size` bytes and be safe to call
  /// from any thread (it runs at most once).
  chunk_handle lazy(std::size_t size, std::function<byte_buffer()> fill);

  struct stats_snapshot {
    std::uint64_t chunks = 0;           ///< live chunks (all kinds)
    std::uint64_t live_bytes = 0;       ///< materialized bytes held right now
    std::uint64_t peak_live_bytes = 0;  ///< high-water mark of live_bytes
    std::uint64_t interned_chunks = 0;  ///< live entries in the intern table
    std::uint64_t intern_hits = 0;      ///< intern() calls that aliased
    std::uint64_t intern_misses = 0;    ///< intern() calls that copied
  };
  stats_snapshot stats() const;
  /// Restart the peak-live-bytes high-water mark from the current level
  /// (benches bracket a phase with reset_peak() / stats()).
  void reset_peak();

  /// True when no chunk is alive anywhere in the process — every handle has
  /// been dropped (the refcount-exactness test).
  bool empty() const { return chunks_.load() == 0; }

  /// Refcount → number of interned chunks with that many live handles, plus
  /// the byte totals behind them: `unique` counts each chunk once, `logical`
  /// counts it once per handle (their difference is what sharing saves).
  struct table_profile {
    std::map<std::size_t, std::size_t> refcount_histogram;
    std::uint64_t unique_bytes = 0;
    std::uint64_t logical_bytes = 0;
  };
  table_profile profile_table() const;

 private:
  friend class store_chunk;

  static constexpr std::size_t kShards = 64;
  struct table_entry {
    const store_chunk* raw = nullptr;
    std::weak_ptr<const store_chunk> weak;
  };
  struct shard {
    std::mutex mu;
    std::unordered_multimap<std::uint64_t, table_entry> entries;
  };

  shard& shard_for(std::uint64_t hash) {
    return shards_[hash & (kShards - 1)];
  }
  /// Chunk accounting shared by every creation path.
  chunk_handle finish_chunk(std::unique_ptr<store_chunk> c);
  void note_materialized(std::size_t bytes) const;
  void on_chunk_destroyed(const store_chunk& c);

  std::atomic<content_mode> mode_{content_mode::cow};
  mutable shard shards_[kShards];
  std::atomic<std::uint64_t> chunks_{0};
  mutable std::atomic<std::uint64_t> live_bytes_{0};
  mutable std::atomic<std::uint64_t> peak_live_bytes_{0};
  std::atomic<std::uint64_t> interned_chunks_{0};
  std::atomic<std::uint64_t> intern_hits_{0};
  std::atomic<std::uint64_t> intern_misses_{0};
};

}  // namespace cloudsync
