#include "store/content_ref.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/content_cache.hpp"

namespace cloudsync {

content_ref::content_ref(std::shared_ptr<const segment_list> segs,
                         std::size_t size)
    : segs_(std::move(segs)), size_(size) {
  auto starts = std::make_shared<std::vector<std::size_t>>();
  starts->reserve(segs_->size());
  std::size_t pos = 0;
  for (const rope_segment& s : *segs_) {
    starts->push_back(pos);
    pos += s.length;
  }
  starts_ = std::move(starts);
}

content_ref content_ref::from_segments(segment_list segs) {
  std::size_t total = 0;
  for (const rope_segment& s : segs) total += s.length;
  if (total == 0) return {};
  return content_ref(std::make_shared<const segment_list>(std::move(segs)),
                     total);
}

content_ref content_ref::from_bytes(byte_view data) {
  if (data.empty()) return {};
  content_store& store = content_store::global();
  segment_list segs;
  if (store.mode() == content_mode::flat) {
    segs.push_back(
        {store.adopt(byte_buffer(data.begin(), data.end())), 0, data.size()});
  } else {
    const std::size_t cs = content_store::kInternChunkBytes;
    segs.reserve((data.size() + cs - 1) / cs);
    for (std::size_t off = 0; off < data.size(); off += cs) {
      const std::size_t len = std::min(cs, data.size() - off);
      segs.push_back({store.intern(data.subspan(off, len)), 0, len});
    }
  }
  return from_segments(std::move(segs));
}

content_ref content_ref::from_buffer(byte_buffer&& data) {
  if (data.empty()) return {};
  content_store& store = content_store::global();
  if (store.mode() == content_mode::flat) {
    const std::size_t n = data.size();
    segment_list segs;
    segs.push_back({store.adopt(std::move(data)), 0, n});
    return from_segments(std::move(segs));
  }
  content_ref r = from_bytes(byte_view{data});
  data.clear();
  return r;
}

content_ref content_ref::lazy(std::size_t size,
                              std::function<byte_buffer()> fill) {
  if (size == 0) return {};
  segment_list segs;
  segs.push_back({content_store::global().lazy(size, std::move(fill)), 0,
                  size});
  return from_segments(std::move(segs));
}

std::size_t content_ref::locate(std::size_t off) const {
  const auto& starts = *starts_;
  const auto it = std::upper_bound(starts.begin(), starts.end(), off);
  return static_cast<std::size_t>(it - starts.begin()) - 1;
}

std::uint8_t content_ref::at(std::size_t off) const {
  if (off >= size_) {
    throw std::out_of_range("content_ref::at: offset beyond end");
  }
  const std::size_t i = locate(off);
  const rope_segment& s = (*segs_)[i];
  return s.chunk->bytes()[s.offset + (off - (*starts_)[i])];
}

content_ref content_ref::substr(std::size_t off, std::size_t len) const {
  if (off + len > size_ || off + len < off) {
    throw std::out_of_range("content_ref::substr: range beyond end");
  }
  if (len == 0) return {};
  if (off == 0 && len == size_) return *this;
  segment_list segs;
  std::size_t i = locate(off);
  std::size_t skip = off - (*starts_)[i];
  while (len > 0) {
    const rope_segment& s = (*segs_)[i];
    const std::size_t take = std::min(s.length - skip, len);
    segs.push_back({s.chunk, s.offset + skip, take});
    len -= take;
    skip = 0;
    ++i;
  }
  return from_segments(std::move(segs));
}

content_ref content_ref::patched(std::size_t off, byte_view data) const {
  if (off + data.size() > size_ || off + data.size() < off) {
    throw std::out_of_range("content_ref::patched: range beyond end");
  }
  if (data.empty()) return *this;
  if (content_store::global().mode() == content_mode::flat) {
    byte_buffer flat = flatten();
    std::memcpy(flat.data() + off, data.data(), data.size());
    return from_buffer(std::move(flat));
  }
  builder b;
  b.append(*this, 0, off);
  b.append_bytes(data);
  b.append(*this, off + data.size(), size_ - off - data.size());
  return b.build();
}

content_ref content_ref::appended(byte_view data) const {
  if (data.empty()) return *this;
  if (content_store::global().mode() == content_mode::flat) {
    byte_buffer flat = flatten();
    append(flat, data);
    return from_buffer(std::move(flat));
  }
  builder b;
  b.append(*this);
  b.append_bytes(data);
  return b.build();
}

content_ref content_ref::retain() const {
  if (content_store::global().mode() == content_mode::cow || empty()) {
    return *this;
  }
  return from_buffer(flatten());
}

byte_buffer content_ref::flatten() const {
  byte_buffer out;
  out.reserve(size_);
  walk([&](byte_view v) { append(out, v); });
  return out;
}

void content_ref::walk_range(std::size_t off, std::size_t len,
                             const std::function<void(byte_view)>& fn) const {
  if (off + len > size_ || off + len < off) {
    throw std::out_of_range("content_ref::walk_range: range beyond end");
  }
  if (len == 0) return;
  std::size_t i = locate(off);
  std::size_t skip = off - (*starts_)[i];
  while (len > 0) {
    const rope_segment& s = (*segs_)[i];
    const std::size_t take = std::min(s.length - skip, len);
    fn(s.chunk->bytes().subspan(s.offset + skip, take));
    len -= take;
    skip = 0;
    ++i;
  }
}

std::uint64_t content_ref::hash64_range(std::size_t off,
                                        std::size_t len) const {
  content_hasher64 h;
  walk_range(off, len, [&](byte_view v) { h.update(v); });
  return h.finish();
}

bool content_ref::equal(const content_ref& other) const {
  if (size_ != other.size_) return false;
  if (size_ == 0) return true;
  if (segs_ == other.segs_) return true;
  // Zipped walk over both segment lists; identical (chunk, offset) runs are
  // equal without touching bytes.
  std::size_t ia = 0, ib = 0, oa = 0, ob = 0, left = size_;
  while (left > 0) {
    const rope_segment& a = (*segs_)[ia];
    const rope_segment& b = (*other.segs_)[ib];
    const std::size_t take =
        std::min({a.length - oa, b.length - ob, left});
    if (a.chunk != b.chunk || a.offset + oa != b.offset + ob) {
      if (std::memcmp(a.chunk->bytes().data() + a.offset + oa,
                      b.chunk->bytes().data() + b.offset + ob, take) != 0) {
        return false;
      }
    }
    left -= take;
    oa += take;
    ob += take;
    if (oa == a.length) {
      ++ia;
      oa = 0;
    }
    if (ob == b.length) {
      ++ib;
      ob = 0;
    }
  }
  return true;
}

bool content_ref::equal(byte_view other) const {
  if (size_ != other.size()) return false;
  if (size_ == 0) return true;
  std::size_t pos = 0;
  for (const rope_segment& s : *segs_) {
    if (std::memcmp(s.chunk->bytes().data() + s.offset, other.data() + pos,
                    s.length) != 0) {
      return false;
    }
    pos += s.length;
  }
  return true;
}

void content_ref::builder::push(const rope_segment& seg) {
  if (seg.length == 0) return;
  if (!segs_.empty()) {
    rope_segment& last = segs_.back();
    if (last.chunk == seg.chunk && last.offset + last.length == seg.offset) {
      last.length += seg.length;
      size_ += seg.length;
      return;
    }
  }
  segs_.push_back(seg);
  size_ += seg.length;
}

void content_ref::builder::append(const content_ref& ref, std::size_t off,
                                  std::size_t len) {
  if (off + len > ref.size() || off + len < off) {
    throw std::out_of_range("content_ref::builder: range beyond end");
  }
  if (len == 0) return;
  std::size_t i = ref.locate(off);
  std::size_t skip = off - (*ref.starts_)[i];
  while (len > 0) {
    const rope_segment& s = (*ref.segs_)[i];
    const std::size_t take = std::min(s.length - skip, len);
    push({s.chunk, s.offset + skip, take});
    len -= take;
    skip = 0;
    ++i;
  }
}

void content_ref::builder::append_bytes(byte_view data) {
  if (data.empty()) return;
  const content_ref fresh = content_ref::from_bytes(data);
  for (const rope_segment& s : *fresh.segs_) push(s);
}

content_ref content_ref::builder::build() {
  content_ref out = from_segments(std::move(segs_));
  segs_ = {};
  size_ = 0;
  return out;
}

std::string to_string(const content_ref& r) {
  std::string out;
  out.reserve(r.size());
  r.walk([&](byte_view v) {
    out.append(reinterpret_cast<const char*>(v.data()), v.size());
  });
  return out;
}

}  // namespace cloudsync
