// content_ref: an immutable byte sequence represented as a rope of shared
// chunk handles.
//
// Copying a content_ref copies two shared_ptrs — never bytes. substr/patched/
// appended build a new segment list that structurally shares every untouched
// chunk with the source, so version histories, shadows, and duplicate files
// cost O(changed bytes), not O(file size). Positioning is a binary search
// over cumulative segment offsets (O(log segments)); sequential access walks
// segments in place.
//
// Flat-mode behaviour (content_store::mode() == flat): construction adopts a
// private copy and every mutating operation (patched/appended/retain) deep-
// copies, reproducing the old one-flat-buffer-per-layer memory model for
// rope-vs-flat benchmarking. substr and walk never copy in either mode.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/content_store.hpp"
#include "util/bytes.hpp"

namespace cloudsync {

/// One run of a rope: `length` bytes starting at `offset` inside `chunk`.
struct rope_segment {
  chunk_handle chunk;
  std::size_t offset = 0;
  std::size_t length = 0;
};

class content_ref {
 public:
  /// Empty sequence.
  content_ref() = default;

  /// Intern `data` in kInternChunkBytes pieces (CoW) or adopt a private copy
  /// (flat). Equal inputs alias the same chunks in CoW mode.
  static content_ref from_bytes(byte_view data);
  /// Same, but may take ownership of the buffer (flat mode adopts it without
  /// copying; CoW mode interns and releases it).
  static content_ref from_buffer(byte_buffer&& data);
  /// A `size`-byte sequence materialized by `fill` on first read (one private
  /// chunk). CoW mode only — callers gate on content_store mode and build the
  /// content eagerly in flat mode.
  static content_ref lazy(std::size_t size, std::function<byte_buffer()> fill);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Byte at `off` (bounds-checked; materializes the covering chunk).
  std::uint8_t at(std::size_t off) const;

  /// Shared sub-sequence [off, off+len). Never copies bytes.
  content_ref substr(std::size_t off, std::size_t len) const;

  /// Copy-on-write overwrite of [off, off+data.size()): shares every chunk
  /// outside the patched range. Throws std::out_of_range past the end.
  content_ref patched(std::size_t off, byte_view data) const;

  /// Copy-on-write append.
  content_ref appended(byte_view data) const;

  /// The reference a layer stores when the old code made its own byte copy:
  /// CoW mode aliases (*this, free), flat mode deep-copies — keeping the
  /// flat benchmark leg honest about per-layer duplication.
  content_ref retain() const;

  /// Contiguous copy of the whole sequence.
  byte_buffer flatten() const;

  /// Visit the bytes of [off, off+len) as zero-copy views, in order.
  void walk_range(std::size_t off, std::size_t len,
                  const std::function<void(byte_view)>& fn) const;
  void walk(const std::function<void(byte_view)>& fn) const {
    walk_range(0, size_, fn);
  }

  /// Exactly content_hash64(flatten()) / of the sub-range, computed by
  /// streaming over segments without flattening.
  std::uint64_t hash64() const { return hash64_range(0, size_); }
  std::uint64_t hash64_range(std::size_t off, std::size_t len) const;

  /// Byte equality (fast paths: shared root, aligned shared chunks).
  bool equal(const content_ref& other) const;
  bool equal(byte_view other) const;

  std::size_t segment_count() const { return segs_ ? segs_->size() : 0; }

  /// Incremental rope assembly: append whole refs, sub-ranges of refs, or
  /// fresh literal bytes; adjacent runs of the same chunk are merged. Used by
  /// delta application to build a new version that shares the old one's
  /// chunks.
  class builder {
   public:
    void append(const content_ref& ref) {
      append(ref, 0, ref.size());
    }
    void append(const content_ref& ref, std::size_t off, std::size_t len);
    void append_bytes(byte_view data);
    std::size_t size() const { return size_; }
    content_ref build();

   private:
    void push(const rope_segment& seg);
    std::vector<rope_segment> segs_;
    std::size_t size_ = 0;
  };

 private:
  using segment_list = std::vector<rope_segment>;
  content_ref(std::shared_ptr<const segment_list> segs, std::size_t size);
  static content_ref from_segments(segment_list segs);

  /// Index of the segment containing `off` (binary search over starts_).
  std::size_t locate(std::size_t off) const;

  std::shared_ptr<const segment_list> segs_;
  /// starts_[i] = logical offset of segment i; same length as *segs_.
  std::shared_ptr<const std::vector<std::size_t>> starts_;
  std::size_t size_ = 0;
};

inline bool operator==(const content_ref& a, const content_ref& b) {
  return a.equal(b);
}
inline bool operator==(const content_ref& a, byte_view b) {
  return a.equal(b);
}
inline bool operator==(byte_view a, const content_ref& b) {
  return b.equal(a);
}

/// Copy a ref's bytes into a std::string (test assertions).
std::string to_string(const content_ref& r);

}  // namespace cloudsync
