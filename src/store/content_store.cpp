#include "store/content_store.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/content_cache.hpp"

namespace cloudsync {

content_store& content_store::global() {
  static content_store store;
  return store;
}

store_chunk::~store_chunk() {
  if (owner_ != nullptr) owner_->on_chunk_destroyed(*this);
  alive_ = 0;
#ifndef NDEBUG
  // Poison freed content so a dangling byte_view into a detached chunk reads
  // deterministic garbage (and trips asan's heap-use-after-free cleanly).
  std::memset(data_.data(), 0xDD, data_.size());
#endif
}

byte_view store_chunk::bytes() const {
  assert(alive_ == kAliveMagic &&
         "store_chunk read after its last handle dropped (use-after-detach)");
  // `filled_` is the only cross-thread fast-path guard; `fill_` is touched
  // solely inside the call_once region, so concurrent readers of a shared
  // lazy chunk never race on the generator slot.
  if (!filled_.load(std::memory_order_acquire)) {
    std::call_once(once_, [this] {
      byte_buffer b = fill_();
      if (b.size() != size_) {
        throw std::logic_error("store_chunk: lazy fill produced wrong size");
      }
      data_ = std::move(b);
      fill_ = nullptr;
      if (owner_ != nullptr) owner_->note_materialized(size_);
      filled_.store(true, std::memory_order_release);
    });
  }
  return byte_view{data_};
}

bool store_chunk::materialized() const {
  return filled_.load(std::memory_order_acquire);
}

chunk_handle content_store::finish_chunk(std::unique_ptr<store_chunk> c) {
  c->owner_ = this;
  // Eager chunks are born materialized; filled_==false implies fill_ is set.
  if (!c->fill_) c->filled_.store(true, std::memory_order_release);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  if (c->materialized()) note_materialized(c->size_);
  return chunk_handle(c.release());
}

void content_store::note_materialized(std::size_t bytes) const {
  const std::uint64_t now =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = peak_live_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_live_bytes_.compare_exchange_weak(peak, now,
                                                 std::memory_order_relaxed)) {
  }
}

void content_store::on_chunk_destroyed(const store_chunk& c) {
  if (c.interned_) {
    shard& s = shard_for(c.hash_);
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, end] = s.entries.equal_range(c.hash_);
    for (; it != end; ++it) {
      if (it->second.raw == &c) {
        s.entries.erase(it);
        break;
      }
    }
    interned_chunks_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (c.materialized()) {
    live_bytes_.fetch_sub(c.size_, std::memory_order_relaxed);
  }
  chunks_.fetch_sub(1, std::memory_order_relaxed);
}

chunk_handle content_store::intern(byte_view data) {
  auto fresh = [&](bool interned, std::uint64_t hash) {
    auto c = std::unique_ptr<store_chunk>(new store_chunk());
    c->data_.assign(data.begin(), data.end());
    c->size_ = data.size();
    c->hash_ = hash;
    c->interned_ = interned;
    return finish_chunk(std::move(c));
  };

  if (mode() == content_mode::flat) return fresh(false, 0);

  const std::uint64_t hash = content_hash64(data);
  shard& s = shard_for(hash);
  // Candidate handles must outlive the lock: releasing the last reference to
  // a chunk runs its destructor, which re-enters this shard's mutex.
  std::vector<chunk_handle> hold;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, end] = s.entries.equal_range(hash);
    for (; it != end; ++it) {
      chunk_handle cand = it->second.weak.lock();
      if (!cand) continue;  // dying concurrently; its destructor will erase it
      if (cand->size() == data.size() &&
          (data.empty() ||
           std::memcmp(cand->bytes().data(), data.data(), data.size()) == 0)) {
        intern_hits_.fetch_add(1, std::memory_order_relaxed);
        return cand;
      }
      hold.push_back(std::move(cand));
    }
    intern_misses_.fetch_add(1, std::memory_order_relaxed);
    chunk_handle made = fresh(true, hash);
    s.entries.emplace(hash, table_entry{made.get(), made});
    interned_chunks_.fetch_add(1, std::memory_order_relaxed);
    return made;
  }
}

chunk_handle content_store::adopt(byte_buffer&& data) {
  auto c = std::unique_ptr<store_chunk>(new store_chunk());
  c->size_ = data.size();
  c->data_ = std::move(data);
  return finish_chunk(std::move(c));
}

chunk_handle content_store::lazy(std::size_t size,
                                 std::function<byte_buffer()> fill) {
  auto c = std::unique_ptr<store_chunk>(new store_chunk());
  c->size_ = size;
  c->fill_ = std::move(fill);
  return finish_chunk(std::move(c));
}

content_store::stats_snapshot content_store::stats() const {
  stats_snapshot s;
  s.chunks = chunks_.load();
  s.live_bytes = live_bytes_.load();
  s.peak_live_bytes = peak_live_bytes_.load();
  s.interned_chunks = interned_chunks_.load();
  s.intern_hits = intern_hits_.load();
  s.intern_misses = intern_misses_.load();
  return s;
}

void content_store::reset_peak() {
  peak_live_bytes_.store(live_bytes_.load());
}

content_store::table_profile content_store::profile_table() const {
  table_profile p;
  for (std::size_t i = 0; i < kShards; ++i) {
    shard& s = shards_[i];
    std::vector<chunk_handle> hold;  // release handles outside the lock
    {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [hash, entry] : s.entries) {
        chunk_handle c = entry.weak.lock();
        if (!c) continue;
        // use_count includes the handle we just took.
        const std::size_t refs =
            static_cast<std::size_t>(c.use_count()) - 1;
        ++p.refcount_histogram[refs];
        p.unique_bytes += c->size();
        p.logical_bytes += static_cast<std::uint64_t>(c->size()) * refs;
        hold.push_back(std::move(c));
      }
    }
  }
  return p;
}

}  // namespace cloudsync
