// The cloud: RESTful object store + metadata service + dedup index behind
// one façade, with two selectable IDS substrates (paper §4.3 / §7):
//
//   whole-object (default) — files are single objects; a MODIFY goes through
//     the mid-layer as GET + patch + PUT + DELETE (what Dropbox does on S3).
//   chunk store  — Cumulus-style manifests over reference-counted chunk
//     objects; a MODIFY PUTs only the new chunks.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "chunking/rsync.hpp"
#include "dedup/dedup_engine.hpp"
#include "storage/chunk_backend.hpp"
#include "storage/metadata_service.hpp"
#include "storage/object_store.hpp"

namespace cloudsync {

class fault_injector;

/// Server-issued handle for a resumable upload session (0 is never issued).
using resume_token = std::uint64_t;

/// What the server remembers about an upload session — exactly what a
/// restarted client learns from one metadata round trip before resuming.
struct upload_session_status {
  std::uint32_t total_chunks = 0;
  std::uint32_t acked_chunks = 0;   ///< contiguous prefix the server holds
  std::uint32_t acked_total = 0;    ///< acked chunks incl. out-of-order holes
  std::uint64_t acked_bytes = 0;    ///< wire bytes already paid for
  std::uint64_t payload_bytes = 0;  ///< declared size of the full payload
};

struct cloud_config {
  dedup_policy dedup = dedup_policy::disabled();
  /// Select the Cumulus-style chunk-store substrate instead of whole-file
  /// objects. Note: the chunk store garbage-collects superseded versions
  /// (reference counting), while the whole-object store retains full version
  /// history for rollback.
  bool use_chunk_store = false;
  std::size_t chunk_store_chunk_size = 512 * 1024;
  /// Optional (non-owning) fingerprint memo for the dedup engine; cached
  /// fingerprints are identical to recomputation, this only saves CPU.
  fingerprint_memo* fingerprint_cache = nullptr;
};

class cloud {
 public:
  explicit cloud(cloud_config cfg = {});

  /// Register a client device for notification fan-out.
  device_id attach_device(user_id user) { return meta_.register_device(user); }

  /// Attach (or detach) a fault injector: commits, deltas, and deletes may
  /// then be rejected with a thrown `transient_fault` (transient server
  /// error / throttle) *before* any state changes, so a retried operation
  /// observes exactly the state the failed attempt saw. Also forwarded to
  /// the metadata service (throttled notification polls).
  void set_fault_injector(fault_injector* faults);

  /// Full-file commit: replaces (or creates) `path` with `content`.
  /// `stored_size` is the representation size the client shipped (compressed
  /// payload or deduplicated remainder) — kept for accounting. The stored
  /// version shares the caller's chunks (CoW).
  void put_file(user_id user, device_id source, const std::string& path,
                const content_ref& content, std::uint64_t stored_size,
                sim_time now);
  void put_file(user_id user, device_id source, const std::string& path,
                byte_buffer content, std::uint64_t stored_size, sim_time now) {
    put_file(user, source, path, content_ref::from_buffer(std::move(content)),
             stored_size, now);
  }

  /// IDS commit. Whole-object substrate: GET the old object, patch, PUT the
  /// new version, DELETE the old one. Chunk substrate: PUT new chunks and
  /// rewrite the manifest. Throws if the file does not exist in the cloud.
  void apply_file_delta(user_id user, device_id source,
                        const std::string& path, const file_delta& delta,
                        sim_time now);

  /// Fake deletion (attribute flip; content retained). Returns false if the
  /// path is unknown or already deleted.
  bool delete_file(user_id user, device_id source, const std::string& path,
                   sim_time now);

  // ── Resumable upload sessions ────────────────────────────────────────────
  // Ranged/chunked uploads with server-side progress, so a restarted client
  // pays only the un-acked suffix plus one metadata round trip (the paper's
  // §5 restart waste, avoided). A session tracks the contiguous prefix of
  // wire chunks it has acked; finalizing performs the ordinary commit
  // (put/delta/delete semantics unchanged) and retires the session. Every
  // session entry point is subject to the same transient server faults as
  // direct commits, checked before any state changes.

  /// Open a session for `total_chunks` chunks totalling `payload_bytes`.
  /// Returns the token the client journals for crash recovery.
  resume_token begin_upload_session(user_id user, const std::string& path,
                                    std::uint32_t total_chunks,
                                    std::uint64_t payload_bytes, sim_time now);

  /// Ack chunk `index` (`bytes` wire bytes) of an open session. Chunks may
  /// arrive in any order (a striped transfer lands them across K parallel
  /// connections); re-acking a chunk or acking past total_chunks throws
  /// std::logic_error (client bug, not a fault).
  void upload_session_chunk(resume_token token, std::uint32_t index,
                            std::uint64_t bytes, sim_time now);

  /// Progress of an open session — the recovery metadata round trip.
  upload_session_status query_upload_session(resume_token token, sim_time now);

  /// Commit the session as a full-file PUT. Requires all chunks acked.
  void finalize_session_put(resume_token token, user_id user, device_id source,
                            const std::string& path, const content_ref& content,
                            std::uint64_t stored_size, sim_time now);
  void finalize_session_put(resume_token token, user_id user, device_id source,
                            const std::string& path, byte_buffer content,
                            std::uint64_t stored_size, sim_time now) {
    finalize_session_put(token, user, source, path,
                         content_ref::from_buffer(std::move(content)),
                         stored_size, now);
  }

  /// Commit the session as an IDS delta. Requires all chunks acked.
  void finalize_session_delta(resume_token token, user_id user,
                              device_id source, const std::string& path,
                              const file_delta& delta, sim_time now);

  /// Retire a session whose side effects were applied elsewhere (BDS batch
  /// exchanges: the payload rode the session, the applies already committed).
  void finalize_session_empty(resume_token token, sim_time now);

  /// Drop a session without committing (recovery discards stale work).
  /// Idempotent; unknown tokens are ignored. Never faults — modelled as a
  /// local forget on the server (sessions expire server-side in reality).
  void abandon_upload_session(resume_token token);

  /// Open (un-finalized) sessions — the invariant checker requires zero
  /// after quiescence.
  std::size_t open_session_count() const { return sessions_.size(); }

  /// Whether `token` still names an open session (recovery checks before
  /// paying the query round trip; sessions here never expire on their own).
  bool session_open(resume_token token) const {
    return sessions_.count(token) != 0;
  }

  /// Canonical (uncompressed) content of the current version, if live.
  /// Whole-object substrate: a handle aliasing the stored version. Chunk
  /// substrate: a rope assembled over the stored chunks. Either way no bytes
  /// are copied, and the handle stays valid across later commits (it pins
  /// the chunks it references) — the old byte_view accessor could dangle.
  std::optional<content_ref> file_content(user_id user,
                                          const std::string& path) const;

  const file_manifest* manifest(user_id user, const std::string& path) const {
    return meta_.lookup(user, path);
  }

  dedup_engine& dedup() { return dedup_; }
  const dedup_engine& dedup() const { return dedup_; }
  metadata_service& metadata() { return meta_; }
  const metadata_service& metadata() const { return meta_; }
  const object_store& store() const { return store_; }
  object_store& store() { return store_; }
  bool uses_chunk_store() const { return chunks_ != nullptr; }
  const chunk_backend* chunk_store() const { return chunks_.get(); }

 private:
  struct upload_session {
    user_id user = 0;
    std::string path;
    upload_session_status status;
    /// Per-chunk ack bits (lazily sized): striped transfers land chunks out
    /// of order, so the server tracks exactly which indices it holds.
    std::vector<std::uint8_t> acked;
  };

  std::string object_key(user_id user, const std::string& path,
                         std::uint64_t version) const;
  /// Throws transient_fault when the injector decides this server operation
  /// fails; called at the top of every mutating entry point.
  void check_server_fault(sim_time now);
  upload_session& must_session(resume_token token);
  /// Validate all chunks acked, then retire the session.
  void close_session(resume_token token);
  // Commit bodies shared by the direct entry points (which fault-check first)
  // and the session finalizers (which fault-check before closing the
  // session, then must not fail). `session_chunks` > 0 means the content
  // arrived through an upload session in that many ranges: on the chunk
  // substrate the server persists each received range as its own chunk
  // object (put_ranges) instead of re-buffering the payload and re-splitting
  // it at the backend's fixed granularity.
  void put_file_unchecked(user_id user, device_id source,
                          const std::string& path, const content_ref& content,
                          std::uint64_t stored_size, sim_time now,
                          std::uint32_t session_chunks = 0);
  void apply_file_delta_unchecked(user_id user, device_id source,
                                  const std::string& path,
                                  const file_delta& delta, sim_time now);

  object_store store_;
  metadata_service meta_;
  dedup_engine dedup_;
  std::unique_ptr<chunk_backend> chunks_;  ///< null = whole-object substrate
  fault_injector* faults_ = nullptr;       ///< non-owning
  std::map<resume_token, upload_session> sessions_;
  resume_token next_token_ = 1;
};

}  // namespace cloudsync
