// The cloud: RESTful object store + metadata service + dedup index behind
// one façade, with two selectable IDS substrates (paper §4.3 / §7):
//
//   whole-object (default) — files are single objects; a MODIFY goes through
//     the mid-layer as GET + patch + PUT + DELETE (what Dropbox does on S3).
//   chunk store  — Cumulus-style manifests over reference-counted chunk
//     objects; a MODIFY PUTs only the new chunks.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "chunking/rsync.hpp"
#include "dedup/dedup_engine.hpp"
#include "storage/chunk_backend.hpp"
#include "storage/metadata_service.hpp"
#include "storage/object_store.hpp"

namespace cloudsync {

class fault_injector;

struct cloud_config {
  dedup_policy dedup = dedup_policy::disabled();
  /// Select the Cumulus-style chunk-store substrate instead of whole-file
  /// objects. Note: the chunk store garbage-collects superseded versions
  /// (reference counting), while the whole-object store retains full version
  /// history for rollback.
  bool use_chunk_store = false;
  std::size_t chunk_store_chunk_size = 512 * 1024;
  /// Optional (non-owning) fingerprint memo for the dedup engine; cached
  /// fingerprints are identical to recomputation, this only saves CPU.
  fingerprint_memo* fingerprint_cache = nullptr;
};

class cloud {
 public:
  explicit cloud(cloud_config cfg = {});

  /// Register a client device for notification fan-out.
  device_id attach_device(user_id user) { return meta_.register_device(user); }

  /// Attach (or detach) a fault injector: commits, deltas, and deletes may
  /// then be rejected with a thrown `transient_fault` (transient server
  /// error / throttle) *before* any state changes, so a retried operation
  /// observes exactly the state the failed attempt saw. Also forwarded to
  /// the metadata service (throttled notification polls).
  void set_fault_injector(fault_injector* faults);

  /// Full-file commit: replaces (or creates) `path` with `content`.
  /// `stored_size` is the representation size the client shipped (compressed
  /// payload or deduplicated remainder) — kept for accounting.
  void put_file(user_id user, device_id source, const std::string& path,
                byte_buffer content, std::uint64_t stored_size, sim_time now);

  /// IDS commit. Whole-object substrate: GET the old object, patch, PUT the
  /// new version, DELETE the old one. Chunk substrate: PUT new chunks and
  /// rewrite the manifest. Throws if the file does not exist in the cloud.
  void apply_file_delta(user_id user, device_id source,
                        const std::string& path, const file_delta& delta,
                        sim_time now);

  /// Fake deletion (attribute flip; content retained). Returns false if the
  /// path is unknown or already deleted.
  bool delete_file(user_id user, device_id source, const std::string& path,
                   sim_time now);

  /// Canonical (uncompressed) content of the current version, if live.
  std::optional<byte_buffer> file_content(user_id user,
                                          const std::string& path) const;

  /// Zero-copy view of the current version's content when the substrate
  /// keeps whole objects; nullopt when the file is absent/deleted or the
  /// chunk substrate is active (materialize via file_content() instead).
  /// The view is invalidated by the next commit to the same path.
  std::optional<byte_view> file_content_view(user_id user,
                                             const std::string& path) const;

  const file_manifest* manifest(user_id user, const std::string& path) const {
    return meta_.lookup(user, path);
  }

  dedup_engine& dedup() { return dedup_; }
  const dedup_engine& dedup() const { return dedup_; }
  metadata_service& metadata() { return meta_; }
  const object_store& store() const { return store_; }
  object_store& store() { return store_; }
  bool uses_chunk_store() const { return chunks_ != nullptr; }
  const chunk_backend* chunk_store() const { return chunks_.get(); }

 private:
  std::string object_key(user_id user, const std::string& path,
                         std::uint64_t version) const;
  /// Throws transient_fault when the injector decides this server operation
  /// fails; called at the top of every mutating entry point.
  void check_server_fault(sim_time now);

  object_store store_;
  metadata_service meta_;
  dedup_engine dedup_;
  std::unique_ptr<chunk_backend> chunks_;  ///< null = whole-object substrate
  fault_injector* faults_ = nullptr;       ///< non-owning
};

}  // namespace cloudsync
