#include "storage/cloud.hpp"

#include <stdexcept>

#include "net/fault_injector.hpp"

namespace cloudsync {

cloud::cloud(cloud_config cfg) : dedup_(cfg.dedup, cfg.fingerprint_cache) {
  if (cfg.use_chunk_store) {
    chunks_ =
        std::make_unique<chunk_backend>(store_, cfg.chunk_store_chunk_size);
  }
}

void cloud::set_fault_injector(fault_injector* faults) {
  faults_ = faults;
  meta_.set_fault_injector(faults);
}

void cloud::check_server_fault(sim_time now) {
  if (faults_ == nullptr || !faults_->enabled()) return;
  if (const auto kind = faults_->sample_server_fault()) {
    const sim_time hint = *kind == fault_kind::server_throttle
                              ? now + faults_->throttle_retry_after()
                              : sim_time{};
    throw transient_fault(*kind, now, hint);
  }
}

std::string cloud::object_key(user_id user, const std::string& path,
                              std::uint64_t version) const {
  return "u" + std::to_string(user) + "/" + path + "/v" +
         std::to_string(version);
}

void cloud::put_file(user_id user, device_id source, const std::string& path,
                     byte_buffer content, std::uint64_t stored_size,
                     sim_time now) {
  check_server_fault(now);
  const file_manifest* old = meta_.lookup(user, path);
  const std::uint64_t version = old ? old->version + 1 : 1;

  file_manifest man;
  man.object_key = object_key(user, path, version);
  man.logical_size = content.size();
  man.stored_size = stored_size;
  man.version = version;
  man.modified_at = now;

  if (chunks_) {
    chunks_->put_full(man.object_key, content);
    if (old && !old->deleted) chunks_->release(old->object_key);
  } else {
    // RESTful update: PUT new version, DELETE superseded object.
    store_.put(man.object_key, std::move(content));
    if (old && !old->deleted) store_.remove(old->object_key);
  }

  meta_.commit(user, source, path, std::move(man));
}

void cloud::apply_file_delta(user_id user, device_id source,
                             const std::string& path, const file_delta& delta,
                             sim_time now) {
  check_server_fault(now);
  const file_manifest* old = meta_.lookup(user, path);
  if (old == nullptr || old->deleted) {
    throw std::runtime_error("cloud: delta for unknown file: " + path);
  }

  file_manifest man;
  man.version = old->version + 1;
  man.object_key = object_key(user, path, man.version);
  man.logical_size = delta.new_file_size;
  man.stored_size = delta.literal_bytes();
  man.modified_at = now;

  if (chunks_) {
    // Chunk substrate: new chunks + manifest rewrite; no whole-file GET.
    chunks_->apply_delta(old->object_key, man.object_key, delta);
    chunks_->release(old->object_key);
  } else {
    // Mid-layer transformation of MODIFY: GET + patch + PUT + DELETE.
    const auto old_content = store_.get(old->object_key);
    if (!old_content) {
      throw std::runtime_error("cloud: backing object missing: " + path);
    }
    byte_buffer next = apply_delta(*old_content, delta);
    store_.put(man.object_key, std::move(next));
    store_.remove(old->object_key);
  }

  meta_.commit(user, source, path, std::move(man));
}

bool cloud::delete_file(user_id user, device_id source,
                        const std::string& path, sim_time now) {
  check_server_fault(now);
  const file_manifest* man = meta_.lookup(user, path);
  if (man == nullptr || man->deleted) return false;
  // Attribute change only: the object remains for rollback (§4.2).
  return meta_.mark_deleted(user, source, path, now);
}

std::optional<byte_buffer> cloud::file_content(user_id user,
                                               const std::string& path) const {
  const file_manifest* man = meta_.lookup(user, path);
  if (man == nullptr || man->deleted) return std::nullopt;
  if (chunks_) {
    return chunks_->materialize(man->object_key);
  }
  const auto view = store_.get(man->object_key);
  if (!view) return std::nullopt;
  return byte_buffer(view->begin(), view->end());
}

std::optional<byte_view> cloud::file_content_view(
    user_id user, const std::string& path) const {
  if (chunks_) return std::nullopt;  // manifests need materialization
  const file_manifest* man = meta_.lookup(user, path);
  if (man == nullptr || man->deleted) return std::nullopt;
  return store_.get(man->object_key);
}

}  // namespace cloudsync
