#include "storage/cloud.hpp"

#include <stdexcept>

#include "net/fault_injector.hpp"

namespace cloudsync {

namespace {

/// Near-equal split of `size` content bytes into `chunks` ranges. Session
/// chunk boundaries live in compressed wire space, so they cannot be mapped
/// onto the decoded content exactly; the even split models the server
/// persisting each received range without re-buffering. Returns empty (the
/// caller falls back to put_full) when there was no session or the content
/// is too small to give every range at least one byte.
std::vector<std::uint64_t> session_ranges(std::uint64_t size,
                                          std::uint32_t chunks) {
  if (chunks == 0 || size < chunks) return {};
  std::vector<std::uint64_t> ranges(chunks, size / chunks);
  for (std::uint64_t i = 0; i < size % chunks; ++i) ++ranges[i];
  return ranges;
}

}  // namespace

cloud::cloud(cloud_config cfg) : dedup_(cfg.dedup, cfg.fingerprint_cache) {
  if (cfg.use_chunk_store) {
    chunks_ =
        std::make_unique<chunk_backend>(store_, cfg.chunk_store_chunk_size);
  }
}

void cloud::set_fault_injector(fault_injector* faults) {
  faults_ = faults;
  meta_.set_fault_injector(faults);
}

void cloud::check_server_fault(sim_time now) {
  if (faults_ == nullptr || !faults_->enabled()) return;
  if (const auto kind = faults_->sample_server_fault()) {
    const sim_time hint = *kind == fault_kind::server_throttle
                              ? now + faults_->throttle_retry_after()
                              : sim_time{};
    throw transient_fault(*kind, now, hint);
  }
}

std::string cloud::object_key(user_id user, const std::string& path,
                              std::uint64_t version) const {
  return "u" + std::to_string(user) + "/" + path + "/v" +
         std::to_string(version);
}

void cloud::put_file(user_id user, device_id source, const std::string& path,
                     const content_ref& content, std::uint64_t stored_size,
                     sim_time now) {
  check_server_fault(now);
  put_file_unchecked(user, source, path, content, stored_size, now);
}

void cloud::put_file_unchecked(user_id user, device_id source,
                               const std::string& path,
                               const content_ref& content,
                               std::uint64_t stored_size, sim_time now,
                               std::uint32_t session_chunks) {
  const file_manifest* old = meta_.lookup(user, path);
  const std::uint64_t version = old ? old->version + 1 : 1;

  file_manifest man;
  man.object_key = object_key(user, path, version);
  man.logical_size = content.size();
  man.stored_size = stored_size;
  man.version = version;
  man.modified_at = now;

  if (chunks_) {
    const auto ranges = session_ranges(content.size(), session_chunks);
    if (!ranges.empty()) {
      chunks_->put_ranges(man.object_key, content, ranges);
    } else {
      chunks_->put_full(man.object_key, content);
    }
    if (old && !old->deleted) chunks_->release(old->object_key);
  } else {
    // RESTful update: PUT new version, DELETE superseded object.
    store_.put(man.object_key, content);
    if (old && !old->deleted) store_.remove(old->object_key);
  }

  meta_.commit(user, source, path, std::move(man));
}

void cloud::apply_file_delta(user_id user, device_id source,
                             const std::string& path, const file_delta& delta,
                             sim_time now) {
  check_server_fault(now);
  apply_file_delta_unchecked(user, source, path, delta, now);
}

void cloud::apply_file_delta_unchecked(user_id user, device_id source,
                                       const std::string& path,
                                       const file_delta& delta, sim_time now) {
  const file_manifest* old = meta_.lookup(user, path);
  if (old == nullptr || old->deleted) {
    throw std::runtime_error("cloud: delta for unknown file: " + path);
  }

  file_manifest man;
  man.version = old->version + 1;
  man.object_key = object_key(user, path, man.version);
  man.logical_size = delta.new_file_size;
  man.stored_size = delta.literal_bytes();
  man.modified_at = now;

  if (chunks_) {
    // Chunk substrate: new chunks + manifest rewrite; no whole-file GET.
    chunks_->apply_delta(old->object_key, man.object_key, delta);
    chunks_->release(old->object_key);
  } else {
    // Mid-layer transformation of MODIFY: GET + patch + PUT + DELETE. The
    // patched version shares every unchanged block with its predecessor, so
    // the retained history costs O(changed bytes) per version.
    const auto old_content = store_.get(old->object_key);
    if (!old_content) {
      throw std::runtime_error("cloud: backing object missing: " + path);
    }
    store_.put(man.object_key, apply_delta_ref(*old_content, delta));
    store_.remove(old->object_key);
  }

  meta_.commit(user, source, path, std::move(man));
}

bool cloud::delete_file(user_id user, device_id source,
                        const std::string& path, sim_time now) {
  check_server_fault(now);
  const file_manifest* man = meta_.lookup(user, path);
  if (man == nullptr || man->deleted) return false;
  // Attribute change only: the object remains for rollback (§4.2).
  return meta_.mark_deleted(user, source, path, now);
}

resume_token cloud::begin_upload_session(user_id user, const std::string& path,
                                         std::uint32_t total_chunks,
                                         std::uint64_t payload_bytes,
                                         sim_time now) {
  check_server_fault(now);
  const resume_token token = next_token_++;
  upload_session s;
  s.user = user;
  s.path = path;
  s.status.total_chunks = total_chunks;
  s.status.payload_bytes = payload_bytes;
  sessions_.emplace(token, std::move(s));
  return token;
}

cloud::upload_session& cloud::must_session(resume_token token) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    throw std::logic_error("cloud: unknown upload session");
  }
  return it->second;
}

void cloud::upload_session_chunk(resume_token token, std::uint32_t index,
                                 std::uint64_t bytes, sim_time now) {
  check_server_fault(now);
  auto& s = must_session(token);
  if (index >= s.status.total_chunks) {
    throw std::logic_error("cloud: session chunk out of range");
  }
  if (s.acked.empty()) s.acked.assign(s.status.total_chunks, 0);
  if (s.acked[index] != 0) {
    throw std::logic_error("cloud: duplicate session chunk");
  }
  s.acked[index] = 1;
  ++s.status.acked_total;
  s.status.acked_bytes += bytes;
  while (s.status.acked_chunks < s.status.total_chunks &&
         s.acked[s.status.acked_chunks] != 0) {
    ++s.status.acked_chunks;
  }
}

upload_session_status cloud::query_upload_session(resume_token token,
                                                  sim_time now) {
  check_server_fault(now);
  return must_session(token).status;
}

void cloud::close_session(resume_token token) {
  const auto& s = must_session(token);
  if (s.status.acked_total != s.status.total_chunks) {
    throw std::logic_error("cloud: finalize with un-acked chunks");
  }
  sessions_.erase(token);
}

void cloud::finalize_session_put(resume_token token, user_id user,
                                 device_id source, const std::string& path,
                                 const content_ref& content,
                                 std::uint64_t stored_size, sim_time now) {
  // Fault-check before closing the session: a rejected finalize leaves the
  // session (and its acked chunks) intact for the retry.
  check_server_fault(now);
  const std::uint32_t session_chunks = must_session(token).status.total_chunks;
  close_session(token);
  put_file_unchecked(user, source, path, content, stored_size, now,
                     session_chunks);
}

void cloud::finalize_session_delta(resume_token token, user_id user,
                                   device_id source, const std::string& path,
                                   const file_delta& delta, sim_time now) {
  check_server_fault(now);
  close_session(token);
  apply_file_delta_unchecked(user, source, path, delta, now);
}

void cloud::finalize_session_empty(resume_token token, sim_time now) {
  check_server_fault(now);
  close_session(token);
}

void cloud::abandon_upload_session(resume_token token) {
  sessions_.erase(token);
}

std::optional<content_ref> cloud::file_content(user_id user,
                                               const std::string& path) const {
  const file_manifest* man = meta_.lookup(user, path);
  if (man == nullptr || man->deleted) return std::nullopt;
  if (chunks_) {
    return chunks_->materialize(man->object_key);
  }
  return store_.get(man->object_key);
}

}  // namespace cloudsync
