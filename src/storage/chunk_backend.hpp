// Chunk-store backend: the alternative IDS substrate from the paper's §4.3
// footnote (Cumulus-style) — every file is a manifest of extents over
// immutable, reference-counted chunk objects. A MODIFY then PUTs only the
// new chunks and rewrites the manifest, instead of GET+PUT+DELETE on a
// whole-file object.
//
// This is what makes the §7 "logical interfaces of the storage
// infrastructure" tradeoff measurable: compare object_store backend op/byte
// counts under the two IDS substrates.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "chunking/rsync.hpp"
#include "storage/object_store.hpp"

namespace cloudsync {

struct chunk_extent {
  std::string object_key;  ///< backing chunk object
  std::uint64_t offset = 0;  ///< range within that object
  std::uint64_t length = 0;
};

struct chunk_manifest {
  std::vector<chunk_extent> extents;
  std::uint64_t logical_size = 0;
};

class chunk_backend {
 public:
  /// `chunk_size` is the split granularity for fresh content. Chunks are
  /// stored in (and counted against) the given object store.
  chunk_backend(object_store& store, std::size_t chunk_size);

  /// Store `content` under a new manifest, split into fixed-size chunks.
  /// Chunk objects are substrings of the caller's rope — no byte copies; a
  /// dedup-held chunk and the file it came from alias the same store chunks.
  void put_full(const std::string& manifest_key, const content_ref& content);
  void put_full(const std::string& manifest_key, byte_view content) {
    put_full(manifest_key, content_ref::from_bytes(content));
  }

  /// Store `content` split at caller-chosen range boundaries instead of this
  /// backend's fixed granularity — the ranged-upload entry point: a resumed
  /// session lands its remaining ranges as chunk objects without re-splitting
  /// the prefix it already shipped. `range_bytes` must sum to content.size().
  void put_ranges(const std::string& manifest_key, const content_ref& content,
                  const std::vector<std::uint64_t>& range_bytes);
  void put_ranges(const std::string& manifest_key, byte_view content,
                  const std::vector<std::uint64_t>& range_bytes) {
    put_ranges(manifest_key, content_ref::from_bytes(content), range_bytes);
  }

  /// Create `new_key`'s manifest by applying an rsync delta against
  /// `old_key`'s: copy ops become extent references into the old version's
  /// chunks (no data movement), literal ops become fresh chunk objects.
  /// Throws std::runtime_error if old_key is unknown or the delta is
  /// inconsistent with it.
  void apply_delta(const std::string& old_key, const std::string& new_key,
                   const file_delta& delta);

  /// Reassemble the full content of a manifest (charges backend reads). The
  /// result shares the stored chunks — assembly moves handles, not bytes.
  content_ref materialize(const std::string& manifest_key) const;

  /// Drop a manifest; chunks reaching zero references are deleted from the
  /// object store. Unknown keys are a no-op.
  void release(const std::string& manifest_key);

  const chunk_manifest* find(const std::string& manifest_key) const;

  std::size_t chunk_size() const { return chunk_size_; }
  /// Number of live (referenced) chunk objects.
  std::size_t live_chunks() const { return refs_.size(); }
  /// Number of stored manifests (the sharded server's occupancy gauge).
  std::size_t manifest_count() const { return manifests_.size(); }

 private:
  std::string store_chunk(const content_ref& data);
  void append_old_range(chunk_manifest& out, const chunk_manifest& old,
                        std::uint64_t offset, std::uint64_t length);
  void ref_extents(const chunk_manifest& m);

  object_store& store_;
  std::size_t chunk_size_;
  std::unordered_map<std::string, chunk_manifest> manifests_;
  std::unordered_map<std::string, std::uint64_t> refs_;
  std::uint64_t next_chunk_id_ = 0;
};

}  // namespace cloudsync
