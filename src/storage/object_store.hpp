// RESTful object store: the cloud-side substrate (paper §4.3's "Amazon S3 /
// Azure / Swift" layer). Deliberately supports only full-object operations —
// PUT, GET, DELETE, HEAD, LIST — which is exactly the constraint that makes
// incremental sync require a mid-layer.
//
// DELETE is a "fake deletion" (paper §4.2): the object is tombstoned and its
// versions retained for rollback, so deletions cost only metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/content_ref.hpp"
#include "util/bytes.hpp"
#include "util/sorted_cache.hpp"
#include "util/string_key.hpp"

namespace cloudsync {

/// Counters for backend operations — the cloud-internal cost of the IDS
/// mid-layer (§7's tradeoff discussion).
struct backend_op_stats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t heads = 0;
  std::uint64_t lists = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  /// Gauge: logical bytes across every retained version (live, historical,
  /// and tombstoned) — the §4.2 fake-deletion footprint that bytes_written
  /// alone hides. Maintained incrementally; shrinks only on compact_history.
  std::uint64_t retained_bytes = 0;
  /// Gauge: logical bytes of latest, non-tombstoned versions only.
  std::uint64_t live_bytes = 0;

  std::uint64_t total_ops() const {
    return puts + gets + deletes + heads + lists;
  }
};

class object_store {
 public:
  /// Store a new version under `key` (un-deletes a tombstoned key). The
  /// stored version shares the caller's chunks in CoW mode (retain()).
  void put(const std::string& key, const content_ref& data);
  void put(const std::string& key, byte_buffer data) {
    put(key, content_ref::from_buffer(std::move(data)));
  }

  /// Latest live version, or nullopt if absent/tombstoned. Returns a handle,
  /// not a view: it stays valid however the store mutates afterwards.
  std::optional<content_ref> get(std::string_view key) const;

  /// True if the key exists and is live.
  bool head(std::string_view key) const;

  /// Tombstone the key. Content is retained for version rollback.
  /// Returns false if the key was absent or already deleted.
  bool remove(std::string_view key);

  /// All live keys with the given prefix, sorted (the map is unordered).
  std::vector<std::string> list(std::string_view prefix) const;

  /// Version history (live or not). Index 0 is the oldest.
  std::size_t version_count(std::string_view key) const;
  std::optional<content_ref> get_version(std::string_view key,
                                         std::size_t version) const;

  /// Restore a tombstoned key to its latest retained version.
  bool undelete(std::string_view key);

  /// Drop every retained version except the latest of each key (tombstoned
  /// keys keep their latest for undelete). Chunks only referenced by the
  /// dropped versions are freed by their refcounts. Returns logical bytes
  /// released.
  std::uint64_t compact_history();

  /// Bytes of live (latest, non-tombstoned) objects (recomputed; the stats()
  /// gauge tracks the same quantity incrementally).
  std::uint64_t live_bytes() const;
  /// Bytes including retained history and tombstoned content (recomputed).
  std::uint64_t retained_bytes() const;

  /// Number of known keys (live + tombstoned) — the cheap occupancy gauge
  /// the sharded server's stats snapshot reads.
  std::size_t key_count() const { return objects_.size(); }

  const backend_op_stats& stats() const { return stats_; }
  /// Reset counters; the retained/live gauges describe current contents, so
  /// they are re-derived rather than zeroed.
  void reset_stats() {
    stats_ = {};
    stats_.retained_bytes = retained_bytes();
    stats_.live_bytes = live_bytes();
  }

 private:
  struct record {
    std::vector<content_ref> versions;
    bool deleted = false;
  };

  /// GET/HEAD per stored block dominate replayed traffic; a hash probe with
  /// heterogeneous string_view lookup beats the ordered map's per-level
  /// string compares. list() serves from a generation-keyed sorted snapshot
  /// of the live keys, invalidated by liveness changes (put/remove/undelete).
  std::unordered_map<std::string, record, string_key_hash, string_key_eq>
      objects_;
  sorted_snapshot_cache<std::string> live_keys_;
  mutable backend_op_stats stats_;
};

}  // namespace cloudsync
