// RESTful object store: the cloud-side substrate (paper §4.3's "Amazon S3 /
// Azure / Swift" layer). Deliberately supports only full-object operations —
// PUT, GET, DELETE, HEAD, LIST — which is exactly the constraint that makes
// incremental sync require a mid-layer.
//
// DELETE is a "fake deletion" (paper §4.2): the object is tombstoned and its
// versions retained for rollback, so deletions cost only metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"
#include "util/string_key.hpp"

namespace cloudsync {

/// Counters for backend operations — the cloud-internal cost of the IDS
/// mid-layer (§7's tradeoff discussion).
struct backend_op_stats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t heads = 0;
  std::uint64_t lists = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;

  std::uint64_t total_ops() const {
    return puts + gets + deletes + heads + lists;
  }
};

class object_store {
 public:
  /// Store a new version under `key` (un-deletes a tombstoned key).
  void put(const std::string& key, byte_buffer data);

  /// Latest live version, or nullopt if absent/tombstoned.
  std::optional<byte_view> get(std::string_view key) const;

  /// True if the key exists and is live.
  bool head(std::string_view key) const;

  /// Tombstone the key. Content is retained for version rollback.
  /// Returns false if the key was absent or already deleted.
  bool remove(std::string_view key);

  /// All live keys with the given prefix, sorted (the map is unordered).
  std::vector<std::string> list(std::string_view prefix) const;

  /// Version history (live or not). Index 0 is the oldest.
  std::size_t version_count(std::string_view key) const;
  std::optional<byte_view> get_version(std::string_view key,
                                       std::size_t version) const;

  /// Restore a tombstoned key to its latest retained version.
  bool undelete(std::string_view key);

  /// Bytes of live (latest, non-tombstoned) objects.
  std::uint64_t live_bytes() const;
  /// Bytes including retained history and tombstoned content.
  std::uint64_t retained_bytes() const;

  const backend_op_stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct record {
    std::vector<byte_buffer> versions;
    bool deleted = false;
  };

  /// GET/HEAD per stored block dominate replayed traffic; a hash probe with
  /// heterogeneous string_view lookup beats the ordered map's per-level
  /// string compares. list() filters then sorts.
  std::unordered_map<std::string, record, string_key_hash, string_key_eq>
      objects_;
  mutable backend_op_stats stats_;
};

}  // namespace cloudsync
