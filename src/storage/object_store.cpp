#include "storage/object_store.hpp"

#include <algorithm>

namespace cloudsync {

void object_store::put(const std::string& key, byte_buffer data) {
  ++stats_.puts;
  stats_.bytes_written += data.size();
  record& rec = objects_[key];
  rec.versions.push_back(std::move(data));
  rec.deleted = false;
}

std::optional<byte_view> object_store::get(std::string_view key) const {
  ++stats_.gets;
  const auto it = objects_.find(key);
  if (it == objects_.end() || it->second.deleted ||
      it->second.versions.empty()) {
    return std::nullopt;
  }
  const byte_buffer& latest = it->second.versions.back();
  stats_.bytes_read += latest.size();
  return byte_view{latest};
}

bool object_store::head(std::string_view key) const {
  ++stats_.heads;
  const auto it = objects_.find(key);
  return it != objects_.end() && !it->second.deleted;
}

bool object_store::remove(std::string_view key) {
  ++stats_.deletes;
  const auto it = objects_.find(key);
  if (it == objects_.end() || it->second.deleted) return false;
  it->second.deleted = true;
  return true;
}

std::vector<std::string> object_store::list(std::string_view prefix) const {
  ++stats_.lists;
  std::vector<std::string> out;
  for (const auto& [key, rec] : objects_) {
    if (!rec.deleted && std::string_view{key}.substr(0, prefix.size()) ==
                            prefix) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t object_store::version_count(std::string_view key) const {
  const auto it = objects_.find(key);
  return it == objects_.end() ? 0 : it->second.versions.size();
}

std::optional<byte_view> object_store::get_version(std::string_view key,
                                                   std::size_t version) const {
  const auto it = objects_.find(key);
  if (it == objects_.end() || version >= it->second.versions.size()) {
    return std::nullopt;
  }
  return byte_view{it->second.versions[version]};
}

bool object_store::undelete(std::string_view key) {
  const auto it = objects_.find(key);
  if (it == objects_.end() || !it->second.deleted) return false;
  it->second.deleted = false;
  return true;
}

std::uint64_t object_store::live_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, rec] : objects_) {
    if (!rec.deleted && !rec.versions.empty()) {
      t += rec.versions.back().size();
    }
  }
  return t;
}

std::uint64_t object_store::retained_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, rec] : objects_) {
    for (const byte_buffer& v : rec.versions) t += v.size();
  }
  return t;
}

}  // namespace cloudsync
