#include "storage/object_store.hpp"

#include <algorithm>

namespace cloudsync {

void object_store::put(const std::string& key, const content_ref& data) {
  ++stats_.puts;
  stats_.bytes_written += data.size();
  record& rec = objects_[key];
  if (!rec.deleted && !rec.versions.empty()) {
    stats_.live_bytes -= rec.versions.back().size();
  } else {
    // The key joins the live set (fresh create or un-delete).
    live_keys_.invalidate();
  }
  rec.versions.push_back(data.retain());
  rec.deleted = false;
  stats_.retained_bytes += data.size();
  stats_.live_bytes += data.size();
}

std::optional<content_ref> object_store::get(std::string_view key) const {
  ++stats_.gets;
  const auto it = objects_.find(key);
  if (it == objects_.end() || it->second.deleted ||
      it->second.versions.empty()) {
    return std::nullopt;
  }
  const content_ref& latest = it->second.versions.back();
  stats_.bytes_read += latest.size();
  return latest;
}

bool object_store::head(std::string_view key) const {
  ++stats_.heads;
  const auto it = objects_.find(key);
  return it != objects_.end() && !it->second.deleted;
}

bool object_store::remove(std::string_view key) {
  ++stats_.deletes;
  const auto it = objects_.find(key);
  if (it == objects_.end() || it->second.deleted) return false;
  it->second.deleted = true;
  live_keys_.invalidate();
  if (!it->second.versions.empty()) {
    stats_.live_bytes -= it->second.versions.back().size();
  }
  return true;
}

std::vector<std::string> object_store::list(std::string_view prefix) const {
  ++stats_.lists;
  const std::vector<std::string>& live =
      live_keys_.get([this](std::vector<std::string>& out) {
        out.reserve(objects_.size());
        for (const auto& [key, rec] : objects_) {
          if (!rec.deleted) out.push_back(key);
        }
      });
  // The snapshot is sorted, so the prefix's matches are one contiguous run.
  auto first = std::lower_bound(live.begin(), live.end(), prefix,
                                [](const std::string& key, std::string_view p) {
                                  return std::string_view{key} < p;
                                });
  std::vector<std::string> out;
  for (auto it = first; it != live.end(); ++it) {
    if (std::string_view{*it}.substr(0, prefix.size()) != prefix) break;
    out.push_back(*it);
  }
  return out;
}

std::size_t object_store::version_count(std::string_view key) const {
  const auto it = objects_.find(key);
  return it == objects_.end() ? 0 : it->second.versions.size();
}

std::optional<content_ref> object_store::get_version(
    std::string_view key, std::size_t version) const {
  const auto it = objects_.find(key);
  if (it == objects_.end() || version >= it->second.versions.size()) {
    return std::nullopt;
  }
  return it->second.versions[version];
}

bool object_store::undelete(std::string_view key) {
  const auto it = objects_.find(key);
  if (it == objects_.end() || !it->second.deleted) return false;
  it->second.deleted = false;
  live_keys_.invalidate();
  if (!it->second.versions.empty()) {
    stats_.live_bytes += it->second.versions.back().size();
  }
  return true;
}

std::uint64_t object_store::compact_history() {
  std::uint64_t freed = 0;
  for (auto& [_, rec] : objects_) {
    while (rec.versions.size() > 1) {
      freed += rec.versions.front().size();
      rec.versions.erase(rec.versions.begin());
    }
  }
  stats_.retained_bytes -= freed;
  return freed;
}

std::uint64_t object_store::live_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, rec] : objects_) {
    if (!rec.deleted && !rec.versions.empty()) {
      t += rec.versions.back().size();
    }
  }
  return t;
}

std::uint64_t object_store::retained_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, rec] : objects_) {
    for (const content_ref& v : rec.versions) t += v.size();
  }
  return t;
}

}  // namespace cloudsync
