// Cloud-side file metadata: the per-user namespace mapping sync-folder paths
// to stored objects, with version history, fake deletion, and change
// notifications to the user's other devices.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dedup/dedup_index.hpp"  // for user_id
#include "util/sim_time.hpp"
#include "util/sorted_cache.hpp"
#include "util/string_key.hpp"

namespace cloudsync {

class fault_injector;

using device_id = std::uint32_t;

struct file_manifest {
  std::string object_key;       ///< backing object in the object store
  std::uint64_t logical_size = 0;  ///< uncompressed file size
  std::uint64_t stored_size = 0;   ///< representation size actually stored
  std::uint64_t version = 0;
  sim_time modified_at{};
  bool deleted = false;  ///< fake deletion flag (attributes change only)
};

struct change_notification {
  std::string path;
  std::uint64_t version = 0;
  bool deleted = false;
  sim_time at{};
};

/// One entry of a batched metadata commit RPC: the unit the sharded sync
/// server ships — a session commits every file of its sync transaction in a
/// single round trip instead of one RPC per file.
struct manifest_commit {
  std::string path;
  file_manifest manifest;
};

class metadata_service {
 public:
  /// Register a device for a user; returns its notification queue id.
  device_id register_device(user_id user);

  /// Record a new version of `path`. Fans out a notification to every other
  /// device of the same user.
  void commit(user_id user, device_id source, const std::string& path,
              file_manifest manifest);

  /// Apply a whole batch of commits in one call — the server half of the
  /// batched metadata RPC. Equivalent to commit() per entry (one notification
  /// each, in batch order); the point is one RPC envelope and one user-state
  /// lookup for the whole sync transaction.
  void commit_batch(user_id user, device_id source,
                    std::vector<manifest_commit> commits);

  /// Mark deleted (attribute change only — content retained).
  /// Returns false if the path is unknown or already deleted.
  bool mark_deleted(user_id user, device_id source, const std::string& path,
                    sim_time at);

  const file_manifest* lookup(user_id user, std::string_view path) const;

  /// Drain pending notifications for a device. With a fault injector
  /// attached, the poll may be rejected with a thrown `transient_fault`
  /// (server error / throttle) before anything is drained; the queue is
  /// untouched and a later poll sees every notification.
  std::vector<change_notification> fetch_notifications(user_id user,
                                                       device_id dev);

  /// Attach (or detach) the environment's fault injector. Non-owning.
  void set_fault_injector(fault_injector* faults) { faults_ = faults; }
  std::size_t pending_notifications(user_id user, device_id dev) const;

  /// Live (non-deleted) paths for a user, sorted (the map is unordered).
  std::vector<std::string> list(user_id user) const;

 private:
  struct user_state {
    /// Per-path lookup/commit is the hot metadata op; hashed with
    /// allocation-free string_view probes. list() serves from a sorted
    /// snapshot of the live paths, invalidated by commits and deletions.
    std::unordered_map<std::string, file_manifest, string_key_hash,
                       string_key_eq>
        manifests;
    sorted_snapshot_cache<std::string> live_paths;
    /// Ordered: fan_out walks the queues and notification order across
    /// devices must stay deterministic.
    std::map<device_id, std::deque<change_notification>> device_queues;
  };

  void fan_out(user_state& st, device_id source,
               const change_notification& note);
  void apply_commit(user_state& st, device_id source, const std::string& path,
                    file_manifest manifest);

  std::unordered_map<user_id, user_state> users_;
  device_id next_device_ = 1;
  fault_injector* faults_ = nullptr;
};

}  // namespace cloudsync
