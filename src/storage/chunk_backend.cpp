#include "storage/chunk_backend.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudsync {

chunk_backend::chunk_backend(object_store& store, std::size_t chunk_size)
    : store_(store), chunk_size_(chunk_size) {
  if (chunk_size_ == 0) {
    throw std::invalid_argument("chunk_backend: chunk_size must be > 0");
  }
}

std::string chunk_backend::store_chunk(const content_ref& data) {
  const std::string key = "chunk/" + std::to_string(next_chunk_id_++);
  store_.put(key, data);
  return key;
}

void chunk_backend::ref_extents(const chunk_manifest& m) {
  for (const chunk_extent& e : m.extents) ++refs_[e.object_key];
}

void chunk_backend::put_full(const std::string& manifest_key,
                             const content_ref& content) {
  chunk_manifest m;
  m.logical_size = content.size();
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t len = std::min(chunk_size_, content.size() - pos);
    m.extents.push_back({store_chunk(content.substr(pos, len)), 0, len});
    pos += len;
  }
  ref_extents(m);
  manifests_[manifest_key] = std::move(m);
}

void chunk_backend::put_ranges(const std::string& manifest_key,
                               const content_ref& content,
                               const std::vector<std::uint64_t>& range_bytes) {
  chunk_manifest m;
  m.logical_size = content.size();
  std::uint64_t pos = 0;
  for (const std::uint64_t len : range_bytes) {
    if (len == 0 || pos + len > content.size()) {
      throw std::invalid_argument("chunk_backend: bad range split");
    }
    m.extents.push_back(
        {store_chunk(content.substr(pos, len)), 0, len});
    pos += len;
  }
  if (pos != content.size()) {
    throw std::invalid_argument("chunk_backend: ranges do not cover content");
  }
  ref_extents(m);
  manifests_[manifest_key] = std::move(m);
}

void chunk_backend::append_old_range(chunk_manifest& out,
                                     const chunk_manifest& old,
                                     std::uint64_t offset,
                                     std::uint64_t length) {
  // Walk the old extents and emit sub-extents covering [offset, offset+len).
  std::uint64_t pos = 0;
  for (const chunk_extent& e : old.extents) {
    if (length == 0) break;
    const std::uint64_t ext_end = pos + e.length;
    if (ext_end > offset) {
      const std::uint64_t skip = offset > pos ? offset - pos : 0;
      const std::uint64_t take = std::min(e.length - skip, length);
      // Merge with a preceding extent over the same object when contiguous.
      if (!out.extents.empty()) {
        chunk_extent& last = out.extents.back();
        if (last.object_key == e.object_key &&
            last.offset + last.length == e.offset + skip) {
          last.length += take;
          offset += take;
          length -= take;
          pos = ext_end;
          continue;
        }
      }
      out.extents.push_back({e.object_key, e.offset + skip, take});
      offset += take;
      length -= take;
    }
    pos = ext_end;
  }
  if (length != 0) {
    throw std::runtime_error("chunk_backend: copy range beyond old file");
  }
}

void chunk_backend::apply_delta(const std::string& old_key,
                                const std::string& new_key,
                                const file_delta& delta) {
  const auto it = manifests_.find(old_key);
  if (it == manifests_.end()) {
    throw std::runtime_error("chunk_backend: unknown manifest " + old_key);
  }
  const chunk_manifest& old = it->second;
  const std::uint64_t bs = delta.block_size;

  chunk_manifest next;
  next.logical_size = delta.new_file_size;
  for (const delta_op& op : delta.ops) {
    if (op.op == delta_op::kind::copy) {
      const std::uint64_t start = op.block_index * bs;
      const std::uint64_t end = std::min<std::uint64_t>(
          old.logical_size, (op.block_index + op.block_count) * bs);
      if (start > end) {
        throw std::runtime_error("chunk_backend: copy past end of old file");
      }
      append_old_range(next, old, start, end - start);
    } else {
      // Fresh bytes: split into chunk-sized objects. A by-reference literal
      // already is a rope — share it instead of re-interning the bytes.
      const content_ref lit =
          op.ref.empty() ? content_ref::from_bytes(op.bytes) : op.ref;
      std::size_t pos = 0;
      while (pos < lit.size()) {
        const std::size_t len = std::min(chunk_size_, lit.size() - pos);
        next.extents.push_back({store_chunk(lit.substr(pos, len)), 0, len});
        pos += len;
      }
    }
  }

  std::uint64_t assembled = 0;
  for (const chunk_extent& e : next.extents) assembled += e.length;
  if (assembled != next.logical_size) {
    throw std::runtime_error("chunk_backend: manifest size mismatch");
  }

  ref_extents(next);
  manifests_[new_key] = std::move(next);
}

content_ref chunk_backend::materialize(const std::string& manifest_key) const {
  const auto it = manifests_.find(manifest_key);
  if (it == manifests_.end()) {
    throw std::runtime_error("chunk_backend: unknown manifest " +
                             manifest_key);
  }
  content_ref::builder out;
  for (const chunk_extent& e : it->second.extents) {
    const auto chunk = store_.get(e.object_key);
    if (!chunk || e.offset + e.length > chunk->size()) {
      throw std::runtime_error("chunk_backend: missing or short chunk " +
                               e.object_key);
    }
    out.append(*chunk, e.offset, e.length);
  }
  return out.build();
}

void chunk_backend::release(const std::string& manifest_key) {
  const auto it = manifests_.find(manifest_key);
  if (it == manifests_.end()) return;
  for (const chunk_extent& e : it->second.extents) {
    const auto rit = refs_.find(e.object_key);
    if (rit == refs_.end()) continue;
    if (--rit->second == 0) {
      store_.remove(e.object_key);
      refs_.erase(rit);
    }
  }
  manifests_.erase(it);
}

const chunk_manifest* chunk_backend::find(
    const std::string& manifest_key) const {
  const auto it = manifests_.find(manifest_key);
  return it == manifests_.end() ? nullptr : &it->second;
}

}  // namespace cloudsync
