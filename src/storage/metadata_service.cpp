#include "storage/metadata_service.hpp"

#include <algorithm>

#include "net/fault_injector.hpp"

namespace cloudsync {

device_id metadata_service::register_device(user_id user) {
  const device_id dev = next_device_++;
  users_[user].device_queues[dev];  // materialise the queue
  return dev;
}

void metadata_service::fan_out(user_state& st, device_id source,
                               const change_notification& note) {
  for (auto& [dev, queue] : st.device_queues) {
    if (dev != source) queue.push_back(note);
  }
}

void metadata_service::apply_commit(user_state& st, device_id source,
                                    const std::string& path,
                                    file_manifest manifest) {
  const change_notification note{path, manifest.version, manifest.deleted,
                                 manifest.modified_at};
  st.manifests[path] = std::move(manifest);
  st.live_paths.invalidate();
  fan_out(st, source, note);
}

void metadata_service::commit(user_id user, device_id source,
                              const std::string& path,
                              file_manifest manifest) {
  apply_commit(users_[user], source, path, std::move(manifest));
}

void metadata_service::commit_batch(user_id user, device_id source,
                                    std::vector<manifest_commit> commits) {
  user_state& st = users_[user];
  for (manifest_commit& c : commits) {
    apply_commit(st, source, c.path, std::move(c.manifest));
  }
}

bool metadata_service::mark_deleted(user_id user, device_id source,
                                    const std::string& path, sim_time at) {
  const auto uit = users_.find(user);
  if (uit == users_.end()) return false;
  const auto mit = uit->second.manifests.find(path);
  if (mit == uit->second.manifests.end() || mit->second.deleted) return false;
  mit->second.deleted = true;
  mit->second.modified_at = at;
  ++mit->second.version;
  uit->second.live_paths.invalidate();
  fan_out(uit->second, source,
          {path, mit->second.version, true, at});
  return true;
}

const file_manifest* metadata_service::lookup(user_id user,
                                              std::string_view path) const {
  const auto uit = users_.find(user);
  if (uit == users_.end()) return nullptr;
  const auto mit = uit->second.manifests.find(path);
  return mit == uit->second.manifests.end() ? nullptr : &mit->second;
}

std::vector<change_notification> metadata_service::fetch_notifications(
    user_id user, device_id dev) {
  if (faults_ != nullptr && faults_->enabled()) {
    if (const auto kind = faults_->sample_server_fault()) {
      // The queue is untouched: the next poll drains everything. (No clock
      // here, so no absolute retry-after hint — the poll cadence retries.)
      throw transient_fault(*kind, sim_time{});
    }
  }
  std::vector<change_notification> out;
  const auto uit = users_.find(user);
  if (uit == users_.end()) return out;
  const auto qit = uit->second.device_queues.find(dev);
  if (qit == uit->second.device_queues.end()) return out;
  out.assign(qit->second.begin(), qit->second.end());
  qit->second.clear();
  return out;
}

std::size_t metadata_service::pending_notifications(user_id user,
                                                    device_id dev) const {
  const auto uit = users_.find(user);
  if (uit == users_.end()) return 0;
  const auto qit = uit->second.device_queues.find(dev);
  return qit == uit->second.device_queues.end() ? 0 : qit->second.size();
}

std::vector<std::string> metadata_service::list(user_id user) const {
  const auto uit = users_.find(user);
  if (uit == users_.end()) return {};
  const user_state& st = uit->second;
  return st.live_paths.get([&st](std::vector<std::string>& out) {
    out.reserve(st.manifests.size());
    for (const auto& [path, man] : st.manifests) {
      if (!man.deleted) out.push_back(path);
    }
  });
}

}  // namespace cloudsync
