#include "cache/block_cache.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace cloudsync {

const char* to_string(cache_write_mode mode) {
  switch (mode) {
    case cache_write_mode::write_through: return "write_through";
    case cache_write_mode::write_back: return "write_back";
  }
  return "?";
}

block_cache::block_cache(cache_config cfg)
    : cfg_(cfg), policy_(make_eviction_policy(cfg.policy)) {
  if (cfg_.block_bytes == 0) {
    throw std::invalid_argument("cache block size must be nonzero");
  }
  const std::size_t cap_blocks =
      cfg_.capacity_bytes == 0
          ? (std::numeric_limits<std::size_t>::max)() / 2
          : static_cast<std::size_t>(std::max<std::uint64_t>(
                1, cfg_.capacity_bytes / cfg_.block_bytes));
  policy_->set_capacity(cap_blocks);
}

std::size_t block_cache::block_count(std::uint64_t size) const {
  return static_cast<std::size_t>((size + cfg_.block_bytes - 1) /
                                  cfg_.block_bytes);
}

std::size_t block_cache::block_len(const file_entry& fe,
                                   std::size_t index) const {
  const std::uint64_t off =
      static_cast<std::uint64_t>(index) * cfg_.block_bytes;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(cfg_.block_bytes, fe.size - off));
}

bool block_cache::tracks(const std::string& path) const {
  return files_.find(path) != files_.end();
}

block_cache::file_entry& block_cache::entry_for(const std::string& path) {
  const auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  auto [ins, _] = files_.emplace(path, file_entry{});
  ins->second.id = static_cast<std::uint32_t>(id_to_path_.size());
  id_to_path_.push_back(&ins->first);  // std::map keys are address-stable
  return ins->second;
}

void block_cache::make_resident(const std::string&, file_entry& fe,
                                std::size_t index, content_ref bytes,
                                bool dirty) {
  block_state& bs = fe.blocks[index];
  const cache_block_id id =
      block_id(fe.id, static_cast<std::uint32_t>(index));
  if (bs.resident) {
    resident_bytes_ -= bs.bytes.size();
    policy_->on_access(id);
  } else {
    bs.resident = true;
    ++resident_blocks_;
    ++stats_.insertions;
    policy_->on_insert(id);
  }
  if (dirty && !bs.dirty) {
    bs.dirty = true;
    ++dirty_blocks_;
  } else if (!dirty && bs.dirty) {
    bs.dirty = false;
    --dirty_blocks_;
  }
  resident_bytes_ += bytes.size();
  bs.bytes = std::move(bytes);
}

void block_cache::drop_block(file_entry& fe, std::size_t index) {
  block_state& bs = fe.blocks[index];
  if (!bs.resident) return;
  resident_bytes_ -= bs.bytes.size();
  --resident_blocks_;
  if (bs.dirty) --dirty_blocks_;
  bs = block_state{};
  policy_->on_erase(block_id(fe.id, static_cast<std::uint32_t>(index)));
}

void block_cache::ensure_capacity() {
  if (cfg_.capacity_bytes == 0) return;
  const auto evictable = [this](cache_block_id id) {
    const std::uint32_t file = static_cast<std::uint32_t>(id >> 32);
    const std::uint32_t index = static_cast<std::uint32_t>(id);
    const file_entry& fe = files_.at(*id_to_path_[file]);
    return !fe.pinned && !fe.blocks[index].dirty;
  };
  while (resident_bytes_ > cfg_.capacity_bytes) {
    cache_block_id victim = 0;
    if (!policy_->pick_victim(evictable, &victim)) {
      // Everything left is pinned or dirty: the cache is allowed to
      // overshoot, but the stall is visible in stats.
      ++stats_.eviction_stalls;
      return;
    }
    const std::uint32_t file = static_cast<std::uint32_t>(victim >> 32);
    const std::uint32_t index = static_cast<std::uint32_t>(victim);
    file_entry& fe = files_.at(*id_to_path_[file]);
    // pick_victim already dropped the id from the policy's resident set;
    // release the bytes without a second on_erase.
    block_state& bs = fe.blocks[index];
    resident_bytes_ -= bs.bytes.size();
    --resident_blocks_;
    bs = block_state{};
    ++stats_.evictions;
  }
}

void block_cache::install(const std::string& path, const content_ref& content) {
  file_entry& fe = entry_for(path);
  bool was_dirty = false;
  for (const block_state& bs : fe.blocks) was_dirty |= bs.dirty;
  if (was_dirty) ++stats_.flushes;

  const std::size_t want = block_count(content.size());
  for (std::size_t i = want; i < fe.blocks.size(); ++i) drop_block(fe, i);
  fe.size = content.size();
  fe.blocks.resize(want);
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t off = i * cfg_.block_bytes;
    make_resident(path, fe, i, content.substr(off, block_len(fe, i)),
                  /*dirty=*/false);
  }
  ensure_capacity();
}

void block_cache::invalidate(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return;
  file_entry& fe = it->second;
  for (std::size_t i = 0; i < fe.blocks.size(); ++i) drop_block(fe, i);
  // The file id stays allocated (id_to_path_ slots are never reused) but
  // the entry itself goes away so tracks() turns false.
  id_to_path_[fe.id] = nullptr;
  files_.erase(it);
}

std::size_t block_cache::note_local_write(const std::string& path,
                                          const content_ref& content) {
  file_entry& fe = entry_for(path);
  const std::size_t want = block_count(content.size());
  for (std::size_t i = want; i < fe.blocks.size(); ++i) drop_block(fe, i);
  fe.size = content.size();
  fe.blocks.resize(want);

  std::size_t newly_dirty = 0;
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t off = i * cfg_.block_bytes;
    content_ref fresh = content.substr(off, block_len(fe, i));
    block_state& bs = fe.blocks[i];
    if (bs.resident && bs.bytes.equal(fresh)) {
      // Unchanged relative to the cached state (clean or already dirty).
      if (bs.dirty) ++stats_.dirty_coalesced;
      continue;
    }
    const bool was_dirty = bs.dirty;
    make_resident(path, fe, i, std::move(fresh), /*dirty=*/true);
    if (was_dirty) {
      ++stats_.dirty_coalesced;
    } else {
      ++stats_.dirty_marked;
      ++newly_dirty;
    }
  }
  ensure_capacity();
  return newly_dirty;
}

void block_cache::pin(const std::string& path) { entry_for(path).pinned = true; }

void block_cache::unpin(const std::string& path) {
  const auto it = files_.find(path);
  if (it != files_.end()) it->second.pinned = false;
}

bool block_cache::pinned(const std::string& path) const {
  const auto it = files_.find(path);
  return it != files_.end() && it->second.pinned;
}

bool block_cache::probe_resident(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    ++stats_.misses;
    return false;
  }
  file_entry& fe = it->second;
  std::size_t absent = 0;
  for (const block_state& bs : fe.blocks) absent += bs.resident ? 0 : 1;
  if (absent != 0) {
    stats_.misses += absent;
    return false;
  }
  stats_.hits += fe.blocks.size();
  for (std::size_t i = 0; i < fe.blocks.size(); ++i) {
    policy_->on_access(block_id(fe.id, static_cast<std::uint32_t>(i)));
  }
  return true;
}

std::optional<content_ref> block_cache::read(
    const std::string& path,
    const std::function<content_ref(std::uint32_t, std::uint32_t)>& fetch) {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  file_entry& fe = it->second;

  // Fetch absent blocks one contiguous run at a time.
  std::size_t i = 0;
  while (i < fe.blocks.size()) {
    if (fe.blocks[i].resident) {
      ++stats_.hits;
      policy_->on_access(block_id(fe.id, static_cast<std::uint32_t>(i)));
      ++i;
      continue;
    }
    std::size_t run = 1;
    while (i + run < fe.blocks.size() && !fe.blocks[i + run].resident) ++run;
    stats_.misses += run;
    const content_ref got = fetch(static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(run));
    std::uint64_t expect = 0;
    for (std::size_t k = 0; k < run; ++k) expect += block_len(fe, i + k);
    if (got.size() != expect) {
      throw std::logic_error("rehydration fetch returned wrong byte count");
    }
    for (std::size_t k = 0; k < run; ++k) {
      const std::size_t len = block_len(fe, i + k);
      make_resident(path, fe, i + k,
                    got.substr(k * cfg_.block_bytes, len), /*dirty=*/false);
      ++stats_.rehydrated_blocks;
      stats_.rehydrated_bytes += len;
    }
    i += run;
  }
  ensure_capacity();

  // Assemble. Eviction pressure from the admissions above may already have
  // re-evicted part of a file larger than the whole cache; assemble from
  // the bytes fetched this call regardless — make_resident stored them and
  // ensure_capacity only drops refs, so re-read the block list defensively.
  content_ref::builder out;
  for (std::size_t k = 0; k < fe.blocks.size(); ++k) {
    const block_state& bs = fe.blocks[k];
    if (!bs.resident) {
      // Evicted between admission and assembly (file > capacity): the
      // caller still got a consistent view — refetch just this block.
      stats_.misses += 1;
      const content_ref got =
          fetch(static_cast<std::uint32_t>(k), 1);
      ++stats_.rehydrated_blocks;
      stats_.rehydrated_bytes += got.size();
      out.append(got);
      continue;
    }
    out.append(bs.bytes);
  }
  return out.build();
}

std::size_t block_cache::drop_clean_blocks() {
  std::size_t dropped = 0;
  for (auto& [path, fe] : files_) {
    for (std::size_t i = 0; i < fe.blocks.size(); ++i) {
      if (fe.blocks[i].resident && !fe.blocks[i].dirty) {
        drop_block(fe, i);
        ++dropped;
      }
    }
  }
  return dropped;
}

std::size_t block_cache::dirty_paths() const {
  std::size_t n = 0;
  for (const auto& [path, fe] : files_) {
    for (const block_state& bs : fe.blocks) {
      if (bs.dirty) {
        ++n;
        break;
      }
    }
  }
  return n;
}

std::size_t block_cache::pinned_paths() const {
  std::size_t n = 0;
  for (const auto& [path, fe] : files_) n += fe.pinned ? 1 : 0;
  return n;
}

}  // namespace cloudsync
