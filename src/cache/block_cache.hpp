// Client block-cache tier: the bounded local replica of a limited-disk
// client (ROADMAP "HCFS-style" item; cf. HopeBay HCFS).
//
// The paper measures clients that hold a full local copy of every synced
// file. Production mobile/limited-disk clients instead keep a
// fixed-capacity cache of *blocks* over the cloud backend: reads of
// resident blocks are free, reads of evicted blocks re-hydrate them from
// the cloud (metered as traffic_category::rehydrate), and local writes in
// write-back mode dirty blocks that a background scheduler flushes after
// a coalescing window. This class is that tier. It sits beside the sync
// engine (sync_options::cache_tier): the engine installs every synced
// version, probes residency during planning (an evicted old version means
// no delta basis — fall back to a full-file upload), routes application
// reads through `read`, and marks dirty blocks on write-back writes.
//
// Blocks alias the synced content's CoW chunks (content_ref::substr never
// copies), so an uncapped cache costs O(1) extra memory per block and the
// cacheless engine stays byte-identical when the tier is disabled or
// never evicts.
//
// Hard constraints the eviction loop honors:
//   - pinned paths are never evicted (HCFS pin/unpin);
//   - dirty blocks are never evicted (they are the only copy of unsynced
//     local data) — a cache full of pinned/dirty blocks is allowed to
//     overshoot capacity, counted in stats().eviction_stalls.
//
// Determinism: no clocks, no RNG; victims depend only on the operation
// sequence. Each simulated station owns one block_cache and drives it
// from a single thread (fleet parallelism is across stations).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cache/eviction_policy.hpp"
#include "store/content_ref.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace cloudsync {

enum class cache_write_mode : std::uint8_t {
  write_through,  ///< local writes sync on the service's normal defer policy
  write_back      ///< local writes dirty cached blocks; a background flush
                  ///< uploads them after the coalescing window
};
const char* to_string(cache_write_mode mode);

struct cache_config {
  /// Resident-byte budget. 0 = unbounded (never evicts) — the
  /// configuration that must be byte-identical to the cacheless engine.
  std::uint64_t capacity_bytes = 0;
  /// Cache block size. Files are sliced into fixed blocks; the last block
  /// of a file is short.
  std::size_t block_bytes = 64 * KiB;
  cache_eviction policy = cache_eviction::lru;
  cache_write_mode write_mode = cache_write_mode::write_through;
  /// Write-back only: dirty blocks flush this long after the *first*
  /// unflushed write to their path; later writes inside the window
  /// coalesce into the same flush.
  sim_time coalesce_window = sim_time::from_sec(8.0);
};

struct block_cache_stats {
  std::uint64_t hits = 0;        ///< block reads served from residency
  std::uint64_t misses = 0;      ///< block reads that found the block absent
  std::uint64_t insertions = 0;  ///< blocks made resident
  std::uint64_t evictions = 0;   ///< blocks dropped by capacity pressure
  std::uint64_t eviction_stalls = 0;  ///< over capacity but nothing evictable
  std::uint64_t rehydrated_blocks = 0;
  std::uint64_t rehydrated_bytes = 0;     ///< content bytes re-fetched
  std::uint64_t dirty_marked = 0;         ///< blocks newly marked dirty
  std::uint64_t dirty_coalesced = 0;      ///< writes absorbed by already-dirty blocks
  std::uint64_t flushes = 0;              ///< dirty paths cleaned by a sync
  std::uint64_t plan_fallbacks = 0;       ///< plans forced full-file: old
                                          ///< version partially evicted
  double hit_ratio() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class block_cache {
 public:
  explicit block_cache(cache_config cfg);

  const cache_config& config() const { return cfg_; }
  const char* policy_name() const { return policy_->name(); }

  /// True when `path` has a tracked (synced) version in the cache.
  bool tracks(const std::string& path) const;

  /// Install the synced version of `path` — called after every upload
  /// commit, download, and recovery adoption. All blocks become resident
  /// and clean (a dirty path being installed counts one flush).
  void install(const std::string& path, const content_ref& content);

  /// Drop `path` entirely (local/remote deletion, rename-away).
  void invalidate(const std::string& path);

  /// Record a local write in write-back mode: blocks whose bytes differ
  /// from the cached state (or whose cached state is absent) become dirty
  /// and resident. Returns the number of blocks newly marked dirty.
  std::size_t note_local_write(const std::string& path,
                               const content_ref& content);

  void pin(const std::string& path);
  void unpin(const std::string& path);
  bool pinned(const std::string& path) const;

  /// Planning probe: true iff every block of `path`'s tracked version is
  /// resident (counts a hit per block and refreshes recency — signature
  /// computation reads them). Otherwise counts a miss per absent block
  /// and a plan fallback, and returns false: the caller must plan a
  /// full-file upload, there is no local delta basis.
  bool probe_resident(const std::string& path);

  /// One application read through the cache. Resident blocks count hits;
  /// absent blocks count misses and are fetched via `fetch(first, count)`
  /// — called once per contiguous absent run with block coordinates, must
  /// return exactly the run's bytes (the caller meters the transfer) —
  /// then admitted (evicting under pressure). Returns the assembled
  /// content, or nullopt when `path` is untracked.
  std::optional<content_ref> read(
      const std::string& path,
      const std::function<content_ref(std::uint32_t first,
                                      std::uint32_t count)>& fetch);

  /// Drop every clean resident block (keeps dirty ones). Models a purged
  /// cache / cold start; returns the number of blocks dropped.
  std::size_t drop_clean_blocks();

  // -- gauges ------------------------------------------------------------
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  std::size_t resident_blocks() const { return resident_blocks_; }
  std::size_t dirty_blocks() const { return dirty_blocks_; }
  std::size_t dirty_paths() const;
  std::size_t pinned_paths() const;
  std::size_t tracked_paths() const { return files_.size(); }
  bool over_capacity() const {
    return cfg_.capacity_bytes != 0 && resident_bytes_ > cfg_.capacity_bytes;
  }

  const block_cache_stats& stats() const { return stats_; }
  /// The engine reports its evicted-shadow full-file fallbacks here so
  /// tools/cache_stats can show them next to the hit counters.
  void note_plan_fallback() { ++stats_.plan_fallbacks; }

 private:
  struct block_state {
    content_ref bytes;
    bool resident = false;
    bool dirty = false;
  };
  struct file_entry {
    std::uint32_t id = 0;
    std::uint64_t size = 0;
    bool pinned = false;
    std::vector<block_state> blocks;
  };

  static cache_block_id block_id(std::uint32_t file_id, std::uint32_t index) {
    return (static_cast<cache_block_id>(file_id) << 32) | index;
  }
  std::size_t block_len(const file_entry& fe, std::size_t index) const;
  std::size_t block_count(std::uint64_t size) const;
  file_entry& entry_for(const std::string& path);
  void make_resident(const std::string& path, file_entry& fe,
                     std::size_t index, content_ref bytes, bool dirty);
  void drop_block(file_entry& fe, std::size_t index);
  void ensure_capacity();

  cache_config cfg_;
  std::unique_ptr<eviction_policy> policy_;
  // Ordered for deterministic iteration in gauges and drop_clean_blocks.
  std::map<std::string, file_entry> files_;
  std::vector<const std::string*> id_to_path_;  // file id -> key in files_
  std::uint64_t resident_bytes_ = 0;
  std::size_t resident_blocks_ = 0;
  std::size_t dirty_blocks_ = 0;
  block_cache_stats stats_;
};

}  // namespace cloudsync
