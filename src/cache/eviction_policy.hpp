// Pluggable block-eviction policies for the client cache tier
// (cache/block_cache.hpp).
//
// A policy tracks *which resident blocks exist and in what order they
// should leave*; it never owns bytes. The cache identifies blocks by an
// opaque 64-bit id (file-id << 32 | block-index) and asks the policy for a
// victim whenever it is over capacity, passing a predicate that encodes
// the cache's hard constraints (pinned paths and dirty blocks are not
// evictable). Policies must honor the predicate by *skipping* protected
// blocks, not by failing — a policy that returns false declares that no
// evictable block exists at all.
//
// Two built-ins:
//   - lru_policy: classic least-recently-used stack. LRU satisfies the
//     inclusion property, so its hit ratio is monotone non-decreasing in
//     capacity — bench/cache_tier_report gates on this.
//   - arc_policy: Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//     Two resident lists (T1 recency, T2 frequency) plus two ghost lists
//     (B1, B2) of recently evicted ids steer an adaptive target p for
//     |T1|; scan-heavy workloads with a reused hot set keep the hot set
//     in T2 while the scan churns through T1.
//
// Determinism: policies are pure data structures driven only by the call
// sequence — no clocks, no RNG — so a replayed run picks identical
// victims.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

namespace cloudsync {

/// Opaque resident-block identity: (file id << 32) | block index.
using cache_block_id = std::uint64_t;

enum class cache_eviction : std::uint8_t { lru, arc };
const char* to_string(cache_eviction policy);

class eviction_policy {
 public:
  virtual ~eviction_policy() = default;

  virtual const char* name() const = 0;

  /// Capacity in *blocks* — bounds the ghost lists of history-keeping
  /// policies. The cache calls this once before use.
  virtual void set_capacity(std::size_t blocks) = 0;

  /// A block became resident (install, rehydration, or dirty write to a
  /// previously absent block).
  virtual void on_insert(cache_block_id id) = 0;

  /// A resident block was read or rewritten.
  virtual void on_access(cache_block_id id) = 0;

  /// A resident block left the cache for a reason other than eviction
  /// (invalidation, file shrink). No history is kept.
  virtual void on_erase(cache_block_id id) = 0;

  /// Choose a resident block to evict, skipping blocks for which
  /// `evictable` returns false. On success the victim is written to
  /// `*victim`, the policy stops tracking it as resident (history-keeping
  /// policies move it to a ghost list), and true is returned. Returns
  /// false when no evictable resident block exists; the policy state is
  /// unchanged.
  virtual bool pick_victim(
      const std::function<bool(cache_block_id)>& evictable,
      cache_block_id* victim) = 0;
};

std::unique_ptr<eviction_policy> make_eviction_policy(cache_eviction which);

/// Least-recently-used: one recency list, victim is the oldest evictable.
class lru_policy final : public eviction_policy {
 public:
  const char* name() const override { return "lru"; }
  void set_capacity(std::size_t blocks) override;
  void on_insert(cache_block_id id) override;
  void on_access(cache_block_id id) override;
  void on_erase(cache_block_id id) override;
  bool pick_victim(const std::function<bool(cache_block_id)>& evictable,
                   cache_block_id* victim) override;

 private:
  // Front = most recent, back = least recent.
  std::list<cache_block_id> recency_;
  std::unordered_map<cache_block_id, std::list<cache_block_id>::iterator>
      where_;
};

/// Adaptive Replacement Cache. T1/T2 hold resident ids, B1/B2 hold ghost
/// ids of blocks evicted from T1/T2 respectively; a hit in B1 grows the
/// recency target p, a hit in B2 shrinks it.
class arc_policy final : public eviction_policy {
 public:
  const char* name() const override { return "arc"; }
  void set_capacity(std::size_t blocks) override;
  void on_insert(cache_block_id id) override;
  void on_access(cache_block_id id) override;
  void on_erase(cache_block_id id) override;
  bool pick_victim(const std::function<bool(cache_block_id)>& evictable,
                   cache_block_id* victim) override;

  /// Adaptive recency target (|T1| aims for p) — exposed for tests.
  std::size_t p() const { return p_; }

 private:
  enum class list_id : std::uint8_t { t1, t2, b1, b2 };
  struct slot {
    list_id in;
    std::list<cache_block_id>::iterator it;
  };

  std::list<cache_block_id>& list_of(list_id which);
  void detach(cache_block_id id);
  void attach_mru(cache_block_id id, list_id which);
  void trim_ghosts();
  bool victim_from(list_id which,
                   const std::function<bool(cache_block_id)>& evictable,
                   cache_block_id* victim);

  // Front = most recent, back = least recent, for all four lists.
  std::list<cache_block_id> t1_, t2_, b1_, b2_;
  std::unordered_map<cache_block_id, slot> where_;
  std::size_t capacity_ = 1;
  std::size_t p_ = 0;
};

}  // namespace cloudsync
