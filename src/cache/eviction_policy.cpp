#include "cache/eviction_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudsync {

const char* to_string(cache_eviction policy) {
  switch (policy) {
    case cache_eviction::lru: return "lru";
    case cache_eviction::arc: return "arc";
  }
  return "?";
}

std::unique_ptr<eviction_policy> make_eviction_policy(cache_eviction which) {
  switch (which) {
    case cache_eviction::lru: return std::make_unique<lru_policy>();
    case cache_eviction::arc: return std::make_unique<arc_policy>();
  }
  throw std::invalid_argument("unknown eviction policy");
}

// ---------------------------------------------------------------- lru

void lru_policy::set_capacity(std::size_t) {}

void lru_policy::on_insert(cache_block_id id) {
  const auto it = where_.find(id);
  if (it != where_.end()) {
    recency_.splice(recency_.begin(), recency_, it->second);
    return;
  }
  recency_.push_front(id);
  where_[id] = recency_.begin();
}

void lru_policy::on_access(cache_block_id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  recency_.splice(recency_.begin(), recency_, it->second);
}

void lru_policy::on_erase(cache_block_id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  recency_.erase(it->second);
  where_.erase(it);
}

bool lru_policy::pick_victim(
    const std::function<bool(cache_block_id)>& evictable,
    cache_block_id* victim) {
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    if (!evictable(*it)) continue;
    *victim = *it;
    where_.erase(*it);
    recency_.erase(std::next(it).base());
    return true;
  }
  return false;
}

// ---------------------------------------------------------------- arc

std::list<cache_block_id>& arc_policy::list_of(list_id which) {
  switch (which) {
    case list_id::t1: return t1_;
    case list_id::t2: return t2_;
    case list_id::b1: return b1_;
    case list_id::b2: return b2_;
  }
  return t1_;  // unreachable
}

void arc_policy::detach(cache_block_id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  list_of(it->second.in).erase(it->second.it);
  where_.erase(it);
}

void arc_policy::attach_mru(cache_block_id id, list_id which) {
  std::list<cache_block_id>& list = list_of(which);
  list.push_front(id);
  where_[id] = slot{which, list.begin()};
}

void arc_policy::trim_ghosts() {
  // Standard ARC bounds: |T1| + |B1| <= c and total directory <= 2c.
  while (!b1_.empty() && t1_.size() + b1_.size() > capacity_) {
    where_.erase(b1_.back());
    b1_.pop_back();
  }
  while (!b2_.empty() &&
         t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * capacity_) {
    where_.erase(b2_.back());
    b2_.pop_back();
  }
}

void arc_policy::set_capacity(std::size_t blocks) {
  capacity_ = std::max<std::size_t>(1, blocks);
  trim_ghosts();
}

void arc_policy::on_insert(cache_block_id id) {
  const auto it = where_.find(id);
  if (it != where_.end()) {
    switch (it->second.in) {
      case list_id::t1:
      case list_id::t2:
        on_access(id);
        return;
      case list_id::b1: {
        // Ghost hit in the recency history: recency was under-provisioned.
        const std::size_t delta =
            std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(
                                                      1, b1_.size()));
        p_ = std::min(capacity_, p_ + delta);
        detach(id);
        attach_mru(id, list_id::t2);
        return;
      }
      case list_id::b2: {
        const std::size_t delta =
            std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(
                                                      1, b2_.size()));
        p_ = (p_ > delta) ? p_ - delta : 0;
        detach(id);
        attach_mru(id, list_id::t2);
        return;
      }
    }
  }
  attach_mru(id, list_id::t1);
  trim_ghosts();
}

void arc_policy::on_access(cache_block_id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  switch (it->second.in) {
    case list_id::t1:
    case list_id::t2:
      // A re-reference promotes to (or refreshes within) the frequency list.
      detach(id);
      attach_mru(id, list_id::t2);
      break;
    case list_id::b1:
    case list_id::b2:
      break;  // ghosts are adjusted on re-insertion, not on access
  }
}

void arc_policy::on_erase(cache_block_id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  if (it->second.in == list_id::t1 || it->second.in == list_id::t2) {
    detach(id);
  }
}

bool arc_policy::victim_from(
    list_id which, const std::function<bool(cache_block_id)>& evictable,
    cache_block_id* victim) {
  std::list<cache_block_id>& list = list_of(which);
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    if (!evictable(*it)) continue;
    *victim = *it;
    detach(*it);
    attach_mru(*victim,
               which == list_id::t1 ? list_id::b1 : list_id::b2);
    trim_ghosts();
    return true;
  }
  return false;
}

bool arc_policy::pick_victim(
    const std::function<bool(cache_block_id)>& evictable,
    cache_block_id* victim) {
  // REPLACE: evict from T1 while it exceeds the recency target p, else
  // from T2; fall back to the other list when every candidate in the
  // preferred one is pinned or dirty.
  const bool prefer_t1 =
      !t1_.empty() && t1_.size() >= std::max<std::size_t>(1, p_);
  const list_id first = prefer_t1 ? list_id::t1 : list_id::t2;
  const list_id second = prefer_t1 ? list_id::t2 : list_id::t1;
  if (victim_from(first, evictable, victim)) return true;
  return victim_from(second, evictable, victim);
}

}  // namespace cloudsync
