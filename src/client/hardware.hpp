// Client hardware model (paper Table 4).
//
// The only hardware property that shapes TUE is how long the client takes to
// compute the metadata of a modified file — hashing, chunk indexing, local
// database updates (§6.2 Condition 2). We model it as a fixed per-operation
// latency plus a throughput term over the file size.
#pragma once

#include <string>

#include "util/sim_time.hpp"

namespace cloudsync {

struct hardware_profile {
  std::string name;
  double index_bytes_per_sec;   ///< effective metadata-computation throughput
  sim_time index_fixed_latency; ///< per-operation fixed cost (db commit, scan)

  /// Time to (re)compute the metadata of a file of `bytes`.
  sim_time index_time(std::uint64_t bytes) const {
    return index_fixed_latency +
           sim_time::from_sec(static_cast<double>(bytes) /
                              index_bytes_per_sec);
  }

  // Paper Table 4 machines. B1-B3 share M1-M3 hardware (the location differs,
  // not the machine class); B4 mirrors M4.
  static hardware_profile m1();  ///< typical: quad-core i5, 7200 RPM disk
  static hardware_profile m2();  ///< outdated: Atom, 5400 RPM disk
  static hardware_profile m3();  ///< advanced: quad-core i7, SSD
  static hardware_profile m4();  ///< smartphone: dual-core ARM, MicroSD
};

}  // namespace cloudsync
