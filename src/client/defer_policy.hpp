// Sync deferment policies (paper §6.1).
//
// A defer policy answers one question: after a local update at time t, when
// should the pending batch be committed? The observed behaviours are
// debounce timers — each new update pushes the commit out again:
//
//   no_defer       — commit immediately (Dropbox, Box, Ubuntu One)
//   fixed_defer(T) — commit T after the *latest* update (Google Drive ≈4.2 s,
//                    OneDrive ≈10.5 s, SugarSync ≈6 s); inefficient once the
//                    inter-update gap exceeds T
//   adaptive_defer — the paper's proposed ASD (Eq. 2):
//                    T_i = min(T_{i-1}/2 + Δt_i/2 + ε, T_max),
//                    tracking slightly above the observed inter-update time
//   byte_counter_defer — UDS-style (the paper's ref [36], discussed in §6.1
//                    Case 1): commit once the pending update bytes reach a
//                    threshold, or after a maximum wait
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/sim_time.hpp"

namespace cloudsync {

class defer_policy {
 public:
  virtual ~defer_policy() = default;

  /// Called on each local update; returns the absolute time at which the
  /// pending batch should be committed (superseding earlier answers).
  /// `pending_bytes` estimates the accumulated not-yet-synced update size.
  virtual sim_time next_fire(sim_time update_time,
                             std::uint64_t pending_bytes) = 0;

  /// Notification that the engine committed the pending batch (lets
  /// accumulation-based policies close their window). Default: no-op.
  virtual void on_commit() {}

  /// Forget adaptation state (new experiment).
  virtual void reset() = 0;

  virtual std::string name() const = 0;
};

class no_defer final : public defer_policy {
 public:
  sim_time next_fire(sim_time update_time, std::uint64_t) override {
    return update_time;
  }
  void reset() override {}
  std::string name() const override { return "none"; }
};

class fixed_defer final : public defer_policy {
 public:
  explicit fixed_defer(sim_time deferment) : deferment_(deferment) {}

  sim_time next_fire(sim_time update_time, std::uint64_t) override {
    return update_time + deferment_;
  }
  void reset() override {}
  std::string name() const override;

  sim_time deferment() const { return deferment_; }

 private:
  sim_time deferment_;
};

/// ASD — adaptive sync defer (paper Eq. 2).
class adaptive_defer final : public defer_policy {
 public:
  struct params {
    sim_time epsilon = sim_time::from_msec(500);  ///< ε ∈ (0, 1.0) seconds
    sim_time t_max = sim_time::from_sec(15);      ///< upper bound on T_i
    sim_time t_initial = sim_time::from_sec(1);   ///< T_0
  };

  adaptive_defer() : adaptive_defer(params{}) {}
  explicit adaptive_defer(params p) : params_(p), current_(p.t_initial) {}

  sim_time next_fire(sim_time update_time, std::uint64_t) override;
  void reset() override;
  std::string name() const override { return "adaptive (ASD)"; }

  sim_time current_deferment() const { return current_; }

 private:
  params params_;
  sim_time current_;
  bool has_last_ = false;
  sim_time last_update_{};
};

/// UDS-style batched sync: defer until enough bytes are pending (then sync
/// immediately) or the oldest pending update has waited `max_wait`.
class byte_counter_defer final : public defer_policy {
 public:
  struct params {
    std::uint64_t threshold_bytes = 256 * 1024;
    sim_time max_wait = sim_time::from_sec(30);
  };

  byte_counter_defer() : byte_counter_defer(params{}) {}
  explicit byte_counter_defer(params p) : params_(p) {}

  sim_time next_fire(sim_time update_time,
                     std::uint64_t pending_bytes) override;
  void on_commit() override { window_open_ = false; }
  void reset() override;
  std::string name() const override { return "byte counter (UDS)"; }

 private:
  params params_;
  bool window_open_ = false;
  sim_time window_start_{};
};

/// Factory-friendly value description of a defer policy, used by
/// service_profile so profiles stay copyable.
struct defer_config {
  enum class kind : std::uint8_t { none, fixed, adaptive, byte_counter };
  kind policy = kind::none;
  sim_time fixed_deferment{};
  adaptive_defer::params adaptive{};
  byte_counter_defer::params byte_counter{};

  static defer_config none() { return {}; }
  static defer_config fixed(sim_time t) {
    defer_config c;
    c.policy = kind::fixed;
    c.fixed_deferment = t;
    return c;
  }
  static defer_config asd(adaptive_defer::params p = adaptive_defer::params{}) {
    defer_config c;
    c.policy = kind::adaptive;
    c.adaptive = p;
    return c;
  }
  static defer_config uds(
      byte_counter_defer::params p = byte_counter_defer::params{}) {
    defer_config c;
    c.policy = kind::byte_counter;
    c.byte_counter = p;
    return c;
  }

  std::unique_ptr<defer_policy> instantiate() const;
};

}  // namespace cloudsync
