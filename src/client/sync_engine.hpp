// The sync client: watches a local sync folder, defers/batches updates, runs
// the upload pipeline (delta sync → dedup → compression), talks to the cloud
// over the modelled network, and meters every byte.
//
// Faithful to the paper's observed mechanics:
//   §4.1/4.2/4.3 — per-event overhead, fake deletion, full-file vs IDS
//   §5.1/5.2     — compression and dedup applied per access method
//   §6.1         — defer policies (none / fixed / ASD)
//   §6.2         — a pending batch commits only when (C1) the previous
//                  commit's transfer finished and (C2) metadata computation
//                  caught up; poor networks/hardware batch naturally.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include <functional>

#include "cache/block_cache.hpp"
#include "chunking/rsync.hpp"
#include "client/access_method.hpp"
#include "client/defer_policy.hpp"
#include "client/hardware.hpp"
#include "client/protocol_cost.hpp"
#include "client/service_profile.hpp"
#include "client/sync_journal.hpp"
#include "client/sync_protocol.hpp"
#include "fs/memfs.hpp"
#include "net/fault_injector.hpp"
#include "net/http_model.hpp"
#include "net/link.hpp"
#include "net/sim_clock.hpp"
#include "net/tcp_model.hpp"
#include "net/traffic_meter.hpp"
#include "net/transfer_scheduler.hpp"
#include "storage/cloud.hpp"
#include "util/content_cache.hpp"
#include "util/stats.hpp"

namespace cloudsync {

/// How the sync engine reacts to transient faults surfaced by the network
/// and storage layers: exponential backoff with seeded jitter, a bounded
/// number of attempts per sync transaction, graceful degradation of delta
/// sync to full-file sync, and a cool-down before a failed batch is retried.
/// All randomness (the jitter) comes from the environment's fault_injector,
/// so retry schedules are reproducible bit-for-bit.
struct retry_policy {
  int max_attempts = 6;  ///< per sync transaction before giving up/requeueing
  sim_time base_backoff = sim_time::from_msec(500);
  double backoff_multiplier = 2.0;
  sim_time max_backoff = sim_time::from_sec(30);
  double jitter = 0.2;  ///< ± fraction of the delay, drawn from the injector
  /// After this many rejected delta (IDS) commits within one transaction,
  /// fall back to a full-file upload for the path (which needs no server-side
  /// patch machinery and succeeds whenever a plain PUT does).
  int delta_fallback_after = 2;
  /// A batch whose transaction gave up re-enters the dirty set and is
  /// retried this much later.
  sim_time requeue_cooldown = sim_time::from_sec(45);
};

/// Wire-payload size of `content` under compression `level`: the pure
/// computation behind sync_client::shipped_size(), including the real-client
/// fast path that skips the compressor for incompressible data. Exposed as a
/// free function so the content_cache memoization can be verified against
/// direct recomputation.
std::uint64_t wire_payload_size(byte_view content, int level);

/// Streaming twin of wire_payload_size: walks the rope's segments through
/// the sampled compressibility probe and the exact stream sizer, returning
/// the identical value without ever flattening the content. This is what
/// lets multi-GB uploads be priced in O(MB) working memory.
std::uint64_t wire_payload_size_ref(const content_ref& content, int level);

/// Same, over a delta's exact serialized wire bytes (walk_delta_wire) —
/// byte-identical to wire_payload_size(serialize_delta(delta), level)
/// without materializing the wire buffer.
std::uint64_t wire_payload_size_delta(const file_delta& delta, int level);

struct sync_options {
  service_profile profile;
  access_method method = access_method::pc_client;
  hardware_profile hardware = hardware_profile::m1();
  link_config link = link_config::minnesota();
  tcp_config tcp{};
  http_config http{400, 250};
  /// Start with an established (already-handshaken) connection, as a running
  /// client app would have; the warm-up bytes are not metered.
  bool warm_connection = true;
  /// Memoize compressed-size computations here (nullptr = recompute every
  /// time). Non-owning; typically &content_cache::global(). Cached results
  /// are byte-identical to recomputation — this only trades CPU for memory.
  content_cache* cache = nullptr;
  /// Fault injector shared with the network/storage layers (non-owning;
  /// nullptr or a disabled plan makes the whole retry machinery inert and
  /// the client behaves byte-identically to a fault-free build).
  fault_injector* faults = nullptr;
  retry_policy retry{};
  /// Durable write-ahead journal (non-owning; survives client crashes — the
  /// experiment harness owns it like the memfs). When set, every sync
  /// transaction is journaled and uploads go through resumable server
  /// sessions in recovery.chunk_bytes ranges; crash kill sites are armed.
  /// When nullptr (the default) the client behaves byte-identically to the
  /// journal-less build — no sessions, no extra exchanges, no RNG draws.
  sync_journal* journal = nullptr;
  recovery_options recovery{};
  /// Reattach to an existing device registration instead of creating a new
  /// one (0 = register fresh). A restarted client must keep its device id so
  /// the cloud's notification queue for it survives the crash.
  device_id reuse_device = 0;
  /// Parallel transfer scheduler (net/transfer_scheduler.hpp). When enabled,
  /// journaled upload sessions with more than one chunk may be striped
  /// across K connections with FEC parity and hedged duplicates, as decided
  /// by the adaptive controller from observed faults. Disabled (default), or
  /// enabled on a clean link, the client's wire traffic is byte-identical to
  /// the serial single-connection path.
  transfer_policy transfer{};
  /// How the planning layer chooses a sync protocol per update
  /// (client/protocol_cost.hpp): the historical service-default branching,
  /// one forced protocol, or the adaptive cost-model selector.
  protocol_options protocol{};
  /// Client block-cache tier (cache/block_cache.hpp) — the bounded local
  /// replica of a limited-disk client. Non-owning; the experiment harness
  /// owns it like the journal and memfs, so residency and dirty blocks
  /// survive client crashes. When set, the engine installs every synced
  /// version into it, serves read_file() from resident blocks (re-hydrating
  /// evicted ones from the cloud under traffic_category::rehydrate), plans
  /// deltas only when the old version is fully resident (full-file fallback
  /// otherwise), and in write-back mode routes local writes through the
  /// dirty-block tracker with a coalescing flush window. When nullptr (the
  /// default), or uncapped in write-through mode, the client's wire traffic
  /// is byte-identical to the cacheless engine.
  block_cache* cache_tier = nullptr;
  /// Legacy planning mode: flatten file contents and materialize delta wire
  /// buffers instead of streaming rope windows through the incremental
  /// sig/delta jobs and the stream sizer. Exists solely so the identity leg
  /// of bench/stream_scale_report can prove the streaming path meters
  /// byte-identical traffic; it holds whole files in memory and must not be
  /// used for uncapped inputs.
  bool whole_file_planning = false;
};

class sync_client {
 public:
  sync_client(sim_clock& clock, memfs& fs, cloud& cl, user_id user,
              sync_options opts);

  /// Cancels every clock callback into this object, so the crash harness can
  /// destroy an incarnation mid-run without leaving dangling events.
  ~sync_client();

  sync_client(const sync_client&) = delete;
  sync_client& operator=(const sync_client&) = delete;

  traffic_meter& meter() { return meter_; }
  const traffic_meter& meter() const { return meter_; }

  /// Client-initiated full-file download (Table 8 "DN" experiments).
  void download(const std::string& path);

  /// Application read of `path`. Without a cache tier (or for a path the
  /// tier does not track) this is a plain local read — no traffic. With
  /// one, resident blocks are served locally and absent blocks are fetched
  /// from the cloud copy of the last-synced version, one ranged exchange
  /// per contiguous absent run, metered as traffic_category::rehydrate.
  /// Paths with unsynced local edits are always served from the local fs.
  content_ref read_file(const std::string& path);

  /// Fetch pending change notifications from the cloud and download every
  /// remotely changed file (the receive side of a multi-device setup).
  /// Returns the number of changes applied locally.
  std::size_t poll_remote_changes();

  /// Poll for remote changes every `interval` until `until` (bounded so the
  /// event queue always drains). Models a second device keeping itself in
  /// sync during a collaboration session.
  void enable_periodic_poll(sim_time interval, sim_time until);

  /// Time at which the client becomes fully idle (network + indexer).
  sim_time busy_until() const;

  /// Crash-recovery pass, run once when a restarted client comes up (needs
  /// sync_options::journal; a no-op without one). Reconciles open journal
  /// records against the cloud — resuming in-flight upload sessions when
  /// recovery.resume is on (paying only the un-acked chunk suffix plus a
  /// session-query round trip), discarding them otherwise — then rescans the
  /// sync folder against the cloud namespace and queues every divergent path
  /// as if its fs event had just arrived.
  void recover();

  /// In-flight transactions continued through their upload session by
  /// recover() instead of being re-sent from scratch.
  std::uint64_t resume_count() const { return resumes_; }
  /// Journaled transactions recovery discarded and restarted from scratch
  /// (resume disabled, session lost, or local content changed under them).
  std::uint64_t recovery_restart_count() const { return recovery_restarts_; }

  std::uint64_t commit_count() const { return commits_; }
  std::uint64_t exchange_count() const { return exchanges_; }

  /// Transient-fault attempts that were retried (any layer, any outcome).
  std::uint64_t retry_count() const { return retries_; }
  /// Sync transactions that exhausted their attempts and were put back into
  /// the dirty set for a later commit.
  std::uint64_t requeue_count() const { return requeues_; }
  /// Delta-sync commits that degraded to a full-file upload after repeated
  /// server rejections.
  std::uint64_t fallback_count() const { return fallbacks_; }
  /// Notification polls rejected by the metadata service (retried by the
  /// next poll tick).
  std::uint64_t poll_failure_count() const { return poll_failures_; }
  /// Downloads abandoned after exhausting their attempts.
  std::uint64_t failed_download_count() const { return failed_downloads_; }

  /// Sync-delay ("staleness") statistics in seconds: for each commit, how
  /// long the oldest batched update waited until it was safely in the cloud.
  /// This is the user-experience cost that bounds sync deferment (§6.1's
  /// T_max rationale: "a too large T_i will harm user experience").
  const running_stats& staleness_sec() const { return staleness_sec_; }
  std::uint64_t handshake_count() const { return conn_.handshakes(); }
  bool has_pending() const { return !dirty_.empty() || !wb_due_.empty(); }
  /// Paths with dirty cached blocks waiting out their write-back coalescing
  /// window (always 0 without a write-back cache tier).
  std::size_t write_back_pending() const { return wb_due_.size(); }
  /// Conflicted copies created while applying remote changes.
  std::uint64_t conflict_count() const { return conflicts_; }
  device_id device() const { return device_; }
  const sync_options& options() const { return opts_; }

  /// Replace the link mid-run (packet-filter experiments).
  void set_link(link_config link) {
    conn_.set_link(link);
    if (xfer_ != nullptr) xfer_->set_link(link);
  }

  /// The parallel transfer scheduler, when sync_options::transfer.enabled
  /// (nullptr otherwise) — observability for tools/transfer_stats and the
  /// frontier bench.
  const transfer_scheduler* transfer_sched() const { return xfer_.get(); }

  /// The per-update protocol chooser — observability for
  /// tools/protocol_stats and the selector bench (pick counts, calibration
  /// corrections, prediction-error histogram).
  const protocol_selector& selector() const { return selector_; }
  const protocol_selector_stats& protocol_stats() const {
    return selector_.stats();
  }

 private:
  struct pending_change {
    bool remove = false;
    bool existed_in_cloud = false;  ///< at the time the change was queued
    std::uint64_t estimate = 0;     ///< this entry's share of the pending-
                                    ///< update estimate (kept incrementally)
  };

  // shadow_entry / upload_action / upload_plan now live in
  // client/sync_protocol.hpp — protocols plan with the same types the
  // engine applies.

  /// Result of one sync transaction (exchange + server-side apply, retried
  /// under the retry_policy).
  enum class txn_outcome : std::uint8_t {
    ok,            ///< applied (possibly after retries)
    gave_up,       ///< attempts exhausted; nothing applied
    apply_failed,  ///< the server kept rejecting the apply (delta fallback)
  };

  void on_fs_event(const fs_event& ev);
  std::uint64_t pending_update_estimate() const { return pending_estimate_; }
  /// Recompute one dirty entry's estimate share and fold the delta into the
  /// running total (O(log n) per fs event instead of a full dirty_ scan).
  void refresh_entry_estimate(const std::string& path, pending_change& chg);
  /// Remove `path`'s share from the running estimate (entry being dropped).
  void drop_entry_estimate(const std::string& path);
  /// The planning context handed to protocols and the cost model: this
  /// client's profile, cloud, cache, and planning/journaling mode.
  planning_env planning_environment() const;
  void schedule_commit(sim_time at);
  void try_commit();
  sim_time commit_batch(sim_time start,
                        std::map<std::string, pending_change> batch);

  /// Decide how `path`'s current content reaches the cloud: conflict check,
  /// then protocol selection (service-default / forced / adaptive per
  /// sync_options::protocol) and the chosen protocol's transfer plan. Pure
  /// planning — no cloud or shadow state changes (those happen in
  /// apply_upload once the exchange lands). `force_full` vetoes the delta
  /// path (graceful degradation).
  upload_plan plan_upload(const std::string& path, sim_time at,
                          bool force_full = false);

  /// Apply a planned upload's cloud-side state change and adopt the shipped
  /// content as the new shadow. The cloud may reject it (transient_fault) —
  /// then nothing changed and the same plan can be re-applied.
  void apply_upload(const std::string& path, const upload_plan& plan,
                    sim_time at);

  /// Wire-payload size of `content` under compression `level`, with a fast
  /// path that skips compressing incompressible data (as real clients do).
  std::uint64_t shipped_size(byte_view content, int level) const;
  /// Rope variant: memoized under the same (content hash, size, level) key
  /// as the flat overload; in streaming mode a miss walks the rope through
  /// the stream sizer, in legacy mode it flattens for the compressor.
  std::uint64_t shipped_size(const content_ref& content, int level) const;

  /// One sync transaction: run the exchange, then `apply` (server-side
  /// commit), retrying transient faults under the retry policy. Successful
  /// transactions meter their app-level categories; failed attempts meter
  /// their wasted bytes as traffic_category::retry. `apply_fail_limit` > 0
  /// bails out with txn_outcome::apply_failed after that many server
  /// rejections (delta → full-file degradation); `never_give_up` keeps
  /// retrying past max_attempts (used for the BDS batch exchange, whose
  /// server-side applies have already landed). Returns the completion (or
  /// final failure) time.
  sim_time do_exchange(sim_time at, std::uint64_t up_payload,
                       std::uint64_t up_meta, std::uint64_t down_payload,
                       std::uint64_t down_meta,
                       const std::function<void()>& apply = {},
                       int apply_fail_limit = 0, txn_outcome* outcome = nullptr,
                       bool never_give_up = false);

  /// Backoff before retry number `attempt` (1-based): exponential with
  /// seeded jitter from the fault injector, capped at max_backoff.
  sim_time backoff_delay(int attempt) const;

  /// Put a failed change back into the dirty set and schedule a commit
  /// after the cool-down.
  void requeue(const std::string& path, const pending_change& chg);

  /// Full description of one application-level exchange: what rides it in
  /// each metered category, what the server applies, and how failure is
  /// handled. The journaled upload path threads its session-control bytes
  /// (traffic_category::resume) through here so every exchange — plain,
  /// chunk, or finalize — shares one retry/metering implementation.
  struct exchange_spec {
    std::uint64_t payload_up = 0;
    std::uint64_t meta_up = 0;
    std::uint64_t resume_up = 0;
    std::uint64_t payload_down = 0;
    std::uint64_t meta_down = 0;
    std::uint64_t resume_down = 0;
    std::uint64_t rehydrate_up = 0;    ///< cache-tier ranged-fetch request
    std::uint64_t rehydrate_down = 0;  ///< re-fetched block bytes
    std::function<void()> apply;
    int apply_fail_limit = 0;
    bool never_give_up = false;
  };

  /// The retry-loop core behind do_exchange (see its contract above).
  sim_time run_exchange(sim_time at, const exchange_spec& spec,
                        txn_outcome* outcome = nullptr);

  /// Throw client_crash when the injector schedules a kill at this site.
  /// Armed only on journaled clients — a crash without a journal would lose
  /// data by design, and the harness requires journal state to recover.
  void maybe_crash(crash_site site, sim_time at);

  /// One journaled, resumable sync transaction for an upsert: journal the
  /// plan, open an upload session, ship the wire payload in
  /// recovery.chunk_bytes ranges (kill sites armed at every stage), finalize
  /// with the ordinary commit, mark the journal committed. Falls back to a
  /// fresh full-file transaction when the server keeps rejecting a delta;
  /// aborts the journal record and requeues when the retry budget runs out.
  sim_time journaled_upload(const std::string& path, const pending_change& chg,
                            sim_time t, std::uint64_t oh_up,
                            std::uint64_t oh_down, bool force_full = false);

  /// Journaled tombstone delete (no payload, no session — just the
  /// plan/commit kill sites around the delete exchange).
  sim_time journaled_remove(const std::string& path, const pending_change& chg,
                            sim_time t, std::uint64_t oh_up,
                            std::uint64_t oh_down);

  /// Ship the un-acked chunk suffix of journal txn `txn` through its upload
  /// session (mid-chunk kill site before every send).
  sim_time send_session_chunks(std::uint64_t txn, resume_token token,
                               sim_time t, txn_outcome* oc,
                               bool never_give_up = false);

  /// Finalize a fully-acked session: the commit exchange (before-commit kill
  /// site first), then journal commit + checkpoint.
  sim_time finalize_session_upload(const std::string& path,
                                   const upload_plan& plan, std::uint64_t txn,
                                   resume_token token, sim_time t,
                                   std::uint64_t oh_up, std::uint64_t oh_down,
                                   txn_outcome* oc);

  /// apply_upload through a session finalize instead of a direct commit.
  void apply_upload_session(const std::string& path, const upload_plan& plan,
                            resume_token token, sim_time at);

  /// Resume (or discard) one in-flight journal record during recover().
  sim_time recover_in_flight(const journal_record& rec, sim_time t);

  /// Post-recovery rescan: diff the sync folder against the cloud namespace,
  /// adopt in-sync paths as shadows, queue divergent ones as dirty.
  void rescan_after_recovery();

  /// Cache-tier hooks (no-ops without opts_.cache_tier): every place the
  /// shadow is adopted installs the synced version; every place it is
  /// dropped invalidates.
  void install_cache_tier(const std::string& path, const content_ref& content);
  void drop_cache_tier(const std::string& path);

  /// Write-back interception for one upsert fs event: dirty the cached
  /// blocks and arm (or join) the path's coalescing window instead of
  /// queueing it into the dirty set. Returns false when the event must
  /// follow the normal write-through path.
  bool write_back_intercept(const fs_event& ev);
  /// (Re)schedule the single flush event at the earliest pending deadline.
  void schedule_wb_flush();
  /// Move every due write-back path into the dirty set and commit.
  void flush_write_back();

  sim_clock& clock_;
  memfs& fs_;
  cloud& cloud_;
  user_id user_;
  sync_options opts_;
  traffic_meter meter_;
  tcp_connection conn_;
  /// Parallel flows + FEC + hedging for striped session uploads; non-null
  /// only when opts_.transfer.enabled. Dies with the incarnation (its
  /// observation window is in-memory client state, like the dirty set).
  std::unique_ptr<transfer_scheduler> xfer_;
  std::unique_ptr<defer_policy> defer_;
  device_id device_;
  /// Per-update protocol chooser (client/protocol_cost.hpp). Its calibration
  /// state is in-memory client knowledge (like the dirty set) and dies with
  /// the incarnation.
  protocol_selector selector_;

  std::map<std::string, pending_change> dirty_;
  std::uint64_t pending_estimate_ = 0;  ///< sum of dirty_ estimate shares
  std::map<std::string, shadow_entry> shadow_;  ///< last-synced content
  std::map<std::string, std::uint64_t> base_version_;  ///< cloud version the
                                                       ///< shadow matches
  bool has_earliest_dirty_ = false;
  sim_time earliest_dirty_{};  ///< arrival of the oldest pending update
  running_stats staleness_sec_;
  sim_time network_busy_until_{};
  sim_time index_busy_until_{};
  /// Write-back bookkeeping: path -> flush deadline (first unflushed write
  /// + coalescing window; later writes join without re-arming). In-memory
  /// client state — a crash loses the schedule but not the dirty blocks,
  /// which the recovery rescan re-queues from the durable fs/cache.
  std::map<std::string, sim_time> wb_due_;
  event_id wb_flush_event_ = 0;
  event_id commit_event_ = 0;
  event_id poll_event_ = 0;       ///< pending periodic-poll tick
  std::size_t fs_subscription_ = 0;  ///< memfs observer token
  std::uint64_t resumes_ = 0;
  std::uint64_t recovery_restarts_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t exchanges_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t poll_failures_ = 0;
  std::uint64_t failed_downloads_ = 0;
  bool applying_remote_ = false;  ///< suppress self-caused fs events
};

}  // namespace cloudsync
