#include "client/defer_policy.hpp"

#include <algorithm>

#include "util/text_table.hpp"

namespace cloudsync {

std::string fixed_defer::name() const {
  return strfmt("fixed (%.1f s)", deferment_.sec());
}

sim_time adaptive_defer::next_fire(sim_time update_time, std::uint64_t) {
  // Δt_i: inter-update time. The first update after reset uses T_0 as a
  // stand-in since no gap has been observed yet.
  const sim_time delta_t =
      has_last_ ? update_time - last_update_ : params_.t_initial;
  has_last_ = true;
  last_update_ = update_time;

  // Eq. 2: T_i = min(T_{i-1}/2 + Δt_i/2 + ε, T_max).
  sim_time next = current_ * 0.5 + delta_t * 0.5 + params_.epsilon;
  if (next > params_.t_max) next = params_.t_max;
  current_ = next;
  return update_time + current_;
}

void adaptive_defer::reset() {
  current_ = params_.t_initial;
  has_last_ = false;
  last_update_ = {};
}

sim_time byte_counter_defer::next_fire(sim_time update_time,
                                       std::uint64_t pending_bytes) {
  if (!window_open_) {
    window_open_ = true;
    window_start_ = update_time;
  }
  if (pending_bytes >= params_.threshold_bytes) {
    // Enough accumulated: sync now; the engine drains the batch, and the
    // next update opens a fresh window.
    window_open_ = false;
    return update_time;
  }
  // Otherwise wait for more updates, bounded by the oldest pending update's
  // age. Never answer in the past: if the deadline already expired (the
  // engine was busy), fire right now.
  return std::max(update_time, window_start_ + params_.max_wait);
}

void byte_counter_defer::reset() {
  window_open_ = false;
  window_start_ = {};
}

std::unique_ptr<defer_policy> defer_config::instantiate() const {
  switch (policy) {
    case kind::none: return std::make_unique<no_defer>();
    case kind::fixed: return std::make_unique<fixed_defer>(fixed_deferment);
    case kind::adaptive: return std::make_unique<adaptive_defer>(adaptive);
    case kind::byte_counter:
      return std::make_unique<byte_counter_defer>(byte_counter);
  }
  return std::make_unique<no_defer>();
}

}  // namespace cloudsync
