#include "client/sync_engine.hpp"

#include <algorithm>
#include <cmath>

#include "chunking/rsync.hpp"
#include "compress/lzss.hpp"

namespace cloudsync {

/// A memoized IDS plan: the delta against one specific old version plus its
/// serialized wire form (what shipped_size() and the cloud consume).
struct delta_blueprint {
  file_delta delta;
  byte_buffer wire;
};

namespace {
/// App-level bytes for one dedup fingerprint on the wire (digest + framing).
constexpr std::uint64_t kFingerprintWireBytes = 40;
/// Cloud's per-fingerprint answer ("have it / need it").
constexpr std::uint64_t kFingerprintAnswerBytes = 8;
/// Tombstone record for a deletion (attribute update, §4.2).
constexpr std::uint64_t kDeleteRecordBytes = 300;
/// Per-file entry in a BDS delete/rename manifest.
constexpr std::uint64_t kBatchDeleteEntryBytes = 120;
/// Error status + body the server returns for a rejected request (5xx/429).
constexpr std::uint64_t kErrorResponseBytes = 512;
/// Wasted wire bytes of one rejected per-item commit inside a BDS batch.
constexpr std::uint64_t kBdsItemProbeBytes = 400;

// Process-wide memos for incremental sync. Seeded experiments reproduce the
// same shadow and edited contents across bench cells and services, so the
// per-block MD5 signature work and the rolling-window delta search recur
// identically; both are pure functions of their keys, so sharing the results
// (also across parallel_runner workers) cannot change any output.

using signature_ptr = std::shared_ptr<const file_signature>;

content_memo<signature_ptr>& signature_memo() {
  static content_memo<signature_ptr> memo;
  return memo;
}

using blueprint_ptr = std::shared_ptr<const delta_blueprint>;

content_memo<blueprint_ptr>& delta_memo() {
  static content_memo<blueprint_ptr> memo;
  return memo;
}

/// Salt identifying the old-file side of a delta: folds the signature's full
/// block structure so two different shadows can never share a memo entry.
std::uint64_t signature_salt(const file_signature& sig) {
  std::uint64_t h = mix64(sig.file_size ^
                          sig.block_size * 0x9e3779b97f4a7c15ULL);
  for (const block_signature& b : sig.blocks) {
    h = mix64(h ^ b.weak) ^ b.strong.prefix64();
  }
  return mix64(h);
}
}  // namespace

content_cache_stats signature_memo_stats() { return signature_memo().stats(); }
content_cache_stats delta_memo_stats() { return delta_memo().stats(); }
void clear_incremental_sync_memos() {
  signature_memo().clear();
  delta_memo().clear();
}

sync_client::sync_client(sim_clock& clock, memfs& fs, cloud& cl, user_id user,
                         sync_options opts)
    : clock_(clock),
      fs_(fs),
      cloud_(cl),
      user_(user),
      opts_(std::move(opts)),
      conn_(opts_.link, opts_.tcp, meter_),
      defer_(opts_.profile.defer.instantiate()),
      device_(cl.attach_device(user)) {
  if (opts_.warm_connection) {
    conn_.exchange(clock_.now(), 64, 64);
    meter_.reset();
  }
  // Attach the injector only after the unmetered warm-up exchange: client
  // start-up is outside the failure model (and constructors must not throw
  // transient faults).
  conn_.set_fault_injector(opts_.faults);
  fs_.subscribe([this](const fs_event& ev) { on_fs_event(ev); });
}

void sync_client::on_fs_event(const fs_event& ev) {
  // Changes this client is applying on behalf of the cloud must not loop
  // back into the upload pipeline.
  if (applying_remote_) return;
  const sim_time now = clock_.now();

  auto queue_upsert = [&](const std::string& path) {
    pending_change& chg = dirty_[path];
    chg.remove = false;
    const file_manifest* man = cloud_.manifest(user_, path);
    chg.existed_in_cloud = man != nullptr && !man->deleted;
    refresh_entry_estimate(path, chg);
  };
  auto queue_remove = [&](const std::string& path) {
    const file_manifest* man = cloud_.manifest(user_, path);
    const bool in_cloud = man != nullptr && !man->deleted;
    if (!in_cloud && !dirty_.contains(path)) return;  // never synced
    if (!in_cloud) {
      drop_entry_estimate(path);
      dirty_.erase(path);  // created and deleted within one defer window
      return;
    }
    pending_change& chg = dirty_[path];
    chg.remove = true;
    chg.existed_in_cloud = true;
    refresh_entry_estimate(path, chg);
  };

  switch (ev.op) {
    case fs_event::kind::created:
    case fs_event::kind::modified:
      queue_upsert(ev.path);
      break;
    case fs_event::kind::removed:
      queue_remove(ev.path);
      break;
    case fs_event::kind::renamed:
      queue_remove(ev.old_path);
      queue_upsert(ev.path);
      break;
  }

  // Condition 2 (§6.2): metadata computation queues up on the client.
  const sim_time start = std::max(index_busy_until_, now);
  index_busy_until_ = start + opts_.hardware.index_time(ev.size_after);

  if (dirty_.empty()) return;
  if (!has_earliest_dirty_) {
    has_earliest_dirty_ = true;
    earliest_dirty_ = now;
  }
  schedule_commit(defer_->next_fire(now, pending_update_estimate()));
}

void sync_client::refresh_entry_estimate(const std::string& path,
                                         pending_change& chg) {
  // Rough size of this file's not-yet-synced delta: how far the local size
  // drifted from the last-synced (shadow) size. Good enough for byte-counter
  // (UDS) deferment decisions. Maintained incrementally — one shadow lookup
  // per fs event for the touched path, instead of a full dirty_ scan.
  std::uint64_t e;
  if (chg.remove) {
    e = 256;  // tombstone record
  } else {
    const auto shadow_it = shadow_.find(path);
    const std::uint64_t shadow_size =
        shadow_it == shadow_.end() ? 0 : shadow_it->second.content.size();
    const std::uint64_t local = fs_.exists(path) ? fs_.size(path) : 0;
    e = local > shadow_size ? local - shadow_size : shadow_size - local;
    if (local == shadow_size && local > 0) e += 1;  // in-place edit
  }
  pending_estimate_ += e - chg.estimate;  // unsigned delta; wraps correctly
  chg.estimate = e;
}

void sync_client::drop_entry_estimate(const std::string& path) {
  const auto it = dirty_.find(path);
  if (it != dirty_.end()) pending_estimate_ -= it->second.estimate;
}

void sync_client::schedule_commit(sim_time at) {
  if (commit_event_ != 0) clock_.cancel(commit_event_);
  commit_event_ = clock_.schedule_at(at, [this] { try_commit(); });
}

void sync_client::try_commit() {
  commit_event_ = 0;
  if (dirty_.empty()) return;

  const sim_time now = clock_.now();
  const sim_time gate = std::max(network_busy_until_, index_busy_until_);
  if (now < gate) {
    // §6.2: previous transfer or indexing still running — the batch keeps
    // accumulating (natural batching on poor networks / slow hardware).
    schedule_commit(gate);
    return;
  }

  auto batch = std::move(dirty_);
  dirty_.clear();
  pending_estimate_ = 0;
  ++commits_;
  // Capture the batch's staleness anchor before commit_batch runs: a failed
  // transaction may requeue its change into dirty_ and re-arm the anchor for
  // the follow-up commit.
  const bool had_earliest = has_earliest_dirty_;
  const sim_time batch_earliest = earliest_dirty_;
  has_earliest_dirty_ = false;
  // The client engine itself needs time to finish a commit (bookkeeping,
  // polling, server turnaround) before the next one can start — the
  // service-specific part of §6.2's natural batching.
  network_busy_until_ =
      commit_batch(now, std::move(batch)) + opts_.profile.commit_processing;
  defer_->on_commit();
  if (had_earliest) {
    staleness_sec_.add((network_busy_until_ - batch_earliest).sec());
  }
}

sim_time sync_client::commit_batch(
    sim_time start, std::map<std::string, pending_change> batch) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  sim_time t = start;

  if (mp.batched_sync && batch.size() > 1) {
    // BDS: one exchange carries the whole batch — one batch overhead plus a
    // small manifest entry per file. Server-side applies are per-item commits
    // made while the batch is assembled, so a dedup decision can depend on
    // earlier items exactly as it does without faults; a rejected item
    // retries with backoff and meters a small wasted probe. The batch
    // manifest then ships in one exchange, retried until it lands (its
    // applies are already durable server-side).
    std::uint64_t up_payload = 0;
    std::uint64_t up_meta = mp.bds_batch_overhead_up;
    std::uint64_t down_meta = mp.bds_batch_overhead_down;
    for (const auto& [path, chg] : batch) {
      upload_plan plan;
      if (!chg.remove) plan = plan_upload(path, t);
      int rejections = 0;
      bool applied = false;
      for (int attempt = 1;; ++attempt) {
        try {
          if (chg.remove) {
            cloud_.delete_file(user_, device_, path, t);
            shadow_.erase(path);
            base_version_.erase(path);
          } else {
            apply_upload(path, plan, t);
          }
          applied = true;
          break;
        } catch (const transient_fault& f) {
          ++retries_;
          meter_.record(direction::up, traffic_category::retry,
                        kBdsItemProbeBytes);
          meter_.record(direction::down, traffic_category::retry,
                        kErrorResponseBytes);
          if (!chg.remove && plan.act == upload_action::delta &&
              ++rejections >= opts_.retry.delta_fallback_after) {
            // Graceful degradation: the server keeps rejecting the patch —
            // re-plan the item as a full-file upload.
            ++fallbacks_;
            plan = plan_upload(path, t, /*force_full=*/true);
          }
          if (attempt >= opts_.retry.max_attempts) break;
          sim_time next = t + backoff_delay(attempt);
          if (f.retry_after() > next) next = f.retry_after();
          t = next;
        }
      }
      if (!applied) {
        requeue(path, chg);
        continue;
      }
      if (chg.remove) {
        up_meta += kBatchDeleteEntryBytes;
      } else {
        up_payload += plan.payload_up;
        up_meta += plan.metadata_up + mp.bds_per_file_bytes;
        down_meta += plan.metadata_down;
      }
    }
    return do_exchange(t, up_payload, up_meta, 0, down_meta, {}, 0, nullptr,
                       /*never_give_up=*/true);
  }

  // Non-BDS: every file is its own sync transaction. The first transaction
  // of a burst pays the full per-event overhead; follow-ups within the same
  // burst ride the established session state and pay the burst overhead.
  bool first = true;
  for (const auto& [path, chg] : batch) {
    const std::uint64_t oh_up = first ? mp.base_overhead_up
                                      : mp.burst_overhead_up;
    const std::uint64_t oh_down = first ? mp.base_overhead_down
                                        : mp.burst_overhead_down;
    first = false;
    txn_outcome oc = txn_outcome::ok;
    if (chg.remove) {
      const sim_time at = t;
      t = do_exchange(t, 0, oh_up + kDeleteRecordBytes, 0, oh_down,
                      [&, at] {
                        cloud_.delete_file(user_, device_, path, at);
                        shadow_.erase(path);
                        base_version_.erase(path);
                      },
                      0, &oc);
      if (oc != txn_outcome::ok) requeue(path, chg);
      continue;
    }
    upload_plan plan = plan_upload(path, t);
    const sim_time at = t;
    t = do_exchange(t, plan.payload_up, plan.metadata_up + oh_up, 0,
                    plan.metadata_down + oh_down,
                    [&, at] { apply_upload(path, plan, at); },
                    plan.act == upload_action::delta
                        ? opts_.retry.delta_fallback_after
                        : 0,
                    &oc);
    if (oc == txn_outcome::apply_failed) {
      // Graceful degradation: the server keeps rejecting the delta — ship
      // the whole file instead (a plain PUT needs no patch machinery).
      ++fallbacks_;
      plan = plan_upload(path, t, /*force_full=*/true);
      const sim_time at2 = t;
      t = do_exchange(t, plan.payload_up, plan.metadata_up + oh_up, 0,
                      plan.metadata_down + oh_down,
                      [&, at2] { apply_upload(path, plan, at2); }, 0, &oc);
    }
    if (oc != txn_outcome::ok) requeue(path, chg);
  }
  return t;
}

void sync_client::requeue(const std::string& path, const pending_change& chg) {
  ++requeues_;
  pending_change& back = dirty_[path];
  back.remove = chg.remove;
  back.existed_in_cloud = chg.existed_in_cloud;
  refresh_entry_estimate(path, back);
  if (!has_earliest_dirty_) {
    has_earliest_dirty_ = true;
    earliest_dirty_ = clock_.now();
  }
  schedule_commit(clock_.now() + opts_.retry.requeue_cooldown);
}

sim_time sync_client::backoff_delay(int attempt) const {
  const retry_policy& rp = opts_.retry;
  double d =
      rp.base_backoff.sec() * std::pow(rp.backoff_multiplier, attempt - 1);
  d = std::min(d, rp.max_backoff.sec());
  if (opts_.faults != nullptr && rp.jitter > 0) {
    // Seeded jitter decorrelates retry storms without breaking determinism.
    d *= 1.0 + rp.jitter * (2.0 * opts_.faults->jitter01() - 1.0);
  }
  return sim_time::from_sec(d);
}

std::uint64_t wire_payload_size(byte_view content, int level) {
  if (level <= 0 || content.empty()) return content.size();
  // Real clients skip the compressor when a sample looks incompressible.
  if (content.size() >= 4096 &&
      estimate_compression_ratio(content, 16 * 1024) < 1.05) {
    return content.size();
  }
  return lzss_compress(content, {.level = level}).size();
}

std::uint64_t sync_client::shipped_size(byte_view content, int level) const {
  if (level <= 0 || content.empty()) return content.size();
  if (opts_.cache == nullptr) return wire_payload_size(content, level);
  return opts_.cache->shipped_size(content, level, &wire_payload_size);
}

const file_signature& sync_client::shadow_signature(shadow_entry& sh) const {
  const std::size_t block_size = opts_.profile.delta_chunk_size;
  if (!sh.sig || sh.sig_block_size != block_size) {
    auto sign = [&]() -> signature_ptr {
      return std::make_shared<const file_signature>(
          compute_signature(sh.content, block_size));
    };
    sh.sig = opts_.cache != nullptr
                 ? signature_memo().get_or_compute(sh.content, block_size,
                                                   sign)
                 : sign();
    sh.sig_block_size = block_size;
  }
  return *sh.sig;
}

sync_client::upload_plan sync_client::plan_upload(const std::string& path,
                                                  sim_time at,
                                                  bool force_full) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  upload_plan plan;

  const byte_view content = fs_.read(path);
  const file_manifest* man = cloud_.manifest(user_, path);
  const bool in_cloud = man != nullptr && !man->deleted;
  const auto shadow_it = shadow_.find(path);

  // Parent-revision check: if the cloud moved past the version our local
  // edits were based on (another device committed first), do not clobber
  // it — divert our content to a conflicted copy, which syncs as a normal
  // new file, and let the next poll fetch the winning version.
  if (in_cloud) {
    const auto base = base_version_.find(path);
    if (base != base_version_.end() && man->version > base->second) {
      const std::string conflict = path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        fs_.create(conflict, byte_buffer(content.begin(), content.end()),
                   at);
      }
      ++conflicts_;
      return plan;  // nothing shipped for the contested path
    }
  }

  plan.dedup_commit =
      mp.dedup_enabled &&
      cloud_.dedup().policy().granularity != dedup_granularity::none;

  // 1. Incremental (rsync) sync — PC clients of Dropbox/SugarSync (§4.3).
  //    Requires the previous synced version locally (the shadow); web and
  //    mobile clients never have one. `force_full` skips this path after
  //    repeated server-side delta rejections.
  if (!force_full && mp.incremental_sync && in_cloud &&
      shadow_it != shadow_.end() && !shadow_it->second.content.empty()) {
    shadow_entry& sh = shadow_it->second;
    const file_signature& sig = shadow_signature(sh);
    auto plan_delta = [&]() -> blueprint_ptr {
      auto bp = std::make_shared<delta_blueprint>();
      bp->delta = compute_delta(sig, content);
      bp->wire = serialize_delta(bp->delta);
      return bp;
    };
    // Key: the new content (hashed) + the old file's identity (salt), which
    // together determine the delta exactly.
    plan.blueprint = opts_.cache != nullptr
                         ? delta_memo().get_or_compute(
                               content, signature_salt(sig), plan_delta)
                         : plan_delta();
    // The delta's literal regions are compressed like any upload.
    plan.payload_up =
        shipped_size(plan.blueprint->wire, mp.upload_compression_level);
    plan.metadata_up = static_cast<std::uint64_t>(
        static_cast<double>(plan.payload_up) * mp.per_payload_metadata);
    plan.act = upload_action::delta;
    return plan;
  }

  // 2. Full-file upload, with dedup if this method participates (§5.2).
  std::uint64_t payload = 0;
  if (plan.dedup_commit) {
    const dedup_result res = cloud_.dedup().analyze(user_, content);
    plan.metadata_up += res.fingerprints_sent * kFingerprintWireBytes;
    plan.metadata_down += res.fingerprints_sent * kFingerprintAnswerBytes;
    for (const chunk_ref& c : res.new_chunks) {
      payload += shipped_size(slice(content, c), mp.upload_compression_level);
    }
  } else {
    payload = shipped_size(content, mp.upload_compression_level);
  }
  plan.payload_up = payload;
  plan.metadata_up += static_cast<std::uint64_t>(
      static_cast<double>(payload) * mp.per_payload_metadata);
  plan.act = upload_action::full;
  return plan;
}

void sync_client::apply_upload(const std::string& path,
                               const upload_plan& plan, sim_time at) {
  if (plan.act == upload_action::none) return;
  const byte_view content = fs_.read(path);
  if (plan.act == upload_action::delta) {
    cloud_.apply_file_delta(user_, device_, path, plan.blueprint->delta, at);
  } else {
    cloud_.put_file(user_, device_, path,
                    byte_buffer(content.begin(), content.end()),
                    plan.payload_up, at);
  }
  // The commit landed — nothing below can throw, so a retried transaction
  // never observes a half-applied one.
  if (plan.dedup_commit) {
    // Keep the dedup index current: the new content is now stored in the
    // cloud and future identical uploads must be able to match it.
    cloud_.dedup().commit(user_, content);
  }
  base_version_[path] = cloud_.manifest(user_, path)->version;
  shadow_entry& sh = shadow_[path];
  sh.content.assign(content.begin(), content.end());  // reuses capacity
  sh.sig.reset();  // the memoized signature no longer matches
}

sim_time sync_client::do_exchange(sim_time at, std::uint64_t up_payload,
                                  std::uint64_t up_meta,
                                  std::uint64_t down_payload,
                                  std::uint64_t down_meta,
                                  const std::function<void()>& apply,
                                  int apply_fail_limit, txn_outcome* outcome,
                                  bool never_give_up) {
  const std::uint64_t up_app =
      up_payload + up_meta + opts_.http.request_header_bytes;
  const std::uint64_t down_app =
      down_payload + down_meta + opts_.http.response_header_bytes;
  sim_time start = at;
  int apply_failures = 0;
  for (int attempt = 1;; ++attempt) {
    sim_time done{};
    bool exchanged = false;
    try {
      done = conn_.exchange(start, up_app, down_app);
      exchanged = true;
      if (apply) apply();  // server-side commit; may reject the request
      ++exchanges_;
      meter_.record(direction::up, traffic_category::payload, up_payload);
      meter_.record(direction::up, traffic_category::metadata, up_meta);
      meter_.record(direction::down, traffic_category::payload, down_payload);
      meter_.record(direction::down, traffic_category::metadata, down_meta);
      meter_.record(direction::up, traffic_category::notification,
                    opts_.http.request_header_bytes);
      meter_.record(direction::down, traffic_category::notification,
                    opts_.http.response_header_bytes);
      if (outcome != nullptr) *outcome = txn_outcome::ok;
      return done;
    } catch (const transient_fault& f) {
      ++retries_;
      const sim_time failed_at = exchanged ? done : f.at();
      if (exchanged) {
        // The request reached the server and was rejected: the app bytes it
        // carried were wasted, plus a small error response. (The connection
        // already metered the wire transport bytes as genuine use.)
        meter_.record(direction::up, traffic_category::retry, up_app);
        meter_.record(direction::down, traffic_category::retry,
                      kErrorResponseBytes);
        if (apply_fail_limit > 0 && ++apply_failures >= apply_fail_limit) {
          if (outcome != nullptr) *outcome = txn_outcome::apply_failed;
          return failed_at;
        }
      }
      if (!never_give_up && attempt >= opts_.retry.max_attempts) {
        if (outcome != nullptr) *outcome = txn_outcome::gave_up;
        return failed_at;
      }
      start = failed_at + backoff_delay(attempt);
      if (f.retry_after() > start) start = f.retry_after();
    }
  }
}

void sync_client::download(const std::string& path) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  // byte_view plumbing: the whole-object substrate serves a zero-copy view
  // of the stored object; only the chunk substrate must materialize into an
  // owned buffer (which we then move into the local fs instead of copying).
  std::optional<byte_view> view = cloud_.file_content_view(user_, path);
  std::optional<byte_buffer> owned;
  if (!view) {
    owned = cloud_.file_content(user_, path);
    if (!owned) return;
  }
  const byte_view content = view ? *view : byte_view{*owned};

  const std::uint64_t payload =
      shipped_size(content, mp.download_compression_level);
  const std::uint64_t down_meta =
      mp.base_overhead_down / 4 +
      static_cast<std::uint64_t>(static_cast<double>(payload) *
                                 mp.per_payload_metadata);
  const std::uint64_t up_meta = mp.base_overhead_up / 4;

  const sim_time start = std::max(clock_.now(), network_busy_until_);
  txn_outcome oc = txn_outcome::ok;
  network_busy_until_ = do_exchange(start, 0, up_meta, payload, down_meta, {},
                                    0, &oc);
  if (oc != txn_outcome::ok) {
    // Attempts exhausted: keep the stale local copy; a later notification
    // or explicit download retries the path.
    ++failed_downloads_;
    return;
  }

  // Adopt the remote version as the synced state first (the shadow copy must
  // happen before `owned` is moved into the fs below), then materialise it
  // locally (suppressed: our own write must not re-enter the upload
  // pipeline).
  shadow_entry& sh = shadow_[path];
  sh.content.assign(content.begin(), content.end());
  sh.sig.reset();
  byte_buffer local = owned ? std::move(*owned)
                            : byte_buffer(content.begin(), content.end());
  applying_remote_ = true;
  if (fs_.exists(path)) {
    fs_.write(path, std::move(local), clock_.now());
  } else {
    fs_.create(path, std::move(local), clock_.now());
  }
  applying_remote_ = false;
  const file_manifest* man = cloud_.manifest(user_, path);
  if (man != nullptr) base_version_[path] = man->version;
}

std::size_t sync_client::poll_remote_changes() {
  std::vector<change_notification> notes;
  try {
    notes = cloud_.metadata().fetch_notifications(user_, device_);
  } catch (const transient_fault&) {
    // Throttled/failed poll: the queue is untouched, the next poll retries;
    // only the rejected request itself was wasted.
    ++poll_failures_;
    ++retries_;
    meter_.record(direction::up, traffic_category::retry,
                  64 + opts_.http.request_header_bytes);
    meter_.record(direction::down, traffic_category::retry,
                  kErrorResponseBytes);
    return 0;
  }
  // The notification poll itself is a small exchange.
  const sim_time start = std::max(clock_.now(), network_busy_until_);
  network_busy_until_ =
      do_exchange(start, 0, 64, 0, 120 * std::max<std::size_t>(1, notes.size()));
  std::size_t applied = 0;
  for (const change_notification& note : notes) {
    if (note.deleted) {
      // Remote deletion: remove the local copy unless it carries unsynced
      // edits (then the local version survives and will re-upload).
      if (fs_.exists(note.path) && !dirty_.contains(note.path)) {
        applying_remote_ = true;
        fs_.remove(note.path, clock_.now());
        applying_remote_ = false;
      }
      shadow_.erase(note.path);
      base_version_.erase(note.path);
      ++applied;
      continue;
    }
    if (dirty_.contains(note.path) && fs_.exists(note.path)) {
      // Divergent edits on both sides: the remote version wins the path,
      // the local edits survive as a conflicted copy that syncs normally
      // (the Dropbox behaviour).
      const std::string conflict = note.path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        const byte_view local = fs_.read(note.path);
        fs_.create(conflict, byte_buffer(local.begin(), local.end()),
                   clock_.now());
      }
      drop_entry_estimate(note.path);
      dirty_.erase(note.path);
      ++conflicts_;
    }
    download(note.path);
    ++applied;
  }
  return applied;
}

void sync_client::enable_periodic_poll(sim_time interval, sim_time until) {
  const sim_time next = clock_.now() + interval;
  if (next > until) return;
  clock_.schedule_at(next, [this, interval, until] {
    poll_remote_changes();
    enable_periodic_poll(interval, until);
  });
}

sim_time sync_client::busy_until() const {
  return std::max(network_busy_until_, index_busy_until_);
}

}  // namespace cloudsync
