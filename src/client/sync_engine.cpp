#include "client/sync_engine.hpp"

#include <algorithm>

#include "chunking/rsync.hpp"
#include "compress/lzss.hpp"

namespace cloudsync {

namespace {
/// App-level bytes for one dedup fingerprint on the wire (digest + framing).
constexpr std::uint64_t kFingerprintWireBytes = 40;
/// Cloud's per-fingerprint answer ("have it / need it").
constexpr std::uint64_t kFingerprintAnswerBytes = 8;
/// Tombstone record for a deletion (attribute update, §4.2).
constexpr std::uint64_t kDeleteRecordBytes = 300;
/// Per-file entry in a BDS delete/rename manifest.
constexpr std::uint64_t kBatchDeleteEntryBytes = 120;
}  // namespace

sync_client::sync_client(sim_clock& clock, memfs& fs, cloud& cl, user_id user,
                         sync_options opts)
    : clock_(clock),
      fs_(fs),
      cloud_(cl),
      user_(user),
      opts_(std::move(opts)),
      conn_(opts_.link, opts_.tcp, meter_),
      defer_(opts_.profile.defer.instantiate()),
      device_(cl.attach_device(user)) {
  if (opts_.warm_connection) {
    conn_.exchange(clock_.now(), 64, 64);
    meter_.reset();
  }
  fs_.subscribe([this](const fs_event& ev) { on_fs_event(ev); });
}

void sync_client::on_fs_event(const fs_event& ev) {
  // Changes this client is applying on behalf of the cloud must not loop
  // back into the upload pipeline.
  if (applying_remote_) return;
  const sim_time now = clock_.now();

  auto queue_upsert = [&](const std::string& path) {
    pending_change& chg = dirty_[path];
    chg.remove = false;
    const file_manifest* man = cloud_.manifest(user_, path);
    chg.existed_in_cloud = man != nullptr && !man->deleted;
  };
  auto queue_remove = [&](const std::string& path) {
    const file_manifest* man = cloud_.manifest(user_, path);
    const bool in_cloud = man != nullptr && !man->deleted;
    if (!in_cloud && !dirty_.contains(path)) return;  // never synced
    if (!in_cloud) {
      dirty_.erase(path);  // created and deleted within one defer window
      return;
    }
    dirty_[path] = {true, true};
  };

  switch (ev.op) {
    case fs_event::kind::created:
    case fs_event::kind::modified:
      queue_upsert(ev.path);
      break;
    case fs_event::kind::removed:
      queue_remove(ev.path);
      break;
    case fs_event::kind::renamed:
      queue_remove(ev.old_path);
      queue_upsert(ev.path);
      break;
  }

  // Condition 2 (§6.2): metadata computation queues up on the client.
  const sim_time start = std::max(index_busy_until_, now);
  index_busy_until_ = start + opts_.hardware.index_time(ev.size_after);

  if (dirty_.empty()) return;
  if (!has_earliest_dirty_) {
    has_earliest_dirty_ = true;
    earliest_dirty_ = now;
  }
  schedule_commit(defer_->next_fire(now, pending_update_estimate()));
}

std::uint64_t sync_client::pending_update_estimate() const {
  // Rough size of the not-yet-synced delta: per dirty file, how far the
  // local size drifted from the last-synced (shadow) size. Good enough for
  // byte-counter (UDS) deferment decisions.
  std::uint64_t total = 0;
  for (const auto& [path, chg] : dirty_) {
    const auto shadow_it = shadow_.find(path);
    const std::uint64_t shadow_size =
        shadow_it == shadow_.end() ? 0 : shadow_it->second.size();
    if (chg.remove) {
      total += 256;  // tombstone record
      continue;
    }
    const std::uint64_t local = fs_.exists(path) ? fs_.size(path) : 0;
    total += local > shadow_size ? local - shadow_size
                                 : shadow_size - local;
    if (local == shadow_size && local > 0) total += 1;  // in-place edit
  }
  return total;
}

void sync_client::schedule_commit(sim_time at) {
  if (commit_event_ != 0) clock_.cancel(commit_event_);
  commit_event_ = clock_.schedule_at(at, [this] { try_commit(); });
}

void sync_client::try_commit() {
  commit_event_ = 0;
  if (dirty_.empty()) return;

  const sim_time now = clock_.now();
  const sim_time gate = std::max(network_busy_until_, index_busy_until_);
  if (now < gate) {
    // §6.2: previous transfer or indexing still running — the batch keeps
    // accumulating (natural batching on poor networks / slow hardware).
    schedule_commit(gate);
    return;
  }

  auto batch = std::move(dirty_);
  dirty_.clear();
  ++commits_;
  // The client engine itself needs time to finish a commit (bookkeeping,
  // polling, server turnaround) before the next one can start — the
  // service-specific part of §6.2's natural batching.
  network_busy_until_ =
      commit_batch(now, std::move(batch)) + opts_.profile.commit_processing;
  defer_->on_commit();
  if (has_earliest_dirty_) {
    staleness_sec_.add((network_busy_until_ - earliest_dirty_).sec());
    has_earliest_dirty_ = false;
  }
}

sim_time sync_client::commit_batch(
    sim_time start, std::map<std::string, pending_change> batch) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  sim_time t = start;

  if (mp.batched_sync && batch.size() > 1) {
    // BDS: one exchange carries the whole batch — one batch overhead plus a
    // small manifest entry per file.
    std::uint64_t up_payload = 0;
    std::uint64_t up_meta = mp.bds_batch_overhead_up;
    std::uint64_t down_meta = mp.bds_batch_overhead_down;
    for (const auto& [path, chg] : batch) {
      if (chg.remove) {
        up_meta += kBatchDeleteEntryBytes;
        cloud_.delete_file(user_, device_, path, t);
        shadow_.erase(path);
        base_version_.erase(path);
        continue;
      }
      const upload_plan plan = plan_and_apply_upload(path, t);
      up_payload += plan.payload_up;
      up_meta += plan.metadata_up + mp.bds_per_file_bytes;
      down_meta += plan.metadata_down;
    }
    return do_exchange(t, up_payload, up_meta, 0, down_meta);
  }

  // Non-BDS: every file is its own sync transaction. The first transaction
  // of a burst pays the full per-event overhead; follow-ups within the same
  // burst ride the established session state and pay the burst overhead.
  bool first = true;
  for (const auto& [path, chg] : batch) {
    const std::uint64_t oh_up = first ? mp.base_overhead_up
                                      : mp.burst_overhead_up;
    const std::uint64_t oh_down = first ? mp.base_overhead_down
                                        : mp.burst_overhead_down;
    first = false;
    if (chg.remove) {
      cloud_.delete_file(user_, device_, path, t);
      shadow_.erase(path);
      base_version_.erase(path);
      t = do_exchange(t, 0, oh_up + kDeleteRecordBytes, 0, oh_down);
      continue;
    }
    const upload_plan plan = plan_and_apply_upload(path, t);
    t = do_exchange(t, plan.payload_up, plan.metadata_up + oh_up, 0,
                    plan.metadata_down + oh_down);
  }
  return t;
}

std::uint64_t sync_client::shipped_size(byte_view content, int level) const {
  if (level <= 0 || content.empty()) return content.size();
  // Real clients skip the compressor when a sample looks incompressible.
  if (content.size() >= 4096 &&
      estimate_compression_ratio(content, 16 * 1024) < 1.05) {
    return content.size();
  }
  return lzss_compress(content, {.level = level}).size();
}

sync_client::upload_plan sync_client::plan_and_apply_upload(
    const std::string& path, sim_time at) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  upload_plan plan;

  const byte_view content = fs_.read(path);
  const file_manifest* man = cloud_.manifest(user_, path);
  const bool in_cloud = man != nullptr && !man->deleted;
  const auto shadow_it = shadow_.find(path);

  // Parent-revision check: if the cloud moved past the version our local
  // edits were based on (another device committed first), do not clobber
  // it — divert our content to a conflicted copy, which syncs as a normal
  // new file, and let the next poll fetch the winning version.
  if (in_cloud) {
    const auto base = base_version_.find(path);
    if (base != base_version_.end() && man->version > base->second) {
      const std::string conflict = path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        fs_.create(conflict, byte_buffer(content.begin(), content.end()),
                   at);
      }
      ++conflicts_;
      return plan;  // nothing shipped for the contested path
    }
  }

  // 1. Incremental (rsync) sync — PC clients of Dropbox/SugarSync (§4.3).
  //    Requires the previous synced version locally (the shadow); web and
  //    mobile clients never have one.
  if (mp.incremental_sync && in_cloud && shadow_it != shadow_.end() &&
      !shadow_it->second.empty()) {
    const file_signature sig =
        compute_signature(shadow_it->second, opts_.profile.delta_chunk_size);
    file_delta delta = compute_delta(sig, content);
    const byte_buffer wire = serialize_delta(delta);
    // The delta's literal regions are compressed like any upload.
    plan.payload_up = shipped_size(wire, mp.upload_compression_level);
    plan.metadata_up = static_cast<std::uint64_t>(
        static_cast<double>(plan.payload_up) * mp.per_payload_metadata);
    cloud_.apply_file_delta(user_, device_, path, delta, at);
    base_version_[path] = cloud_.manifest(user_, path)->version;
    // Keep the dedup index current: the post-delta content is now stored in
    // the cloud and future identical uploads must be able to match it.
    if (mp.dedup_enabled &&
        cloud_.dedup().policy().granularity != dedup_granularity::none) {
      cloud_.dedup().commit(user_, content);
    }
    shadow_it->second.assign(content.begin(), content.end());
    return plan;
  }

  // 2. Full-file upload, with dedup if this method participates (§5.2).
  const dedup_policy& dp = cloud_.dedup().policy();
  std::uint64_t payload = 0;
  if (mp.dedup_enabled && dp.granularity != dedup_granularity::none) {
    const dedup_result res = cloud_.dedup().analyze(user_, content);
    plan.metadata_up += res.fingerprints_sent * kFingerprintWireBytes;
    plan.metadata_down += res.fingerprints_sent * kFingerprintAnswerBytes;
    for (const chunk_ref& c : res.new_chunks) {
      payload += shipped_size(slice(content, c), mp.upload_compression_level);
    }
    cloud_.dedup().commit(user_, content);
  } else {
    payload = shipped_size(content, mp.upload_compression_level);
  }
  plan.payload_up = payload;
  plan.metadata_up += static_cast<std::uint64_t>(
      static_cast<double>(payload) * mp.per_payload_metadata);

  cloud_.put_file(user_, device_, path,
                  byte_buffer(content.begin(), content.end()), payload, at);
  base_version_[path] = cloud_.manifest(user_, path)->version;
  shadow_[path] = byte_buffer(content.begin(), content.end());
  return plan;
}

sim_time sync_client::do_exchange(sim_time at, std::uint64_t up_payload,
                                  std::uint64_t up_meta,
                                  std::uint64_t down_payload,
                                  std::uint64_t down_meta) {
  ++exchanges_;
  meter_.record(direction::up, traffic_category::payload, up_payload);
  meter_.record(direction::up, traffic_category::metadata, up_meta);
  meter_.record(direction::down, traffic_category::payload, down_payload);
  meter_.record(direction::down, traffic_category::metadata, down_meta);
  meter_.record(direction::up, traffic_category::notification,
                opts_.http.request_header_bytes);
  meter_.record(direction::down, traffic_category::notification,
                opts_.http.response_header_bytes);
  return conn_.exchange(
      at, up_payload + up_meta + opts_.http.request_header_bytes,
      down_payload + down_meta + opts_.http.response_header_bytes);
}

void sync_client::download(const std::string& path) {
  const method_profile& mp = opts_.profile.method(opts_.method);
  const auto content = cloud_.file_content(user_, path);
  if (!content) return;

  const std::uint64_t payload =
      shipped_size(*content, mp.download_compression_level);
  const std::uint64_t down_meta =
      mp.base_overhead_down / 4 +
      static_cast<std::uint64_t>(static_cast<double>(payload) *
                                 mp.per_payload_metadata);
  const std::uint64_t up_meta = mp.base_overhead_up / 4;

  const sim_time start = std::max(clock_.now(), network_busy_until_);
  network_busy_until_ = do_exchange(start, 0, up_meta, payload, down_meta);

  // Materialise the remote version locally (suppressed: our own write must
  // not re-enter the upload pipeline) and adopt it as the synced state.
  applying_remote_ = true;
  if (fs_.exists(path)) {
    fs_.write(path, byte_buffer(content->begin(), content->end()),
              clock_.now());
  } else {
    fs_.create(path, byte_buffer(content->begin(), content->end()),
               clock_.now());
  }
  applying_remote_ = false;
  shadow_[path] = byte_buffer(content->begin(), content->end());
  const file_manifest* man = cloud_.manifest(user_, path);
  if (man != nullptr) base_version_[path] = man->version;
}

std::size_t sync_client::poll_remote_changes() {
  const auto notes = cloud_.metadata().fetch_notifications(user_, device_);
  // The notification poll itself is a small exchange.
  const sim_time start = std::max(clock_.now(), network_busy_until_);
  network_busy_until_ =
      do_exchange(start, 0, 64, 0, 120 * std::max<std::size_t>(1, notes.size()));
  std::size_t applied = 0;
  for (const change_notification& note : notes) {
    if (note.deleted) {
      // Remote deletion: remove the local copy unless it carries unsynced
      // edits (then the local version survives and will re-upload).
      if (fs_.exists(note.path) && !dirty_.contains(note.path)) {
        applying_remote_ = true;
        fs_.remove(note.path, clock_.now());
        applying_remote_ = false;
      }
      shadow_.erase(note.path);
      base_version_.erase(note.path);
      ++applied;
      continue;
    }
    if (dirty_.contains(note.path) && fs_.exists(note.path)) {
      // Divergent edits on both sides: the remote version wins the path,
      // the local edits survive as a conflicted copy that syncs normally
      // (the Dropbox behaviour).
      const std::string conflict = note.path + " (conflicted copy)";
      if (!fs_.exists(conflict)) {
        const byte_view local = fs_.read(note.path);
        fs_.create(conflict, byte_buffer(local.begin(), local.end()),
                   clock_.now());
      }
      dirty_.erase(note.path);
      ++conflicts_;
    }
    download(note.path);
    ++applied;
  }
  return applied;
}

void sync_client::enable_periodic_poll(sim_time interval, sim_time until) {
  const sim_time next = clock_.now() + interval;
  if (next > until) return;
  clock_.schedule_at(next, [this, interval, until] {
    poll_remote_changes();
    enable_periodic_poll(interval, until);
  });
}

sim_time sync_client::busy_until() const {
  return std::max(network_busy_until_, index_busy_until_);
}

}  // namespace cloudsync
